//! Property-based tests for the phylogenetics substrate.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_phylo::compare::robinson_foulds;
use drugtree_phylo::distance::{DistanceMatrix, DistanceModel};
use drugtree_phylo::index::{LeafInterval, TreeIndex};
use drugtree_phylo::newick::{parse_newick, to_newick};
use drugtree_phylo::nj::neighbor_joining;
use drugtree_phylo::reroot::{longest_leaf_path, midpoint_root, normalize};
use drugtree_phylo::seq::{parse_fasta, write_fasta, AminoAcid, ProteinSequence, CANONICAL};
use drugtree_phylo::tree::{NodeId, Tree};
use drugtree_phylo::upgma::upgma;
use proptest::prelude::*;

/// Strategy: a random rooted tree with `n` leaves, built by repeatedly
/// attaching children to random existing nodes.
fn arb_tree(max_extra: usize) -> impl Strategy<Value = Tree> {
    proptest::collection::vec((any::<u32>(), 0.0f64..10.0), 2..max_extra).prop_map(|moves| {
        let mut tree = Tree::with_root(Some("root".into()));
        for (i, (pick, len)) in moves.into_iter().enumerate() {
            let parent = NodeId(pick % tree.len() as u32);
            tree.add_child(parent, Some(format!("node{i}")), len)
                .unwrap();
        }
        tree
    })
}

fn arb_residues(max_len: usize) -> impl Strategy<Value = Vec<AminoAcid>> {
    proptest::collection::vec(0usize..20, 0..max_len)
        .prop_map(|ix| ix.into_iter().map(|i| CANONICAL[i]).collect())
}

proptest! {
    #[test]
    fn tree_invariants_hold(tree in arb_tree(40)) {
        tree.check_invariants().unwrap();
    }

    #[test]
    fn newick_roundtrip(tree in arb_tree(40)) {
        let text = to_newick(&tree);
        let back = parse_newick(&text).unwrap();
        prop_assert_eq!(back.leaf_count(), tree.leaf_count());
        prop_assert_eq!(back.len(), tree.len());
        // Second round-trip must be a fixed point.
        prop_assert_eq!(to_newick(&back), text);
    }

    #[test]
    fn fasta_roundtrip(residues in arb_residues(200), id in "[A-Za-z][A-Za-z0-9_.|-]{0,20}") {
        let seq = ProteinSequence::new(id, residues);
        let text = write_fasta(std::slice::from_ref(&seq));
        let back = parse_fasta(&text).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &seq);
    }

    #[test]
    fn intervals_are_laminar(tree in arb_tree(50)) {
        // Any two subtree intervals are either disjoint or nested —
        // the laminar-family property the optimizer's containment
        // reasoning (semantic cache, D2) depends on.
        let idx = TreeIndex::build(&tree);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        for &a in &ids {
            for &b in &ids {
                let ia = idx.interval(a);
                let ib = idx.interval(b);
                let nested = ia.contains(ib) || ib.contains(ia);
                let disjoint = !ia.overlaps(ib);
                prop_assert!(nested || disjoint, "{a} {b}: {ia:?} vs {ib:?}");
            }
        }
    }

    #[test]
    fn interval_len_equals_leaf_count(tree in arb_tree(50)) {
        let idx = TreeIndex::build(&tree);
        for id in tree.node_ids() {
            let by_walk = tree
                .preorder_from(id)
                .into_iter()
                .filter(|&n| tree.node_unchecked(n).is_leaf())
                .count() as u32;
            prop_assert_eq!(idx.interval(id).len(), by_walk);
        }
    }

    #[test]
    fn lca_agrees_with_naive(tree in arb_tree(40)) {
        let idx = TreeIndex::build(&tree);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        for &a in &ids {
            for &b in &ids {
                let pa = tree.ancestors(a).unwrap();
                let pb: std::collections::HashSet<_> =
                    tree.ancestors(b).unwrap().into_iter().collect();
                let naive = *pa.iter().find(|id| pb.contains(id)).unwrap();
                prop_assert_eq!(idx.lca(a, b), naive);
            }
        }
    }

    #[test]
    fn is_ancestor_matches_path_membership(tree in arb_tree(40)) {
        let idx = TreeIndex::build(&tree);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        for &a in &ids {
            let path: std::collections::HashSet<_> =
                tree.ancestors(a).unwrap().into_iter().collect();
            for &b in &ids {
                prop_assert_eq!(idx.is_ancestor(b, a), path.contains(&b));
            }
        }
    }

    #[test]
    fn midpoint_rooting_preserves_topology(tree in arb_tree(40)) {
        prop_assume!(tree.leaf_count() >= 3);
        let Ok((_, _, diameter)) = longest_leaf_path(&tree) else {
            return Ok(());
        };
        prop_assume!(diameter > 1e-6);
        let rooted = midpoint_root(&tree).unwrap();
        rooted.check_invariants().unwrap();
        // Leaf label sets agree.
        let labels = |t: &Tree| -> std::collections::BTreeSet<String> {
            t.leaves()
                .into_iter()
                .filter_map(|l| t.node_unchecked(l).label.clone())
                .collect()
        };
        prop_assert_eq!(labels(&tree), labels(&rooted));
        // Unrooted topology unchanged (splits are an unrooted invariant).
        prop_assert_eq!(robinson_foulds(&tree, &rooted).unwrap(), 0);
        // Total branch length conserved relative to the normalized
        // input (unary chains collapse by definition).
        let total = |t: &Tree| -> f64 {
            t.node_ids().map(|id| t.node_unchecked(id).branch_length).sum()
        };
        prop_assert!((total(&normalize(&tree)) - total(&rooted)).abs() < 1e-6);
        // Midpoint property: deepest leaf sits at diameter / 2.
        let max_depth = rooted
            .leaves()
            .iter()
            .map(|&l| rooted.root_distance(l).unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((max_depth - diameter / 2.0).abs() < 1e-6);
    }

    #[test]
    fn newick_parser_never_panics(text in "\\PC{0,80}") {
        let _ = parse_newick(&text);
    }

    #[test]
    fn fasta_parser_never_panics(text in "\\PC{0,120}") {
        let _ = parse_fasta(&text);
    }

    #[test]
    fn nj_preserves_leaf_set(dists in proptest::collection::vec(0.01f64..10.0, 45)) {
        // 10 taxa -> 45 condensed entries.
        let n = 10;
        let labels: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let mut dm = DistanceMatrix::zeros(labels);
        let mut it = dists.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                dm.set(i, j, it.next().unwrap());
            }
        }
        let t = neighbor_joining(&dm).unwrap();
        t.check_invariants().unwrap();
        prop_assert_eq!(t.leaf_count(), n);
        for i in 0..n {
            let leaf = t.find_by_label(&format!("t{i}")).unwrap();
            prop_assert!(t.node(leaf).unwrap().is_leaf());
        }
    }

    #[test]
    fn upgma_is_ultrametric(dists in proptest::collection::vec(0.01f64..10.0, 28)) {
        // 8 taxa -> 28 condensed entries.
        let n = 8;
        let labels: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let mut dm = DistanceMatrix::zeros(labels);
        let mut it = dists.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                dm.set(i, j, it.next().unwrap());
            }
        }
        let t = upgma(&dm).unwrap();
        let depths: Vec<f64> =
            t.leaves().iter().map(|&l| t.root_distance(l).unwrap()).collect();
        for d in &depths {
            prop_assert!((d - depths[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn distance_corrections_are_monotone(p1 in 0.0f64..0.9, p2 in 0.0f64..0.9) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        for model in [DistanceModel::PDistance, DistanceModel::Poisson, DistanceModel::Kimura] {
            prop_assert!(model.correct(lo) <= model.correct(hi) + 1e-12);
        }
    }

    #[test]
    fn interval_intersect_is_commutative(
        a_lo in 0u32..50, a_len in 0u32..20,
        b_lo in 0u32..50, b_len in 0u32..20,
    ) {
        let a = LeafInterval { lo: a_lo, hi: a_lo + a_len };
        let b = LeafInterval { lo: b_lo, hi: b_lo + b_len };
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        if let Some(i) = a.intersect(b) {
            prop_assert!(a.contains(i) && b.contains(i));
            prop_assert!(!i.is_empty());
        } else {
            prop_assert!(!a.overlaps(b) || a.is_empty() || b.is_empty());
        }
    }
}

/// Alignment score must equal the score recomputed from the traceback.
#[test]
fn alignment_score_consistent_with_columns() {
    use drugtree_phylo::align::{global_align, GapPenalty};
    use drugtree_phylo::matrices::ScoringMatrix;

    let m = ScoringMatrix::blosum62();
    let gap = GapPenalty::BLOSUM62_DEFAULT;
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strat = (arb_residues(40), arb_residues(40));
    for _ in 0..64 {
        use proptest::strategy::ValueTree;
        let (a, b) = strat.new_tree(&mut runner).unwrap().current();
        let aln = global_align(&a, &b, &m, gap).unwrap();
        // Recompute score from columns.
        let mut score = 0i32;
        let mut in_gap_a = false;
        let mut in_gap_b = false;
        for (x, y) in &aln.columns {
            match (x, y) {
                (Some(ra), Some(rb)) => {
                    score += m.score(*ra, *rb);
                    in_gap_a = false;
                    in_gap_b = false;
                }
                (Some(_), None) => {
                    score -= gap.extend + if in_gap_b { 0 } else { gap.open };
                    in_gap_b = true;
                    in_gap_a = false;
                }
                (None, Some(_)) => {
                    score -= gap.extend + if in_gap_a { 0 } else { gap.open };
                    in_gap_a = true;
                    in_gap_b = false;
                }
                (None, None) => unreachable!("empty column"),
            }
        }
        assert_eq!(score, aln.score, "inputs {:?} / {:?}", a.len(), b.len());
        // Traceback must reconstruct the inputs.
        let got_a: Vec<AminoAcid> = aln.columns.iter().filter_map(|(x, _)| *x).collect();
        let got_b: Vec<AminoAcid> = aln.columns.iter().filter_map(|(_, y)| *y).collect();
        assert_eq!(got_a, a);
        assert_eq!(got_b, b);
    }
}
