//! Per-subtree structural statistics.
//!
//! These are the tree-side half of design decision **D4** (statistics-
//! based pruning): the query optimizer consults per-node aggregates to
//! decide whether a subtree can possibly contribute to a query before
//! touching any data source. This module computes the *structural*
//! aggregates; overlay-value aggregates (ligand counts, affinity ranges)
//! are layered on top by `drugtree-query`'s statistics module using the
//! generic [`fold_subtrees`] helper.

use crate::tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// Structural statistics for one subtree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubtreeStats {
    /// Leaves dominated by this node.
    pub leaf_count: u32,
    /// Nodes (including self) in the subtree.
    pub node_count: u32,
    /// Height in edges (0 for leaves).
    pub height: u32,
    /// Maximum root-path branch-length sum within the subtree, measured
    /// from this node.
    pub max_path_length: f64,
    /// Total branch length inside the subtree.
    pub total_branch_length: f64,
}

/// Structural statistics for every node, indexed by `NodeId::index()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeStats {
    stats: Vec<SubtreeStats>,
}

impl TreeStats {
    /// Compute all subtree statistics in one postorder pass.
    pub fn compute(tree: &Tree) -> TreeStats {
        let mut stats = vec![
            SubtreeStats {
                leaf_count: 0,
                node_count: 0,
                height: 0,
                max_path_length: 0.0,
                total_branch_length: 0.0,
            };
            tree.len()
        ];
        for &id in &tree.postorder() {
            let node = tree.node_unchecked(id);
            if node.is_leaf() {
                stats[id.index()] = SubtreeStats {
                    leaf_count: 1,
                    node_count: 1,
                    height: 0,
                    max_path_length: 0.0,
                    total_branch_length: 0.0,
                };
            } else {
                let mut agg = SubtreeStats {
                    leaf_count: 0,
                    node_count: 1,
                    height: 0,
                    max_path_length: 0.0,
                    total_branch_length: 0.0,
                };
                for &c in &node.children {
                    let cs = stats[c.index()];
                    let cb = tree.node_unchecked(c).branch_length;
                    agg.leaf_count += cs.leaf_count;
                    agg.node_count += cs.node_count;
                    agg.height = agg.height.max(cs.height + 1);
                    agg.max_path_length = agg.max_path_length.max(cs.max_path_length + cb);
                    agg.total_branch_length += cs.total_branch_length + cb;
                }
                stats[id.index()] = agg;
            }
        }
        TreeStats { stats }
    }

    /// Statistics for one node's subtree.
    #[inline]
    pub fn get(&self, id: NodeId) -> SubtreeStats {
        self.stats[id.index()]
    }
}

/// Fold an arbitrary aggregate bottom-up over all subtrees.
///
/// `leaf` produces the aggregate for a leaf node; `merge` combines a
/// parent's partial aggregate with one child's finished aggregate.
/// Returns one aggregate per node, indexed by `NodeId::index()`.
pub fn fold_subtrees<T: Clone>(
    tree: &Tree,
    mut leaf: impl FnMut(NodeId) -> T,
    mut init_internal: impl FnMut(NodeId) -> T,
    mut merge: impl FnMut(&mut T, &T),
) -> Vec<T> {
    let mut out: Vec<Option<T>> = vec![None; tree.len()];
    for &id in &tree.postorder() {
        let node = tree.node_unchecked(id);
        let agg = if node.is_leaf() {
            leaf(id)
        } else {
            let mut acc = init_internal(id);
            for &c in &node.children {
                // Postorder guarantees children are finished first.
                if let Some(child_agg) = out[c.index()].clone() {
                    merge(&mut acc, &child_agg);
                }
            }
            acc
        };
        out[id.index()] = Some(agg);
    }
    // Postorder visits every node exactly once, so every slot is Some
    // and flattening preserves the by-NodeId::index() length contract.
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse_newick;

    #[test]
    fn structural_stats() {
        let t = parse_newick("((d:1,e:2)a:3,b:4,(f:5)c:6)r;").unwrap();
        let stats = TreeStats::compute(&t);

        let root = stats.get(t.root());
        assert_eq!(root.leaf_count, 4);
        assert_eq!(root.node_count, 7);
        assert_eq!(root.height, 2);
        // Longest root path: c(6) + f(5) = 11.
        assert!((root.max_path_length - 11.0).abs() < 1e-12);
        assert!((root.total_branch_length - 21.0).abs() < 1e-12);

        let a = stats.get(t.find_by_label("a").unwrap());
        assert_eq!(a.leaf_count, 2);
        assert_eq!(a.node_count, 3);
        assert_eq!(a.height, 1);
        assert!((a.max_path_length - 2.0).abs() < 1e-12);

        let d = stats.get(t.find_by_label("d").unwrap());
        assert_eq!(d.leaf_count, 1);
        assert_eq!(d.height, 0);
        assert_eq!(d.max_path_length, 0.0);
    }

    #[test]
    fn fold_subtrees_counts_leaves() {
        let t = parse_newick("((d,e)a,b,(f)c)r;").unwrap();
        let counts = fold_subtrees(&t, |_| 1u32, |_| 0u32, |acc, c| *acc += c);
        assert_eq!(counts[t.root().index()], 4);
        assert_eq!(counts[t.find_by_label("a").unwrap().index()], 2);
        assert_eq!(counts[t.find_by_label("f").unwrap().index()], 1);
    }

    #[test]
    fn fold_subtrees_collects_labels() {
        let t = parse_newick("((d,e)a,b)r;").unwrap();
        let labels = fold_subtrees(
            &t,
            |id| vec![t.node_unchecked(id).label.clone().unwrap_or_default()],
            |_| Vec::new(),
            |acc, c| acc.extend(c.iter().cloned()),
        );
        assert_eq!(labels[t.root().index()], vec!["d", "e", "b"]);
    }
}
