//! Arena-allocated rooted phylogenetic tree.
//!
//! Nodes are referenced by dense [`NodeId`]s, which every other layer of
//! DrugTree (store rows, overlay records, query plans, cached results)
//! uses as the canonical tree coordinate.

use crate::{PhyloError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a tree node. Stable for the lifetime of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the tree's node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children, in insertion order.
    pub children: Vec<NodeId>,
    /// Taxon label for leaves; optional internal labels (clade names).
    pub label: Option<String>,
    /// Length of the branch from this node to its parent.
    pub branch_length: f64,
}

impl Node {
    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A rooted tree over an arena of nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Tree {
    /// Create a tree containing only a root node.
    pub fn with_root(label: Option<String>) -> Tree {
        Tree {
            nodes: vec![Node {
                parent: None,
                children: Vec::new(),
                label,
                branch_length: 0.0,
            }],
            root: NodeId(0),
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (internal + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never the case for constructed trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node, checking the id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.index())
            .ok_or(PhyloError::UnknownNode(id.0))
    }

    /// Borrow a node without the `Result` wrapper; panics on a foreign id.
    /// Intended for internal hot paths where ids are known-valid.
    #[inline]
    pub fn node_unchecked(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Append a child under `parent`, returning the new node's id.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        label: Option<String>,
        branch_length: f64,
    ) -> Result<NodeId> {
        if parent.index() >= self.nodes.len() {
            return Err(PhyloError::UnknownNode(parent.0));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            label,
            branch_length,
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Set a node's label.
    pub fn set_label(&mut self, id: NodeId, label: Option<String>) -> Result<()> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(PhyloError::UnknownNode(id.0))?;
        node.label = label;
        Ok(())
    }

    /// Set a node's branch length.
    pub fn set_branch_length(&mut self, id: NodeId, length: f64) -> Result<()> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(PhyloError::UnknownNode(id.0))?;
        node.branch_length = length;
        Ok(())
    }

    /// All node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of all leaves, in preorder (left-to-right display order).
    pub fn leaves(&self) -> Vec<NodeId> {
        self.preorder()
            .into_iter()
            .filter(|&id| self.node_unchecked(id).is_leaf())
            .collect()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Preorder (parent before children) traversal from the root.
    pub fn preorder(&self) -> Vec<NodeId> {
        self.preorder_from(self.root)
    }

    /// Preorder traversal of the subtree rooted at `start`.
    pub fn preorder_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            order.push(id);
            // Push children reversed so the leftmost child is visited first.
            for &c in self.node_unchecked(id).children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Postorder (children before parent) traversal from the root.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = self.preorder();
        // Reverse preorder with children pushed left-to-right equals
        // postorder mirrored; recompute properly instead.
        order.clear();
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in self.node_unchecked(id).children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Path from `id` up to (and including) the root.
    pub fn ancestors(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let mut node = self.node(id)?;
        let mut path = vec![id];
        while let Some(p) = node.parent {
            path.push(p);
            node = self.node_unchecked(p);
        }
        Ok(path)
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, id: NodeId) -> Result<usize> {
        Ok(self.ancestors(id)?.len() - 1)
    }

    /// Find the first node (in arena order) with the given label.
    pub fn find_by_label(&self, label: &str) -> Result<NodeId> {
        self.node_ids()
            .find(|&id| self.node_unchecked(id).label.as_deref() == Some(label))
            .ok_or_else(|| PhyloError::UnknownLabel(label.to_string()))
    }

    /// Sum of branch lengths along the path from the root to `id`.
    pub fn root_distance(&self, id: NodeId) -> Result<f64> {
        let mut total = 0.0;
        let mut cur = self.node(id)?;
        let mut cur_id = id;
        while let Some(p) = cur.parent {
            total += self.node_unchecked(cur_id).branch_length;
            cur_id = p;
            cur = self.node_unchecked(p);
        }
        Ok(total)
    }

    /// Crate-internal mutable node access, used by construction
    /// algorithms (NJ/UPGMA) that re-parent nodes during joins.
    pub(crate) fn node_mut_internal(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Validate structural invariants: exactly one root, parent/child
    /// links are mutual, and the node graph is a connected acyclic tree.
    /// Used by tests and debug assertions after construction.
    pub fn check_invariants(&self) -> Result<()> {
        let mut seen = vec![false; self.nodes.len()];
        for id in self.preorder() {
            if seen[id.index()] {
                return Err(PhyloError::InvalidValue(format!("node {id} visited twice")));
            }
            seen[id.index()] = true;
            for &c in &self.node_unchecked(id).children {
                let child = self.node(c)?;
                if child.parent != Some(id) {
                    return Err(PhyloError::InvalidValue(format!(
                        "child {c} of {id} has parent {:?}",
                        child.parent
                    )));
                }
            }
        }
        if let Some(unreached) = seen.iter().position(|&s| !s) {
            return Err(PhyloError::InvalidValue(format!(
                "node n{unreached} unreachable from root"
            )));
        }
        if self.node(self.root)?.parent.is_some() {
            return Err(PhyloError::InvalidValue("root has a parent".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds:
    /// ```text
    ///        r
    ///      / | \
    ///     a  b  c
    ///    / \     \
    ///   d   e     f
    /// ```
    fn sample() -> (Tree, Vec<NodeId>) {
        let mut t = Tree::with_root(Some("r".into()));
        let r = t.root();
        let a = t.add_child(r, Some("a".into()), 1.0).unwrap();
        let b = t.add_child(r, Some("b".into()), 2.0).unwrap();
        let c = t.add_child(r, Some("c".into()), 3.0).unwrap();
        let d = t.add_child(a, Some("d".into()), 0.5).unwrap();
        let e = t.add_child(a, Some("e".into()), 0.25).unwrap();
        let f = t.add_child(c, Some("f".into()), 4.0).unwrap();
        (t, vec![r, a, b, c, d, e, f])
    }

    #[test]
    fn construction_and_lookup() {
        let (t, ids) = sample();
        assert_eq!(t.len(), 7);
        assert_eq!(t.leaf_count(), 4); // d, e, b, f
        assert_eq!(t.node(ids[1]).unwrap().label.as_deref(), Some("a"));
        assert!(t.node(NodeId(99)).is_err());
        t.check_invariants().unwrap();
    }

    #[test]
    fn preorder_is_parent_first_left_to_right() {
        let (t, ids) = sample();
        let order = t.preorder();
        let labels: Vec<&str> = order
            .iter()
            .map(|&id| t.node_unchecked(id).label.as_deref().unwrap())
            .collect();
        assert_eq!(labels, ["r", "a", "d", "e", "b", "c", "f"]);
        assert_eq!(order[0], ids[0]);
    }

    #[test]
    fn postorder_is_children_first() {
        let (t, _) = sample();
        let labels: Vec<&str> = t
            .postorder()
            .iter()
            .map(|&id| t.node_unchecked(id).label.as_deref().unwrap())
            .collect();
        assert_eq!(labels, ["d", "e", "a", "b", "f", "c", "r"]);
    }

    #[test]
    fn ancestors_and_depth() {
        let (t, ids) = sample();
        let f = ids[6];
        let path = t.ancestors(f).unwrap();
        assert_eq!(path, vec![ids[6], ids[3], ids[0]]);
        assert_eq!(t.depth(f).unwrap(), 2);
        assert_eq!(t.depth(t.root()).unwrap(), 0);
    }

    #[test]
    fn root_distance_sums_branches() {
        let (t, ids) = sample();
        assert!((t.root_distance(ids[6]).unwrap() - 7.0).abs() < 1e-12);
        assert_eq!(t.root_distance(t.root()).unwrap(), 0.0);
    }

    #[test]
    fn leaves_in_display_order() {
        let (t, _) = sample();
        let labels: Vec<&str> = t
            .leaves()
            .iter()
            .map(|&id| t.node_unchecked(id).label.as_deref().unwrap())
            .collect();
        assert_eq!(labels, ["d", "e", "b", "f"]);
    }

    #[test]
    fn find_by_label() {
        let (t, ids) = sample();
        assert_eq!(t.find_by_label("e").unwrap(), ids[5]);
        assert!(matches!(
            t.find_by_label("zz"),
            Err(PhyloError::UnknownLabel(_))
        ));
    }

    #[test]
    fn setters() {
        let (mut t, ids) = sample();
        t.set_label(ids[2], Some("bee".into())).unwrap();
        t.set_branch_length(ids[2], 9.0).unwrap();
        assert_eq!(t.node(ids[2]).unwrap().label.as_deref(), Some("bee"));
        assert_eq!(t.node(ids[2]).unwrap().branch_length, 9.0);
        assert!(t.set_label(NodeId(99), None).is_err());
        assert!(t.set_branch_length(NodeId(99), 1.0).is_err());
    }

    #[test]
    fn add_child_rejects_unknown_parent() {
        let mut t = Tree::with_root(None);
        assert!(t.add_child(NodeId(5), None, 1.0).is_err());
    }
}
