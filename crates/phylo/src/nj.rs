//! Neighbor-joining tree construction (Saitou & Nei 1987, with the
//! Studier–Keppler O(n³) formulation).
//!
//! Given an additive distance matrix, NJ provably recovers the unique
//! tree that generated it — a property the test-suite and the
//! workload generator exploit to validate the whole pipeline.

use crate::distance::DistanceMatrix;
use crate::tree::{NodeId, Tree};
use crate::{PhyloError, Result};

/// Build an unrooted-then-rooted NJ tree from a distance matrix.
///
/// The final three-way join is attached under a root node, so the
/// returned [`Tree`] is rooted at the last junction (standard practice
/// for display purposes; DrugTree always works with rooted trees).
pub fn neighbor_joining(dm: &DistanceMatrix) -> Result<Tree> {
    let n = dm.len();
    if n < 2 {
        return Err(PhyloError::TooFewTaxa(n));
    }

    let mut tree = Tree::with_root(None);
    let root = tree.root();

    if n == 2 {
        let d = dm.get(0, 1);
        tree.add_child(root, Some(dm.labels()[0].clone()), d / 2.0)?;
        tree.add_child(root, Some(dm.labels()[1].clone()), d / 2.0)?;
        return Ok(tree);
    }

    // Working copy of distances between "active" cluster nodes.
    // Each active entry maps to a tree node (leaf or internal).
    let mut active: Vec<NodeId> = Vec::with_capacity(n);
    for label in dm.labels() {
        // Temporarily parent everything under root; joins re-link by
        // building bottom-up into fresh nodes instead, so we create
        // leaves lazily below.
        active.push(tree.add_child(root, Some(label.clone()), 0.0)?);
    }

    // Dense mutable distance matrix over active indices.
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| dm.get(i, j)).collect())
        .collect();
    let mut alive: Vec<usize> = (0..n).collect();

    while alive.len() > 3 {
        let m = alive.len() as f64;
        // Row sums over alive entries.
        let r: Vec<f64> = alive
            .iter()
            .map(|&i| alive.iter().map(|&j| dist[i][j]).sum::<f64>())
            .collect();

        // Find the pair minimizing the Q criterion.
        let (mut best_a, mut best_b, mut best_q) = (0usize, 1usize, f64::INFINITY);
        for (ai, &i) in alive.iter().enumerate() {
            for (bi, &j) in alive.iter().enumerate().skip(ai + 1) {
                let q = (m - 2.0) * dist[i][j] - r[ai] - r[bi];
                if q < best_q {
                    best_q = q;
                    best_a = ai;
                    best_b = bi;
                }
            }
        }
        let i = alive[best_a];
        let j = alive[best_b];

        // Branch lengths from the new internal node u to i and j.
        let dij = dist[i][j];
        let li = 0.5 * dij + (r[best_a] - r[best_b]) / (2.0 * (m - 2.0));
        let li = li.clamp(0.0, dij.max(0.0));
        let lj = (dij - li).max(0.0);

        // Create the join node and re-link i and j beneath it.
        let u = tree.add_child(root, None, 0.0)?;
        relink(&mut tree, active[i], u, li);
        relink(&mut tree, active[j], u, lj);

        // Update distances: u replaces slot i; slot j dies.
        for &k in &alive {
            if k == i || k == j {
                continue;
            }
            let duk = 0.5 * (dist[i][k] + dist[j][k] - dij);
            dist[i][k] = duk.max(0.0);
            dist[k][i] = dist[i][k];
        }
        dist[i][i] = 0.0;
        active[i] = u;
        alive.remove(best_b);
    }

    // Terminal three-way join: attach the remaining clusters to the root
    // with the standard star formulas.
    let (a, b, c) = (alive[0], alive[1], alive[2]);
    let la = 0.5 * (dist[a][b] + dist[a][c] - dist[b][c]);
    let lb = 0.5 * (dist[a][b] + dist[b][c] - dist[a][c]);
    let lc = 0.5 * (dist[a][c] + dist[b][c] - dist[a][b]);
    relink(&mut tree, active[a], root, la.max(0.0));
    relink(&mut tree, active[b], root, lb.max(0.0));
    relink(&mut tree, active[c], root, lc.max(0.0));

    // Drop the stale placeholder edges: every active node was initially a
    // child of root; relink has moved them. Remaining direct root
    // children that were never relinked (none, after the loop) would be a
    // bug, caught by the invariant check.
    debug_assert!(tree.check_invariants().is_ok());
    Ok(tree)
}

/// Detach `child` from its current parent and re-attach beneath
/// `new_parent` with the given branch length.
fn relink(tree: &mut Tree, child: NodeId, new_parent: NodeId, branch_length: f64) {
    detach(tree, child);
    attach(tree, child, new_parent, branch_length);
}

fn detach(tree: &mut Tree, child: NodeId) {
    if let Some(parent) = tree.node_unchecked(child).parent {
        let siblings = &mut tree_node_mut(tree, parent).children;
        siblings.retain(|&c| c != child);
    }
    tree_node_mut(tree, child).parent = None;
}

fn attach(tree: &mut Tree, child: NodeId, parent: NodeId, branch_length: f64) {
    tree_node_mut(tree, parent).children.push(child);
    let node = tree_node_mut(tree, child);
    node.parent = Some(parent);
    node.branch_length = branch_length;
}

/// Internal mutable access used by the join re-linking. The tree module
/// deliberately does not expose raw mutable nodes publicly; NJ is the
/// one construction algorithm that needs re-parenting, so it goes
/// through this controlled helper.
fn tree_node_mut(tree: &mut Tree, id: NodeId) -> &mut crate::tree::Node {
    // SAFETY-free hack avoidance: Tree exposes everything we need via a
    // crate-public accessor implemented below.
    tree.node_mut_internal(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    /// Distance between two leaves along tree branches.
    fn tree_distance(tree: &Tree, a: NodeId, b: NodeId) -> f64 {
        let pa = tree.ancestors(a).unwrap();
        let pb = tree.ancestors(b).unwrap();
        let seta: std::collections::HashSet<_> = pa.iter().copied().collect();
        let lca = *pb.iter().find(|id| seta.contains(id)).unwrap();
        let mut d = 0.0;
        for &x in pa.iter().take_while(|&&x| x != lca) {
            d += tree.node_unchecked(x).branch_length;
        }
        for &x in pb.iter().take_while(|&&x| x != lca) {
            d += tree.node_unchecked(x).branch_length;
        }
        d
    }

    #[test]
    fn two_taxa() {
        let mut dm = DistanceMatrix::zeros(labels(2));
        dm.set(0, 1, 3.0);
        let t = neighbor_joining(&dm).unwrap();
        assert_eq!(t.leaf_count(), 2);
        let a = t.find_by_label("t0").unwrap();
        let b = t.find_by_label("t1").unwrap();
        assert!((tree_distance(&t, a, b) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_taxa() {
        let dm = DistanceMatrix::zeros(labels(1));
        assert!(matches!(
            neighbor_joining(&dm),
            Err(PhyloError::TooFewTaxa(1))
        ));
    }

    #[test]
    fn recovers_additive_distances_wikipedia_example() {
        // The classic 5-taxon additive example; NJ must reproduce all
        // pairwise path distances exactly.
        let square = [
            vec![0.0, 5.0, 9.0, 9.0, 8.0],
            vec![5.0, 0.0, 10.0, 10.0, 9.0],
            vec![9.0, 10.0, 0.0, 8.0, 7.0],
            vec![9.0, 10.0, 8.0, 0.0, 3.0],
            vec![8.0, 9.0, 7.0, 3.0, 0.0],
        ];
        let dm = DistanceMatrix::from_square(
            vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
            &square,
        )
        .unwrap();
        let t = neighbor_joining(&dm).unwrap();
        t.check_invariants().unwrap();
        assert_eq!(t.leaf_count(), 5);
        for (i, la) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            for (j, lb) in ["a", "b", "c", "d", "e"].iter().enumerate().skip(i + 1) {
                let na = t.find_by_label(la).unwrap();
                let nb = t.find_by_label(lb).unwrap();
                let d = tree_distance(&t, na, nb);
                assert!(
                    (d - square[i][j]).abs() < 1e-9,
                    "distance {la}-{lb}: got {d}, want {}",
                    square[i][j]
                );
            }
        }
    }

    #[test]
    fn all_leaves_present_and_internal_unlabeled() {
        let mut dm = DistanceMatrix::zeros(labels(6));
        for i in 0..6 {
            for j in (i + 1)..6 {
                dm.set(i, j, 1.0 + ((i * 7 + j * 3) % 5) as f64);
            }
        }
        let t = neighbor_joining(&dm).unwrap();
        assert_eq!(t.leaf_count(), 6);
        for i in 0..6 {
            let leaf = t.find_by_label(&format!("t{i}")).unwrap();
            assert!(t.node(leaf).unwrap().is_leaf());
        }
        // Binary internal structure: a rooted NJ tree over n leaves has
        // n-2 internal nodes of degree 3 (root has 3 children).
        assert_eq!(t.len(), 2 * 6 - 2);
    }

    #[test]
    fn branch_lengths_nonnegative() {
        // A noisy (non-additive) matrix can drive raw NJ branch
        // estimates negative; we clamp at zero.
        let square = [
            vec![0.0, 1.0, 4.0, 4.1],
            vec![1.0, 0.0, 4.2, 3.9],
            vec![4.0, 4.2, 0.0, 1.1],
            vec![4.1, 3.9, 1.1, 0.0],
        ];
        let dm = DistanceMatrix::from_square(labels(4), &square).unwrap();
        let t = neighbor_joining(&dm).unwrap();
        for id in t.node_ids() {
            assert!(t.node_unchecked(id).branch_length >= 0.0);
        }
    }
}
