//! UPGMA (average-linkage) hierarchical clustering tree construction.
//!
//! The classical alternative baseline to neighbor joining: assumes a
//! molecular clock and produces an ultrametric rooted tree. DrugTree
//! offers both so the benchmarks can compare construction cost and the
//! query layer is exercised against differently-shaped trees.

use crate::distance::DistanceMatrix;
use crate::tree::{NodeId, Tree};
use crate::{PhyloError, Result};

/// Build a rooted ultrametric tree with average linkage.
pub fn upgma(dm: &DistanceMatrix) -> Result<Tree> {
    struct Cluster {
        node: NodeId,
        size: usize,
        /// Height (root-to-leaf distance) of this cluster's subtree.
        height: f64,
    }

    let n = dm.len();
    if n < 2 {
        return Err(PhyloError::TooFewTaxa(n));
    }

    let mut tree = Tree::with_root(None);
    let root = tree.root();

    let mut clusters: Vec<Cluster> = Vec::with_capacity(n);
    for label in dm.labels() {
        let node = tree.add_child(root, Some(label.clone()), 0.0)?;
        clusters.push(Cluster {
            node,
            size: 1,
            height: 0.0,
        });
    }

    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| dm.get(i, j)).collect())
        .collect();
    let mut alive: Vec<usize> = (0..n).collect();

    while alive.len() > 1 {
        // Closest pair among alive clusters.
        let (mut best_a, mut best_b, mut best_d) = (0usize, 1usize, f64::INFINITY);
        for (ai, &i) in alive.iter().enumerate() {
            for (bi, &j) in alive.iter().enumerate().skip(ai + 1) {
                if dist[i][j] < best_d {
                    best_d = dist[i][j];
                    best_a = ai;
                    best_b = bi;
                }
            }
        }
        let i = alive[best_a];
        let j = alive[best_b];
        let new_height = best_d / 2.0;

        // Merge under a fresh internal node. The last merge reuses the
        // root so the final tree has no superfluous unary root.
        let parent = if alive.len() == 2 {
            root
        } else {
            tree.add_child(root, None, 0.0)?
        };
        let li = (new_height - clusters[i].height).max(0.0);
        let lj = (new_height - clusters[j].height).max(0.0);
        relink(&mut tree, clusters[i].node, parent, li);
        relink(&mut tree, clusters[j].node, parent, lj);

        // Average-linkage distance update: u replaces slot i.
        let (si, sj) = (clusters[i].size as f64, clusters[j].size as f64);
        for &k in &alive {
            if k == i || k == j {
                continue;
            }
            let duk = (si * dist[i][k] + sj * dist[j][k]) / (si + sj);
            dist[i][k] = duk;
            dist[k][i] = duk;
        }
        clusters[i] = Cluster {
            node: parent,
            size: clusters[i].size + clusters[j].size,
            height: new_height,
        };
        alive.remove(best_b);
    }

    debug_assert!(tree.check_invariants().is_ok());
    Ok(tree)
}

fn relink(tree: &mut Tree, child: NodeId, new_parent: NodeId, branch_length: f64) {
    if let Some(parent) = tree.node_unchecked(child).parent {
        tree.node_mut_internal(parent)
            .children
            .retain(|&c| c != child);
    }
    tree.node_mut_internal(new_parent).children.push(child);
    let node = tree.node_mut_internal(child);
    node.parent = Some(new_parent);
    node.branch_length = branch_length;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(names: &[&str]) -> Vec<String> {
        names.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn rejects_single_taxon() {
        let dm = DistanceMatrix::zeros(labels(&["a"]));
        assert!(matches!(upgma(&dm), Err(PhyloError::TooFewTaxa(1))));
    }

    #[test]
    fn two_taxa_split_evenly() {
        let mut dm = DistanceMatrix::zeros(labels(&["a", "b"]));
        dm.set(0, 1, 4.0);
        let t = upgma(&dm).unwrap();
        let a = t.find_by_label("a").unwrap();
        let b = t.find_by_label("b").unwrap();
        assert_eq!(t.node(a).unwrap().branch_length, 2.0);
        assert_eq!(t.node(b).unwrap().branch_length, 2.0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn ultrametric_property() {
        // Every leaf of a UPGMA tree sits at the same distance from the
        // root (the molecular-clock assumption).
        let square = [
            vec![0.0, 2.0, 6.0, 6.0, 8.0],
            vec![2.0, 0.0, 6.0, 6.0, 8.0],
            vec![6.0, 6.0, 0.0, 4.0, 8.0],
            vec![6.0, 6.0, 4.0, 0.0, 8.0],
            vec![8.0, 8.0, 8.0, 8.0, 0.0],
        ];
        let dm = DistanceMatrix::from_square(labels(&["a", "b", "c", "d", "e"]), &square).unwrap();
        let t = upgma(&dm).unwrap();
        let depths: Vec<f64> = t
            .leaves()
            .iter()
            .map(|&l| t.root_distance(l).unwrap())
            .collect();
        for d in &depths {
            assert!(
                (d - depths[0]).abs() < 1e-9,
                "leaf depths differ: {depths:?}"
            );
        }
        // Root height is half the maximum distance.
        assert!((depths[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merges_closest_first() {
        let square = [
            vec![0.0, 1.0, 8.0],
            vec![1.0, 0.0, 8.0],
            vec![8.0, 8.0, 0.0],
        ];
        let dm = DistanceMatrix::from_square(labels(&["x", "y", "z"]), &square).unwrap();
        let t = upgma(&dm).unwrap();
        // x and y must be siblings.
        let x = t.find_by_label("x").unwrap();
        let y = t.find_by_label("y").unwrap();
        assert_eq!(t.node(x).unwrap().parent, t.node(y).unwrap().parent);
        // And their parent is not the root (z joins at the root).
        assert_ne!(t.node(x).unwrap().parent, Some(t.root()));
    }

    #[test]
    fn leaf_set_preserved() {
        let names = ["p", "q", "r", "s", "t", "u"];
        let mut dm = DistanceMatrix::zeros(labels(&names));
        for i in 0..6 {
            for j in (i + 1)..6 {
                dm.set(i, j, ((i + j * 2) % 7 + 1) as f64);
            }
        }
        let t = upgma(&dm).unwrap();
        assert_eq!(t.leaf_count(), 6);
        for name in names {
            assert!(t.find_by_label(name).is_ok());
        }
        t.check_invariants().unwrap();
    }
}
