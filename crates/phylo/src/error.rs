//! Error type shared across the phylogenetics substrate.

use std::fmt;

/// Errors produced while parsing sequences, building trees, or indexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhyloError {
    /// A residue character outside the accepted amino-acid alphabet.
    InvalidResidue {
        /// Byte offset of the residue.
        position: usize,
        /// The offending byte.
        byte: u8,
    },
    /// FASTA input was structurally malformed.
    MalformedFasta(String),
    /// Newick input could not be parsed.
    MalformedNewick {
        /// Byte offset of the error.
        offset: usize,
        /// What was expected.
        message: String,
    },
    /// Sequences of unequal length were given to an aligned-input routine.
    LengthMismatch {
        /// Left length.
        left: usize,
        /// Right length.
        right: usize,
    },
    /// A distance matrix was queried or built with inconsistent dimensions.
    BadDimensions(String),
    /// Tree construction needs at least two taxa.
    TooFewTaxa(usize),
    /// A node id that does not belong to the tree was used.
    UnknownNode(u32),
    /// A label lookup failed.
    UnknownLabel(String),
    /// The operation requires a strictly positive / finite value.
    InvalidValue(String),
}

impl fmt::Display for PhyloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyloError::InvalidResidue { position, byte } => write!(
                f,
                "invalid residue byte 0x{byte:02x} at position {position}"
            ),
            PhyloError::MalformedFasta(msg) => write!(f, "malformed FASTA: {msg}"),
            PhyloError::MalformedNewick { offset, message } => {
                write!(f, "malformed Newick at byte {offset}: {message}")
            }
            PhyloError::LengthMismatch { left, right } => {
                write!(f, "sequence length mismatch: {left} vs {right}")
            }
            PhyloError::BadDimensions(msg) => write!(f, "bad matrix dimensions: {msg}"),
            PhyloError::TooFewTaxa(n) => {
                write!(f, "tree construction requires at least 2 taxa, got {n}")
            }
            PhyloError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            PhyloError::UnknownLabel(l) => write!(f, "unknown node label {l:?}"),
            PhyloError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for PhyloError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PhyloError::InvalidResidue {
            position: 3,
            byte: b'@',
        };
        assert!(e.to_string().contains("0x40"));
        assert!(e.to_string().contains("position 3"));
        let e = PhyloError::LengthMismatch { left: 4, right: 9 };
        assert!(e.to_string().contains("4 vs 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhyloError>();
    }
}
