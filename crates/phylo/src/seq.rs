//! Amino-acid alphabet, protein sequences, and FASTA I/O.

use crate::{PhyloError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The 20 canonical amino acids plus `X` (unknown/any).
///
/// The discriminant doubles as the row/column index into scoring
/// matrices (see [`crate::matrices`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)] // the three-letter variant names are the documentation
pub enum AminoAcid {
    Ala = 0,
    Arg = 1,
    Asn = 2,
    Asp = 3,
    Cys = 4,
    Gln = 5,
    Glu = 6,
    Gly = 7,
    His = 8,
    Ile = 9,
    Leu = 10,
    Lys = 11,
    Met = 12,
    Phe = 13,
    Pro = 14,
    Ser = 15,
    Thr = 16,
    Trp = 17,
    Tyr = 18,
    Val = 19,
    /// Unknown or ambiguous residue.
    Xaa = 20,
}

/// Number of distinct residue codes (including `Xaa`).
pub const ALPHABET_SIZE: usize = 21;

/// All canonical residues (excluding `Xaa`), in index order.
pub const CANONICAL: [AminoAcid; 20] = [
    AminoAcid::Ala,
    AminoAcid::Arg,
    AminoAcid::Asn,
    AminoAcid::Asp,
    AminoAcid::Cys,
    AminoAcid::Gln,
    AminoAcid::Glu,
    AminoAcid::Gly,
    AminoAcid::His,
    AminoAcid::Ile,
    AminoAcid::Leu,
    AminoAcid::Lys,
    AminoAcid::Met,
    AminoAcid::Phe,
    AminoAcid::Pro,
    AminoAcid::Ser,
    AminoAcid::Thr,
    AminoAcid::Trp,
    AminoAcid::Tyr,
    AminoAcid::Val,
];

impl AminoAcid {
    /// Parse a one-letter IUPAC code (case-insensitive).
    pub fn from_byte(b: u8) -> Option<AminoAcid> {
        Some(match b.to_ascii_uppercase() {
            b'A' => AminoAcid::Ala,
            b'R' => AminoAcid::Arg,
            b'N' => AminoAcid::Asn,
            b'D' => AminoAcid::Asp,
            b'C' => AminoAcid::Cys,
            b'Q' => AminoAcid::Gln,
            b'E' => AminoAcid::Glu,
            b'G' => AminoAcid::Gly,
            b'H' => AminoAcid::His,
            b'I' => AminoAcid::Ile,
            b'L' => AminoAcid::Leu,
            b'K' => AminoAcid::Lys,
            b'M' => AminoAcid::Met,
            b'F' => AminoAcid::Phe,
            b'P' => AminoAcid::Pro,
            b'S' => AminoAcid::Ser,
            b'T' => AminoAcid::Thr,
            b'W' => AminoAcid::Trp,
            b'Y' => AminoAcid::Tyr,
            b'V' => AminoAcid::Val,
            b'X' | b'B' | b'Z' | b'J' | b'U' | b'O' => AminoAcid::Xaa,
            _ => return None,
        })
    }

    /// One-letter IUPAC code.
    pub fn to_char(self) -> char {
        b"ARNDCQEGHILKMFPSTWYVX"[self as usize] as char
    }

    /// Index into scoring matrices.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Residue from a matrix index; panics if out of range.
    pub fn from_index(i: usize) -> AminoAcid {
        assert!(i < ALPHABET_SIZE, "residue index {i} out of range");
        if i < 20 {
            CANONICAL[i]
        } else {
            AminoAcid::Xaa
        }
    }
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// An immutable protein sequence with an identifier and optional
/// free-text description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProteinSequence {
    id: String,
    description: Option<String>,
    residues: Vec<AminoAcid>,
}

impl ProteinSequence {
    /// Build from residues directly.
    pub fn new(id: impl Into<String>, residues: Vec<AminoAcid>) -> Self {
        ProteinSequence {
            id: id.into(),
            description: None,
            residues,
        }
    }

    /// Parse from a one-letter-code string; whitespace is ignored.
    pub fn parse(id: impl Into<String>, text: &str) -> Result<Self> {
        let mut residues = Vec::with_capacity(text.len());
        for (pos, b) in text.bytes().enumerate() {
            if b.is_ascii_whitespace() {
                continue;
            }
            let aa = AminoAcid::from_byte(b).ok_or(PhyloError::InvalidResidue {
                position: pos,
                byte: b,
            })?;
            residues.push(aa);
        }
        Ok(ProteinSequence {
            id: id.into(),
            description: None,
            residues,
        })
    }

    /// Attach a description (FASTA header text after the id).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Sequence identifier (FASTA id token).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Optional description.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// Residues, in order.
    pub fn residues(&self) -> &[AminoAcid] {
        &self.residues
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// One-letter-code rendering of the residues.
    pub fn to_letters(&self) -> String {
        self.residues.iter().map(|r| r.to_char()).collect()
    }
}

/// Parse a multi-record FASTA document.
///
/// Headers are `>` lines; the first whitespace-delimited token is the id,
/// the remainder (if any) the description. Sequence data may span
/// multiple lines. Blank lines are permitted between records.
pub fn parse_fasta(input: &str) -> Result<Vec<ProteinSequence>> {
    let mut records = Vec::new();
    let mut current: Option<(String, Option<String>, String)> = None;

    for line in input.lines() {
        let line = line.trim_end();
        if let Some(header) = line.strip_prefix('>') {
            if let Some((id, desc, body)) = current.take() {
                let seq = ProteinSequence::parse(id, &body)?;
                records.push(match desc {
                    Some(d) => seq.with_description(d),
                    None => seq,
                });
            }
            let header = header.trim();
            if header.is_empty() {
                return Err(PhyloError::MalformedFasta("empty header line".into()));
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or_default().to_string();
            let desc = parts
                .next()
                .map(|d| d.trim().to_string())
                .filter(|d| !d.is_empty());
            current = Some((id, desc, String::new()));
        } else if !line.trim().is_empty() {
            match current.as_mut() {
                Some((_, _, body)) => body.push_str(line.trim()),
                None => {
                    return Err(PhyloError::MalformedFasta(
                        "sequence data before first header".into(),
                    ))
                }
            }
        }
    }
    if let Some((id, desc, body)) = current {
        let seq = ProteinSequence::parse(id, &body)?;
        records.push(match desc {
            Some(d) => seq.with_description(d),
            None => seq,
        });
    }
    Ok(records)
}

/// Serialize sequences to FASTA with 60-column wrapping.
pub fn write_fasta(seqs: &[ProteinSequence]) -> String {
    let mut out = String::new();
    for seq in seqs {
        out.push('>');
        out.push_str(seq.id());
        if let Some(desc) = seq.description() {
            out.push(' ');
            out.push_str(desc);
        }
        out.push('\n');
        let letters = seq.to_letters();
        for chunk in letters.as_bytes().chunks(60) {
            // Residue letters are ASCII by construction.
            out.push_str(&String::from_utf8_lossy(chunk));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residue_roundtrip_through_char() {
        for aa in CANONICAL {
            let parsed = AminoAcid::from_byte(aa.to_char() as u8).unwrap();
            assert_eq!(parsed, aa);
        }
        assert_eq!(AminoAcid::from_byte(b'x'), Some(AminoAcid::Xaa));
        assert_eq!(AminoAcid::from_byte(b'1'), None);
        assert_eq!(AminoAcid::from_byte(b'*'), None);
    }

    #[test]
    fn residue_index_roundtrip() {
        for i in 0..ALPHABET_SIZE {
            assert_eq!(AminoAcid::from_index(i).index(), i);
        }
    }

    #[test]
    fn parse_rejects_bad_residue() {
        let err = ProteinSequence::parse("s", "AC*DE").unwrap_err();
        assert_eq!(
            err,
            PhyloError::InvalidResidue {
                position: 2,
                byte: b'*'
            }
        );
    }

    #[test]
    fn parse_skips_whitespace() {
        let s = ProteinSequence::parse("s", "ACD\n EFg").unwrap();
        assert_eq!(s.to_letters(), "ACDEFG");
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn fasta_roundtrip() {
        let input = ">sp|P1 first protein\nACDEFGHIKLMNPQRSTVWY\nACDE\n\n>P2\nMMMM\n";
        let seqs = parse_fasta(input).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id(), "sp|P1");
        assert_eq!(seqs[0].description(), Some("first protein"));
        assert_eq!(seqs[0].len(), 24);
        assert_eq!(seqs[1].id(), "P2");
        assert_eq!(seqs[1].description(), None);

        let rendered = write_fasta(&seqs);
        let reparsed = parse_fasta(&rendered).unwrap();
        assert_eq!(reparsed, seqs);
    }

    #[test]
    fn fasta_wraps_long_sequences() {
        let seq = ProteinSequence::parse("long", &"A".repeat(150)).unwrap();
        let text = write_fasta(std::slice::from_ref(&seq));
        let body_lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(body_lines.len(), 3);
        assert_eq!(body_lines[0].len(), 60);
        assert_eq!(body_lines[2].len(), 30);
    }

    #[test]
    fn fasta_rejects_dataless_prefix() {
        assert!(matches!(
            parse_fasta("ACDE\n>x\nAA"),
            Err(PhyloError::MalformedFasta(_))
        ));
    }

    #[test]
    fn fasta_rejects_empty_header() {
        assert!(matches!(
            parse_fasta(">\nACDE"),
            Err(PhyloError::MalformedFasta(_))
        ));
    }

    #[test]
    fn fasta_empty_input_is_empty() {
        assert!(parse_fasta("").unwrap().is_empty());
        assert!(parse_fasta("\n\n").unwrap().is_empty());
    }
}
