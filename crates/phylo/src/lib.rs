#![warn(missing_docs)]

//! Phylogenetics substrate for the DrugTree reproduction.
//!
//! This crate provides everything needed to go from a set of protein
//! sequences to an indexed, queryable phylogenetic tree:
//!
//! * [`seq`] — amino-acid alphabets, protein sequences, FASTA I/O.
//! * [`matrices`] — substitution scoring matrices (BLOSUM62).
//! * [`align`] — Needleman–Wunsch global alignment with affine gaps.
//! * [`distance`] — evolutionary distance estimators and the
//!   [`distance::DistanceMatrix`] type.
//! * [`tree`] — the arena-allocated [`tree::Tree`] structure.
//! * [`newick`] — Newick serialization and parsing.
//! * [`nj`] / [`upgma`] — distance-based tree construction.
//! * [`index`] — the [`index::TreeIndex`]: Euler-tour intervals, leaf
//!   ranks, depths and binary-lifting LCA. This is the structure the
//!   DrugTree query optimizer rewrites subtree predicates against
//!   (design decision D1 in DESIGN.md).
//! * [`succinct`] — flat parent/enter/exit arrays with a leaf-count
//!   prefix: O(1) ancestry and Euler-tour intervals at ~16 bytes per
//!   node, the representation million-leaf trees are queried through.
//! * [`stats`] — per-subtree structural statistics.
//! * [`compare`] — Robinson–Foulds distances for validating
//!   reconstructions against ground truth.
//! * [`reroot`] — midpoint rooting and edge re-rooting for the
//!   unrooted topologies neighbor joining produces.

pub mod align;
pub mod compare;
pub mod distance;
pub mod error;
pub mod index;
pub mod matrices;
pub mod newick;
pub mod nj;
pub mod reroot;
pub mod seq;
pub mod stats;
pub mod succinct;
pub mod tree;
pub mod upgma;

pub use error::PhyloError;
pub use index::TreeIndex;
pub use succinct::SuccinctTree;
pub use tree::{NodeId, Tree};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PhyloError>;
