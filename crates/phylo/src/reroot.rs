//! Re-rooting: place the root where it belongs.
//!
//! Neighbor joining produces an *unrooted* topology; the final
//! three-way join becomes the displayed root only by convention, which
//! can make the cladogram wildly unbalanced. Midpoint rooting puts the
//! root halfway along the longest leaf-to-leaf path — the standard
//! heuristic when no outgroup is available.

use crate::tree::{NodeId, Tree};
use crate::{PhyloError, Result};

/// An undirected edge view of the tree: (child id, parent id, length),
/// for every non-root node.
fn edges(tree: &Tree) -> Vec<(NodeId, NodeId, f64)> {
    tree.node_ids()
        .filter_map(|id| {
            tree.node_unchecked(id)
                .parent
                .map(|p| (id, p, tree.node_unchecked(id).branch_length))
        })
        .collect()
}

/// Single-source longest distances over the undirected tree
/// (Dijkstra-free: trees have unique paths, one DFS suffices).
fn distances_from(tree: &Tree, start: NodeId) -> Vec<f64> {
    let n = tree.len();
    let mut adjacency: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
    for (a, b, len) in edges(tree) {
        adjacency[a.index()].push((b, len));
        adjacency[b.index()].push((a, len));
    }
    let mut dist = vec![f64::NAN; n];
    dist[start.index()] = 0.0;
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        for &(to, len) in &adjacency[v.index()] {
            if dist[to.index()].is_nan() {
                dist[to.index()] = dist[v.index()] + len;
                stack.push(to);
            }
        }
    }
    dist
}

/// The two endpoints and length of the longest leaf-to-leaf path (the
/// tree's "diameter"), found with the classic double-sweep.
pub fn longest_leaf_path(tree: &Tree) -> Result<(NodeId, NodeId, f64)> {
    let leaves = tree.leaves();
    if leaves.len() < 2 {
        return Err(PhyloError::TooFewTaxa(leaves.len()));
    }
    let far_leaf = |from: NodeId| -> (NodeId, f64) {
        let dist = distances_from(tree, from);
        leaves
            .iter()
            .map(|&l| (l, dist[l.index()]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((from, 0.0))
    };
    let (a, _) = far_leaf(leaves[0]);
    let (b, diameter) = far_leaf(a);
    Ok((a, b, diameter))
}

/// Re-root the tree on the edge above `node`, `fraction` of the way
/// from `node` toward its parent (0 = at the node, 1 = at the parent).
/// Returns a new tree over the same labels and branch lengths, with a
/// fresh binary root splitting that edge.
pub fn reroot_on_edge(tree: &Tree, node: NodeId, fraction: f64) -> Result<Tree> {
    // Recursive copy of the subtree hanging off `from`, entered via
    // `via` (which is not descended into again).
    fn copy_subtree(
        tree: &Tree,
        adjacency: &[Vec<(NodeId, f64)>],
        out: &mut Tree,
        attach_to: NodeId,
        from: NodeId,
        via: NodeId,
        branch_length: f64,
    ) {
        let label = tree.node_unchecked(from).label.clone();
        let Ok(new_id) = out.add_child(attach_to, label, branch_length) else {
            return; // attach target came from this builder; cannot fail
        };
        for &(next, len) in &adjacency[from.index()] {
            if next != via {
                copy_subtree(tree, adjacency, out, new_id, next, from, len);
            }
        }
    }

    // A unary root is an unlabeled degree-1 vertex in the unrooted
    // view; left in place it would dangle as a spurious leaf after
    // re-rooting. Callers re-rooting such trees should [`normalize`]
    // first (midpoint_root does); here we only reject the root itself.
    let parent = tree
        .node(node)?
        .parent
        .ok_or_else(|| PhyloError::InvalidValue("cannot re-root above the root".into()))?;
    let fraction = fraction.clamp(0.0, 1.0);
    let edge_len = tree.node_unchecked(node).branch_length;

    // Build undirected adjacency once; then clone the tree outward from
    // the two halves of the split edge.
    let n = tree.len();
    let mut adjacency: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
    for (a, b, len) in edges(tree) {
        adjacency[a.index()].push((b, len));
        adjacency[b.index()].push((a, len));
    }

    let mut out = Tree::with_root(None);
    let root = out.root();

    copy_subtree(
        tree,
        &adjacency,
        &mut out,
        root,
        node,
        parent,
        edge_len * fraction,
    );
    copy_subtree(
        tree,
        &adjacency,
        &mut out,
        root,
        parent,
        node,
        edge_len * (1.0 - fraction),
    );
    // The old root may have become a unary pass-through node; collapse
    // such nodes so the topology stays clean.
    let out = collapse_unary(&out);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// Midpoint-root the tree: root at the halfway point of the longest
/// leaf-to-leaf path. The input is [`normalize`]d first, so unary
/// chains (including a unary root) never survive into the result.
pub fn midpoint_root(tree: &Tree) -> Result<Tree> {
    let tree = &normalize(tree);
    let (a, b, diameter) = longest_leaf_path(tree)?;
    if diameter <= 0.0 {
        return Err(PhyloError::InvalidValue(
            "tree has zero diameter; midpoint undefined".into(),
        ));
    }
    let half = diameter / 2.0;

    // Walk the explicit a→b tree path (up to the LCA, then down), so
    // every consecutive pair is a real edge even with zero-length
    // branches or distance ties.
    let up_a = tree.ancestors(a)?;
    let up_b = tree.ancestors(b)?;
    let set_a: std::collections::HashSet<NodeId> = up_a.iter().copied().collect();
    let lca = *up_b.iter().find(|n| set_a.contains(n)).ok_or_else(|| {
        PhyloError::InvalidValue("diameter endpoints share no common ancestor".into())
    })?;
    let mut path: Vec<NodeId> = up_a.iter().copied().take_while(|&n| n != lca).collect();
    path.push(lca);
    let down_b: Vec<NodeId> = up_b.iter().copied().take_while(|&n| n != lca).collect();
    path.extend(down_b.into_iter().rev());

    // Accumulate distance from `a`; find the edge crossing `half`.
    let mut acc = 0.0;
    for pair in path.windows(2) {
        let (u, v) = (pair[0], pair[1]);
        // Exactly one of u, v is the other's child.
        let child = if tree.node_unchecked(u).parent == Some(v) {
            u
        } else {
            v
        };
        let edge_len = tree.node_unchecked(child).branch_length;
        let next = acc + edge_len;
        if half <= next + 1e-12 {
            // Distance from the child end of the edge to the midpoint.
            let from_child = if child == u { half - acc } else { next - half };
            let fraction = if edge_len <= 0.0 {
                0.5
            } else {
                (from_child / edge_len).clamp(0.0, 1.0)
            };
            return reroot_on_edge(tree, child, fraction);
        }
        acc = next;
    }
    Err(PhyloError::InvalidValue("midpoint edge not found".into()))
}

/// Normalize a tree: collapse unary internal nodes (summing their
/// branch lengths) and promote through unary roots (whose single edge
/// carries no topological information).
pub fn normalize(tree: &Tree) -> Tree {
    fn copy(tree: &Tree, out: &mut Tree, attach_to: NodeId, from: NodeId) {
        for &c in &tree.node_unchecked(from).children {
            let node = tree.node_unchecked(c);
            let Ok(new_id) = out.add_child(attach_to, node.label.clone(), node.branch_length)
            else {
                continue; // attach target came from this builder; cannot fail
            };
            copy(tree, out, new_id, c);
        }
    }

    // Descend through unary roots first.
    let mut top = tree.root();
    while tree.node_unchecked(top).children.len() == 1 {
        top = tree.node_unchecked(top).children[0];
    }
    if top == tree.root() {
        return collapse_unary(tree);
    }
    // Rebuild with `top` as the root, then collapse internal unaries.
    let mut rebased = Tree::with_root(tree.node_unchecked(top).label.clone());
    let root = rebased.root();
    copy(tree, &mut rebased, root, top);
    collapse_unary(&rebased)
}

/// Collapse unary internal nodes (single-child, non-root), summing
/// branch lengths.
fn collapse_unary(tree: &Tree) -> Tree {
    fn copy(tree: &Tree, out: &mut Tree, attach_to: NodeId, from: NodeId, carried_length: f64) {
        let node = tree.node_unchecked(from);
        if node.children.len() == 1 && node.parent.is_some() {
            // Skip this node; extend the branch.
            let only = node.children[0];
            let extra = tree.node_unchecked(only).branch_length;
            copy(tree, out, attach_to, only, carried_length + extra);
            return;
        }
        let Ok(new_id) = out.add_child(attach_to, node.label.clone(), carried_length) else {
            return; // attach target came from this builder; cannot fail
        };
        for &c in &node.children {
            copy(tree, out, new_id, c, tree.node_unchecked(c).branch_length);
        }
    }

    let mut out = Tree::with_root(tree.node_unchecked(tree.root()).label.clone());
    let root = out.root();
    for &c in &tree.node_unchecked(tree.root()).children {
        copy(
            tree,
            &mut out,
            root,
            c,
            tree.node_unchecked(c).branch_length,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::robinson_foulds;
    use crate::newick::parse_newick;

    #[test]
    fn longest_path_found() {
        // Diameter: d(1) - a(1) - ab(1) - cd(3) - f(5) hmm — compute:
        // ((d:1,e:2)a:3,b:4,(f:5)c:6)r — longest is e(2)+a(3) -> root -> c(6)+f(5) = 16.
        let t = parse_newick("((d:1,e:2)a:3,b:4,(f:5)c:6)r;").unwrap();
        let (x, y, diameter) = longest_leaf_path(&t).unwrap();
        let labels: std::collections::BTreeSet<&str> = [x, y]
            .iter()
            .map(|&n| t.node_unchecked(n).label.as_deref().unwrap())
            .collect();
        assert_eq!(labels, ["e", "f"].into_iter().collect());
        assert!((diameter - 16.0).abs() < 1e-9);
    }

    #[test]
    fn midpoint_balances_depths() {
        let t = parse_newick("((d:1,e:2)a:3,b:4,(f:5)c:6)r;").unwrap();
        let rooted = midpoint_root(&t).unwrap();
        rooted.check_invariants().unwrap();
        assert_eq!(rooted.leaf_count(), t.leaf_count());
        // The two deepest leaves are now equidistant from the root.
        let depth = |label: &str| {
            rooted
                .root_distance(rooted.find_by_label(label).unwrap())
                .unwrap()
        };
        assert!((depth("e") - 8.0).abs() < 1e-9, "e at {}", depth("e"));
        assert!((depth("f") - 8.0).abs() < 1e-9, "f at {}", depth("f"));
        // And no leaf is deeper than the midpoint radius.
        for leaf in rooted.leaves() {
            assert!(rooted.root_distance(leaf).unwrap() <= 8.0 + 1e-9);
        }
    }

    #[test]
    fn rerooting_preserves_unrooted_topology() {
        let t = parse_newick(
            "(((a:1,b:1)ab:2,(c:1,d:1)cd:2)abcd:1,((e:1,f:1)ef:2,(g:1,h:4)gh:2)efgh:1)r;",
        )
        .unwrap();
        let rooted = midpoint_root(&t).unwrap();
        // Splits (which RF compares) are an unrooted invariant — but
        // internal labels may shift; compare leaf-set splits only.
        let rf = robinson_foulds(&t, &rooted).unwrap();
        assert_eq!(rf, 0, "re-rooting must not change the unrooted topology");
        // Total branch length is conserved.
        let total = |tree: &Tree| -> f64 {
            tree.node_ids()
                .map(|id| tree.node_unchecked(id).branch_length)
                .sum()
        };
        assert!((total(&t) - total(&rooted)).abs() < 1e-9);
    }

    #[test]
    fn reroot_on_edge_splits_lengths() {
        let t = parse_newick("((a:2,b:2)ab:4,c:6)r;").unwrap();
        let ab = t.find_by_label("ab").unwrap();
        let rooted = reroot_on_edge(&t, ab, 0.25).unwrap();
        // New root splits the 4-length edge 1.0 / 3.0.
        let ab_new = rooted.find_by_label("ab").unwrap();
        assert!((rooted.node(ab_new).unwrap().branch_length - 1.0).abs() < 1e-9);
        rooted.check_invariants().unwrap();
        assert_eq!(rooted.leaf_count(), 3);
    }

    #[test]
    fn errors() {
        let t = parse_newick("(a:1,b:1);").unwrap();
        assert!(reroot_on_edge(&t, t.root(), 0.5).is_err());
        let single = parse_newick("a;").unwrap();
        assert!(longest_leaf_path(&single).is_err());
        let zero = parse_newick("(a:0,b:0);").unwrap();
        assert!(midpoint_root(&zero).is_err());
    }

    #[test]
    fn normalize_collapses_unary_chains() {
        // root -> x -> (a, b) with a unary root and a unary internal.
        let t = parse_newick("(((a:1,b:2)ab:3)mid:4)root;").unwrap();
        let n = normalize(&t);
        n.check_invariants().unwrap();
        assert_eq!(n.leaf_count(), 2);
        // The unary chain root->mid->ab collapses to a root named "ab"
        // (roots carry no branch, so mid's 4 and ab's 3 vanish with the
        // unary root; a and b keep their lengths).
        assert_eq!(n.node(n.root()).unwrap().label.as_deref(), Some("ab"));
        assert_eq!(n.len(), 3);
        // Idempotent.
        assert_eq!(normalize(&n), n);
    }

    #[test]
    fn midpoint_handles_unary_roots() {
        let t = parse_newick("((a:1,(b:2)bb:1)x:5)root;").unwrap();
        let rooted = midpoint_root(&t).unwrap();
        rooted.check_invariants().unwrap();
        // Only real taxa remain as leaves.
        let leaves: std::collections::BTreeSet<&str> = rooted
            .leaves()
            .iter()
            .map(|&l| rooted.node_unchecked(l).label.as_deref().unwrap())
            .collect();
        assert_eq!(leaves, ["a", "b"].into_iter().collect());
        // Midpoint of the a-b path (1 + 1 + 2 = 4): both at depth 2.
        for leaf in rooted.leaves() {
            assert!((rooted.root_distance(leaf).unwrap() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn nj_tree_midpoint_rooted_is_more_balanced() {
        use crate::distance::DistanceMatrix;
        use crate::nj::neighbor_joining;
        // An additive matrix with a long pendant edge: the NJ rooting
        // is arbitrary; midpoint rooting should not *worsen* the
        // max/min depth imbalance.
        let square = [
            vec![0.0, 5.0, 9.0, 9.0, 8.0],
            vec![5.0, 0.0, 10.0, 10.0, 9.0],
            vec![9.0, 10.0, 0.0, 8.0, 7.0],
            vec![9.0, 10.0, 8.0, 0.0, 3.0],
            vec![8.0, 9.0, 7.0, 3.0, 0.0],
        ];
        let labels: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let dm = DistanceMatrix::from_square(labels, &square).unwrap();
        let nj = neighbor_joining(&dm).unwrap();
        let rooted = midpoint_root(&nj).unwrap();
        let spread = |tree: &Tree| {
            let depths: Vec<f64> = tree
                .leaves()
                .iter()
                .map(|&l| tree.root_distance(l).unwrap())
                .collect();
            depths.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - depths.iter().copied().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&rooted) <= spread(&nj) + 1e-9);
        assert_eq!(robinson_foulds(&nj, &rooted).unwrap(), 0);
    }
}
