//! Substitution scoring matrices for protein alignment.
//!
//! Only BLOSUM62 is embedded (the default matrix of essentially every
//! protein-alignment tool, including those behind DrugTree-era pipelines).
//! The matrix is stored dense over the 21-letter alphabet of
//! [`crate::seq::AminoAcid`]; rows/columns for `Xaa` are a uniform -1,
//! a common simplification of the NCBI table.

use crate::seq::{AminoAcid, ALPHABET_SIZE};

/// A dense, symmetric residue-substitution scoring matrix.
#[derive(Debug, Clone)]
pub struct ScoringMatrix {
    name: &'static str,
    scores: [[i32; ALPHABET_SIZE]; ALPHABET_SIZE],
}

impl ScoringMatrix {
    /// Score for substituting `a` with `b`.
    #[inline]
    pub fn score(&self, a: AminoAcid, b: AminoAcid) -> i32 {
        self.scores[a.index()][b.index()]
    }

    /// Human-readable matrix name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The BLOSUM62 matrix.
    pub fn blosum62() -> ScoringMatrix {
        // Row order matches the AminoAcid discriminants:
        // A R N D C Q E G H I L K M F P S T W Y V X
        const B62: [[i32; 21]; 21] = [
            [
                4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -1,
            ],
            [
                -1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1,
            ],
            [
                -2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, -1,
            ],
            [
                -2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, -1,
            ],
            [
                0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -1,
            ],
            [
                -1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, -1,
            ],
            [
                -1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, -1,
            ],
            [
                0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1,
            ],
            [
                -2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, -1,
            ],
            [
                -1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -1,
            ],
            [
                -1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -1,
            ],
            [
                -1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, -1,
            ],
            [
                -1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -1,
            ],
            [
                -2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -1,
            ],
            [
                -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -1,
            ],
            [
                1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, -1,
            ],
            [
                0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1,
            ],
            [
                -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -1,
            ],
            [
                -2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -1,
            ],
            [
                0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -1,
            ],
            [
                -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
            ],
        ];
        ScoringMatrix {
            name: "BLOSUM62",
            scores: B62,
        }
    }

    /// A simple identity matrix: `match_score` on the diagonal,
    /// `mismatch_score` elsewhere. Useful for tests and for the identity
    /// distance estimator.
    pub fn identity(match_score: i32, mismatch_score: i32) -> ScoringMatrix {
        let mut scores = [[mismatch_score; ALPHABET_SIZE]; ALPHABET_SIZE];
        for (i, row) in scores.iter_mut().enumerate() {
            row[i] = match_score;
        }
        ScoringMatrix {
            name: "identity",
            scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{AminoAcid, CANONICAL};

    #[test]
    fn blosum62_is_symmetric() {
        let m = ScoringMatrix::blosum62();
        for &a in &CANONICAL {
            for &b in &CANONICAL {
                assert_eq!(m.score(a, b), m.score(b, a), "{a}{b}");
            }
        }
    }

    #[test]
    fn blosum62_spot_values() {
        let m = ScoringMatrix::blosum62();
        assert_eq!(m.score(AminoAcid::Trp, AminoAcid::Trp), 11);
        assert_eq!(m.score(AminoAcid::Ala, AminoAcid::Ala), 4);
        assert_eq!(m.score(AminoAcid::Cys, AminoAcid::Cys), 9);
        assert_eq!(m.score(AminoAcid::Trp, AminoAcid::Gly), -2);
        assert_eq!(m.score(AminoAcid::Ile, AminoAcid::Val), 3);
        assert_eq!(m.score(AminoAcid::Asp, AminoAcid::Glu), 2);
        assert_eq!(m.score(AminoAcid::Xaa, AminoAcid::Ala), -1);
    }

    #[test]
    fn blosum62_diagonal_dominates_row() {
        // Each residue should score at least as high against itself as
        // against any other residue — a sanity property of log-odds
        // substitution matrices.
        let m = ScoringMatrix::blosum62();
        for &a in &CANONICAL {
            for &b in &CANONICAL {
                assert!(m.score(a, a) >= m.score(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn identity_matrix() {
        let m = ScoringMatrix::identity(2, -1);
        assert_eq!(m.score(AminoAcid::Ala, AminoAcid::Ala), 2);
        assert_eq!(m.score(AminoAcid::Ala, AminoAcid::Gly), -1);
    }
}
