//! The tree index: Euler-tour intervals, leaf ranks, depths, and
//! constant-time-ish LCA via binary lifting.
//!
//! This structure realizes design decision **D1** of DESIGN.md: every
//! node receives a half-open *leaf interval* `[leaf_lo, leaf_hi)` over
//! the left-to-right leaf order, so "in the subtree of `n`" becomes a
//! one-dimensional range predicate. The DrugTree query optimizer
//! rewrites subtree selections into these intervals, the store indexes
//! overlay rows by leaf rank, and the semantic cache compares queries
//! for containment by interval inclusion.

use crate::tree::{NodeId, Tree};
use crate::{PhyloError, Result};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Half-open interval over leaf ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LeafInterval {
    /// Inclusive lower leaf rank.
    pub lo: u32,
    /// Exclusive upper leaf rank.
    pub hi: u32,
}

impl LeafInterval {
    /// Number of leaves covered.
    #[inline]
    pub fn len(self) -> u32 {
        self.hi.saturating_sub(self.lo)
    }

    /// True when the interval covers no leaves.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.hi <= self.lo
    }

    /// True when `self` fully contains `other`.
    #[inline]
    pub fn contains(self, other: LeafInterval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// True when a single leaf rank falls inside the interval.
    #[inline]
    pub fn contains_rank(self, rank: u32) -> bool {
        self.lo <= rank && rank < self.hi
    }

    /// True when the two intervals share at least one rank.
    #[inline]
    pub fn overlaps(self, other: LeafInterval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(self, other: LeafInterval) -> Option<LeafInterval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo < hi).then_some(LeafInterval { lo, hi })
    }
}

/// Immutable index over a [`Tree`]. Rebuild after structural changes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeIndex {
    /// Per-node leaf interval, indexed by `NodeId::index()`.
    intervals: Vec<LeafInterval>,
    /// Per-node depth (root = 0).
    depths: Vec<u32>,
    /// Leaf rank -> NodeId of the leaf.
    rank_to_leaf: Vec<NodeId>,
    /// NodeId::index() -> leaf rank (u32::MAX for internal nodes).
    leaf_rank: Vec<u32>,
    /// Binary-lifting ancestor table: `up[k][v]` is the 2^k-th ancestor.
    up: Vec<Vec<NodeId>>,
    /// Preorder position of each node (for subtree preorder ranges).
    preorder_pos: Vec<u32>,
    /// Nodes in preorder.
    preorder: Vec<NodeId>,
    /// Label -> node id (first occurrence wins).
    label_index: FxHashMap<String, NodeId>,
}

impl TreeIndex {
    /// Build the full index in `O(n log n)`.
    pub fn build(tree: &Tree) -> TreeIndex {
        let n = tree.len();
        let preorder = tree.preorder();

        let mut intervals = vec![LeafInterval { lo: 0, hi: 0 }; n];
        let mut depths = vec![0u32; n];
        let mut leaf_rank = vec![u32::MAX; n];
        let mut rank_to_leaf = Vec::new();
        let mut preorder_pos = vec![0u32; n];
        let mut label_index = FxHashMap::default();

        for (pos, &id) in preorder.iter().enumerate() {
            preorder_pos[id.index()] = pos as u32;
            let node = tree.node_unchecked(id);
            if let Some(parent) = node.parent {
                depths[id.index()] = depths[parent.index()] + 1;
            }
            if let Some(label) = &node.label {
                label_index.entry(label.clone()).or_insert(id);
            }
            if node.is_leaf() {
                let rank = rank_to_leaf.len() as u32;
                leaf_rank[id.index()] = rank;
                rank_to_leaf.push(id);
            }
        }

        // Postorder pass assigns each internal node the union of its
        // children's intervals; leaves get [rank, rank+1).
        for &id in &tree.postorder() {
            let node = tree.node_unchecked(id);
            if node.is_leaf() {
                let r = leaf_rank[id.index()];
                intervals[id.index()] = LeafInterval { lo: r, hi: r + 1 };
            } else {
                let lo = intervals[node.children[0].index()].lo;
                let hi = intervals[node.children[node.children.len() - 1].index()].hi;
                intervals[id.index()] = LeafInterval { lo, hi };
            }
        }

        // Binary-lifting table.
        let levels = (usize::BITS - n.leading_zeros()).max(1) as usize;
        let mut up = vec![vec![tree.root(); n]; levels];
        for &id in &preorder {
            up[0][id.index()] = tree.node_unchecked(id).parent.unwrap_or(tree.root());
        }
        for k in 1..levels {
            for v in 0..n {
                let mid = up[k - 1][v];
                up[k][v] = up[k - 1][mid.index()];
            }
        }

        TreeIndex {
            intervals,
            depths,
            rank_to_leaf,
            leaf_rank,
            up,
            preorder_pos,
            preorder,
            label_index,
        }
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.intervals.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.rank_to_leaf.len()
    }

    /// Leaf interval of a node's subtree.
    #[inline]
    pub fn interval(&self, id: NodeId) -> LeafInterval {
        self.intervals[id.index()]
    }

    /// Depth of a node (root = 0).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depths[id.index()]
    }

    /// The leaf at a given rank.
    pub fn leaf_at(&self, rank: u32) -> Result<NodeId> {
        self.rank_to_leaf
            .get(rank as usize)
            .copied()
            .ok_or_else(|| PhyloError::InvalidValue(format!("leaf rank {rank} out of range")))
    }

    /// The rank of a leaf node, `None` for internal nodes.
    pub fn rank_of(&self, id: NodeId) -> Option<u32> {
        match self.leaf_rank.get(id.index()) {
            Some(&r) if r != u32::MAX => Some(r),
            _ => None,
        }
    }

    /// Leaves covered by a node's subtree, in rank order.
    pub fn leaves_under(&self, id: NodeId) -> &[NodeId] {
        let iv = self.interval(id);
        &self.rank_to_leaf[iv.lo as usize..iv.hi as usize]
    }

    /// True when `ancestor` is `node` or one of its ancestors.
    #[inline]
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        // Ancestry in a preorder/leaf-interval scheme: the ancestor's
        // preorder position precedes and its interval contains.
        let pa = self.preorder_pos[ancestor.index()];
        let pn = self.preorder_pos[node.index()];
        if pa > pn {
            return false;
        }
        let ia = self.intervals[ancestor.index()];
        let inn = self.intervals[node.index()];
        if inn.is_empty() {
            // Degenerate: cannot happen for built trees (every node
            // dominates at least one leaf), kept for safety.
            return ancestor == node;
        }
        ia.contains(inn)
    }

    /// Lowest common ancestor of two nodes via binary lifting.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_ancestor(a, b) {
            return a;
        }
        if self.is_ancestor(b, a) {
            return b;
        }
        let mut a = a;
        for k in (0..self.up.len()).rev() {
            let cand = self.up[k][a.index()];
            if !self.is_ancestor(cand, b) {
                a = cand;
            }
        }
        self.up[0][a.index()]
    }

    /// The 2^0 ancestor (parent), root maps to itself.
    pub fn parent(&self, id: NodeId) -> NodeId {
        self.up[0][id.index()]
    }

    /// Jump `steps` ancestors upward (clamped at the root).
    pub fn ancestor_at(&self, id: NodeId, steps: u32) -> NodeId {
        let mut cur = id;
        let mut remaining = steps;
        let mut k = 0;
        while remaining > 0 && k < self.up.len() {
            if remaining & 1 == 1 {
                cur = self.up[k][cur.index()];
            }
            remaining >>= 1;
            k += 1;
        }
        cur
    }

    /// Nodes in preorder (the display order of a cladogram).
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Preorder position of a node.
    pub fn preorder_pos(&self, id: NodeId) -> u32 {
        self.preorder_pos[id.index()]
    }

    /// Resolve a label to a node id.
    pub fn by_label(&self, label: &str) -> Result<NodeId> {
        self.label_index
            .get(label)
            .copied()
            .ok_or_else(|| PhyloError::UnknownLabel(label.to_string()))
    }

    /// The deepest node whose subtree covers the whole interval — the
    /// tightest clade containing a leaf range. Walks down from the root.
    pub fn tightest_clade(&self, tree: &Tree, iv: LeafInterval) -> NodeId {
        let mut current = tree.root();
        'outer: loop {
            for &c in &tree.node_unchecked(current).children {
                if self.interval(c).contains(iv) {
                    current = c;
                    continue 'outer;
                }
            }
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse_newick;

    fn sample() -> (Tree, TreeIndex) {
        // ((d,e)a, b, (f)c)r — same shape as tree.rs's sample.
        let t = parse_newick("((d:1,e:1)a:1,b:1,(f:1)c:1)r;").unwrap();
        let idx = TreeIndex::build(&t);
        (t, idx)
    }

    #[test]
    fn leaf_ranks_follow_display_order() {
        let (t, idx) = sample();
        assert_eq!(idx.leaf_count(), 4);
        let names: Vec<&str> = (0..4)
            .map(|r| {
                let id = idx.leaf_at(r).unwrap();
                t.node_unchecked(id).label.as_deref().unwrap()
            })
            .collect();
        assert_eq!(names, ["d", "e", "b", "f"]);
        assert!(idx.leaf_at(4).is_err());
    }

    #[test]
    fn intervals_cover_subtrees() {
        let (t, idx) = sample();
        let a = t.find_by_label("a").unwrap();
        let c = t.find_by_label("c").unwrap();
        assert_eq!(idx.interval(a), LeafInterval { lo: 0, hi: 2 });
        assert_eq!(idx.interval(c), LeafInterval { lo: 3, hi: 4 });
        assert_eq!(idx.interval(t.root()), LeafInterval { lo: 0, hi: 4 });
    }

    #[test]
    fn interval_algebra() {
        let x = LeafInterval { lo: 0, hi: 4 };
        let y = LeafInterval { lo: 2, hi: 6 };
        let z = LeafInterval { lo: 4, hi: 5 };
        assert!(x.overlaps(y));
        assert!(!x.overlaps(z));
        assert_eq!(x.intersect(y), Some(LeafInterval { lo: 2, hi: 4 }));
        assert_eq!(x.intersect(z), None);
        assert!(x.contains(LeafInterval { lo: 1, hi: 3 }));
        assert!(!y.contains(x));
        assert!(x.contains_rank(0));
        assert!(!x.contains_rank(4));
        assert_eq!(x.len(), 4);
        assert!(LeafInterval { lo: 3, hi: 3 }.is_empty());
    }

    #[test]
    fn depths() {
        let (t, idx) = sample();
        assert_eq!(idx.depth(t.root()), 0);
        assert_eq!(idx.depth(t.find_by_label("a").unwrap()), 1);
        assert_eq!(idx.depth(t.find_by_label("d").unwrap()), 2);
    }

    #[test]
    fn ancestry() {
        let (t, idx) = sample();
        let r = t.root();
        let a = t.find_by_label("a").unwrap();
        let d = t.find_by_label("d").unwrap();
        let b = t.find_by_label("b").unwrap();
        assert!(idx.is_ancestor(r, d));
        assert!(idx.is_ancestor(a, d));
        assert!(idx.is_ancestor(a, a));
        assert!(!idx.is_ancestor(d, a));
        assert!(!idx.is_ancestor(a, b));
    }

    #[test]
    fn lca_matches_naive() {
        let (t, idx) = sample();
        let naive_lca = |x: NodeId, y: NodeId| {
            let px = t.ancestors(x).unwrap();
            let py: std::collections::HashSet<_> = t.ancestors(y).unwrap().into_iter().collect();
            *px.iter().find(|id| py.contains(id)).unwrap()
        };
        let ids: Vec<NodeId> = t.node_ids().collect();
        for &x in &ids {
            for &y in &ids {
                assert_eq!(idx.lca(x, y), naive_lca(x, y), "lca({x},{y})");
            }
        }
    }

    #[test]
    fn leaves_under() {
        let (t, idx) = sample();
        let a = t.find_by_label("a").unwrap();
        let under = idx.leaves_under(a);
        let names: Vec<&str> = under
            .iter()
            .map(|&l| t.node_unchecked(l).label.as_deref().unwrap())
            .collect();
        assert_eq!(names, ["d", "e"]);
        assert_eq!(idx.leaves_under(t.root()).len(), 4);
    }

    #[test]
    fn ancestor_jumps() {
        let (t, idx) = sample();
        let d = t.find_by_label("d").unwrap();
        let a = t.find_by_label("a").unwrap();
        assert_eq!(idx.ancestor_at(d, 0), d);
        assert_eq!(idx.ancestor_at(d, 1), a);
        assert_eq!(idx.ancestor_at(d, 2), t.root());
        // Clamped at root.
        assert_eq!(idx.ancestor_at(d, 99), t.root());
        assert_eq!(idx.parent(t.root()), t.root());
    }

    #[test]
    fn tightest_clade() {
        let (t, idx) = sample();
        let a = t.find_by_label("a").unwrap();
        assert_eq!(idx.tightest_clade(&t, LeafInterval { lo: 0, hi: 2 }), a);
        assert_eq!(
            idx.tightest_clade(&t, LeafInterval { lo: 0, hi: 3 }),
            t.root()
        );
        let d = t.find_by_label("d").unwrap();
        assert_eq!(idx.tightest_clade(&t, LeafInterval { lo: 0, hi: 1 }), d);
    }

    #[test]
    fn by_label() {
        let (t, idx) = sample();
        assert_eq!(idx.by_label("e").unwrap(), t.find_by_label("e").unwrap());
        assert!(idx.by_label("nope").is_err());
    }

    #[test]
    fn deep_chain_lca_and_depth() {
        // A pathological 64-deep caterpillar exercises multiple lifting
        // levels.
        let mut t = Tree::with_root(Some("n0".into()));
        let mut cur = t.root();
        for i in 1..=64 {
            let inner = t.add_child(cur, Some(format!("n{i}")), 1.0).unwrap();
            t.add_child(cur, Some(format!("leaf{i}")), 1.0).unwrap();
            cur = inner;
        }
        // Make the chain tip a leaf as well.
        let idx = TreeIndex::build(&t);
        let deep = t.find_by_label("n64").unwrap();
        assert_eq!(idx.depth(deep), 64);
        let l5 = t.find_by_label("leaf5").unwrap();
        let l60 = t.find_by_label("leaf60").unwrap();
        let lca = idx.lca(l5, l60);
        assert_eq!(t.node_unchecked(lca).label.as_deref(), Some("n4"));
        assert_eq!(idx.ancestor_at(deep, 64), t.root());
    }
}
