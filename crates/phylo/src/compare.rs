//! Tree comparison: Robinson–Foulds distance.
//!
//! The workload generator produces ground-truth trees and evolves
//! sequences along them; the RF distance between the reconstructed and
//! true tree quantifies how faithful the sequence→distance→NJ pipeline
//! is — the validation a real phylogenetics deployment would run.

use crate::index::TreeIndex;
use crate::tree::Tree;
use crate::{PhyloError, Result};
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;

/// The bipartitions (splits) induced by a tree's internal edges,
/// expressed as leaf-label sets (the side not containing the first
/// label, canonicalized to the smaller side with ties broken
/// lexicographically).
fn splits(tree: &Tree) -> Result<BTreeSet<Vec<String>>> {
    let index = TreeIndex::build(tree);
    let all_leaves: BTreeSet<String> = tree
        .leaves()
        .into_iter()
        .map(|l| {
            tree.node_unchecked(l)
                .label
                .clone()
                .ok_or_else(|| PhyloError::InvalidValue("unlabeled leaf".into()))
        })
        .collect::<Result<_>>()?;
    let n = all_leaves.len();

    let mut out = BTreeSet::new();
    for id in tree.node_ids() {
        let node = tree.node_unchecked(id);
        if node.is_leaf() || id == tree.root() {
            continue; // leaves give trivial splits; the root edge is not an edge
        }
        let side: BTreeSet<String> = index
            .leaves_under(id)
            .iter()
            .filter_map(|&l| tree.node_unchecked(l).label.clone())
            .collect();
        if side.len() <= 1 || side.len() >= n - 1 {
            continue; // trivial split
        }
        // Canonical representative: the smaller side; lexicographic tie-break.
        let other: BTreeSet<String> = all_leaves.difference(&side).cloned().collect();
        let canonical = match side.len().cmp(&other.len()) {
            std::cmp::Ordering::Less => side,
            std::cmp::Ordering::Greater => other,
            std::cmp::Ordering::Equal => {
                if side.iter().next() <= other.iter().next() {
                    side
                } else {
                    other
                }
            }
        };
        out.insert(canonical.into_iter().collect());
    }
    Ok(out)
}

/// Robinson–Foulds distance: the number of non-trivial splits present
/// in exactly one of the two trees. Requires identical leaf label
/// sets.
pub fn robinson_foulds(a: &Tree, b: &Tree) -> Result<usize> {
    let labels = |t: &Tree| -> Result<BTreeSet<String>> {
        t.leaves()
            .into_iter()
            .map(|l| {
                t.node_unchecked(l)
                    .label
                    .clone()
                    .ok_or_else(|| PhyloError::InvalidValue("unlabeled leaf".into()))
            })
            .collect()
    };
    let la = labels(a)?;
    let lb = labels(b)?;
    if la != lb {
        return Err(PhyloError::InvalidValue(format!(
            "leaf sets differ ({} vs {} labels)",
            la.len(),
            lb.len()
        )));
    }
    let sa = splits(a)?;
    let sb = splits(b)?;
    Ok(sa.symmetric_difference(&sb).count())
}

/// Normalized RF distance in `[0, 1]`: the raw distance divided by the
/// maximum possible for two binary trees on `n` leaves, `2(n - 3)`.
/// Returns 0 for trees too small to have non-trivial splits.
pub fn normalized_robinson_foulds(a: &Tree, b: &Tree) -> Result<f64> {
    let n = a.leaf_count();
    let max = 2 * n.saturating_sub(3);
    if max == 0 {
        return Ok(0.0);
    }
    Ok(robinson_foulds(a, b)? as f64 / max as f64)
}

/// Count how many of `reference`'s non-trivial splits `estimate`
/// recovers (the "true positive" rate of a reconstruction).
pub fn recovered_splits(reference: &Tree, estimate: &Tree) -> Result<(usize, usize)> {
    let sr = splits(reference)?;
    let se = splits(estimate)?;
    Ok((sr.intersection(&se).count(), sr.len()))
}

/// Map each leaf label of `a` to its rank in `b` (diagnostics for
/// reconstruction drift). Labels absent from `b` map to `None`.
pub fn leaf_rank_map(a: &Tree, b: &Tree) -> FxHashMap<String, Option<u32>> {
    let ib = TreeIndex::build(b);
    a.leaves()
        .into_iter()
        .filter_map(|l| a.node_unchecked(l).label.clone())
        .map(|label| {
            let rank = ib.by_label(&label).ok().and_then(|n| ib.rank_of(n));
            (label, rank)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse_newick;

    #[test]
    fn identical_trees_distance_zero() {
        let t = parse_newick("((a:1,b:1):1,(c:1,d:1):1,(e:1,f:1):1);").unwrap();
        assert_eq!(robinson_foulds(&t, &t).unwrap(), 0);
        assert_eq!(normalized_robinson_foulds(&t, &t).unwrap(), 0.0);
        let (rec, total) = recovered_splits(&t, &t).unwrap();
        assert_eq!(rec, total);
    }

    #[test]
    fn rotation_is_free() {
        // Reordering children does not change the splits.
        let a = parse_newick("((a,b),(c,d));").unwrap();
        let b = parse_newick("((d,c),(b,a));").unwrap();
        assert_eq!(robinson_foulds(&a, &b).unwrap(), 0);
    }

    #[test]
    fn one_nni_costs_two() {
        // Swapping b and c across the internal edge changes one split
        // in each tree: ((a,b),(c,d)) vs ((a,c),(b,d)).
        let a = parse_newick("((a,b),(c,d));").unwrap();
        let b = parse_newick("((a,c),(b,d));").unwrap();
        assert_eq!(robinson_foulds(&a, &b).unwrap(), 2);
    }

    #[test]
    fn star_tree_has_no_splits() {
        let star = parse_newick("(a,b,c,d);").unwrap();
        let resolved = parse_newick("((a,b),(c,d));").unwrap();
        // The star contributes nothing; the resolved tree has 1
        // non-trivial split on each side of the root... the root's two
        // children give the same bipartition, counted once.
        let d = robinson_foulds(&star, &resolved).unwrap();
        assert_eq!(d, 1);
        let (rec, total) = recovered_splits(&resolved, &star).unwrap();
        assert_eq!((rec, total), (0, 1));
    }

    #[test]
    fn different_leaf_sets_rejected() {
        let a = parse_newick("((a,b),(c,d));").unwrap();
        let b = parse_newick("((a,b),(c,e));").unwrap();
        assert!(robinson_foulds(&a, &b).is_err());
    }

    #[test]
    fn normalization_bounds() {
        let a = parse_newick("(((a,b),c),((d,e),f));").unwrap();
        let b = parse_newick("(((a,f),d),((b,e),c));").unwrap();
        let norm = normalized_robinson_foulds(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&norm));
        assert!(norm > 0.0);
        // Tiny trees degrade gracefully.
        let t2 = parse_newick("(a,b);").unwrap();
        assert_eq!(normalized_robinson_foulds(&t2, &t2).unwrap(), 0.0);
    }

    #[test]
    fn leaf_rank_map_reports_positions() {
        let a = parse_newick("((a,b),(c,d));").unwrap();
        let b = parse_newick("((d,c),(b,a));").unwrap();
        let map = leaf_rank_map(&a, &b);
        assert_eq!(map["a"], Some(3));
        assert_eq!(map["d"], Some(0));
        let c = parse_newick("((a,b),(c,x));").unwrap();
        let map = leaf_rank_map(&a, &c);
        assert_eq!(map["d"], None);
    }
}
