//! Evolutionary distance estimation and the symmetric distance matrix.

use crate::align::{global_align, GapPenalty};
use crate::matrices::ScoringMatrix;
use crate::seq::ProteinSequence;
use crate::{PhyloError, Result};
use serde::{Deserialize, Serialize};

/// How to convert an observed proportion of differing sites (p-distance)
/// into an evolutionary distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceModel {
    /// Raw proportion of differing sites.
    PDistance,
    /// Poisson correction: `d = -ln(1 - p)`.
    Poisson,
    /// Kimura's (1983) empirical protein correction:
    /// `d = -ln(1 - p - p²/5)`.
    Kimura,
}

impl DistanceModel {
    /// Apply the model to a p-distance in `[0, 1]`.
    ///
    /// Saturated distances (where the corrected formula is undefined)
    /// are clamped to a large finite value so downstream matrix
    /// algorithms keep working.
    pub fn correct(self, p: f64) -> f64 {
        const SATURATED: f64 = 10.0;
        let p = p.clamp(0.0, 1.0);
        match self {
            DistanceModel::PDistance => p,
            DistanceModel::Poisson => {
                let arg = 1.0 - p;
                if arg <= f64::EPSILON {
                    SATURATED
                } else {
                    (-arg.ln()).min(SATURATED)
                }
            }
            DistanceModel::Kimura => {
                let arg = 1.0 - p - p * p / 5.0;
                if arg <= f64::EPSILON {
                    SATURATED
                } else {
                    (-arg.ln()).min(SATURATED)
                }
            }
        }
    }
}

/// A symmetric `n × n` distance matrix with zero diagonal, stored in
/// condensed upper-triangular form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    labels: Vec<String>,
    /// Condensed upper triangle, row-major: entry for `(i, j)` with
    /// `i < j` lives at `i*n - i*(i+1)/2 + (j - i - 1)`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// An all-zero matrix over the given labels.
    pub fn zeros(labels: Vec<String>) -> Self {
        let n = labels.len();
        DistanceMatrix {
            n,
            labels,
            data: vec![0.0; n * (n.saturating_sub(1)) / 2],
        }
    }

    /// Build from a full square matrix. The input must be symmetric with
    /// a zero diagonal (within `1e-9`).
    pub fn from_square(labels: Vec<String>, square: &[Vec<f64>]) -> Result<Self> {
        let n = labels.len();
        if square.len() != n || square.iter().any(|r| r.len() != n) {
            return Err(PhyloError::BadDimensions(format!(
                "expected {n}x{n} square matrix"
            )));
        }
        let mut m = DistanceMatrix::zeros(labels);
        for (i, row) in square.iter().enumerate() {
            if row[i].abs() > 1e-9 {
                return Err(PhyloError::BadDimensions(format!(
                    "diagonal entry ({i},{i}) is {}, expected 0",
                    row[i]
                )));
            }
            for (j, &cell) in row.iter().enumerate().skip(i + 1) {
                if (cell - square[j][i]).abs() > 1e-9 {
                    return Err(PhyloError::BadDimensions(format!(
                        "asymmetric at ({i},{j}): {cell} vs {}",
                        square[j][i]
                    )));
                }
                m.set(i, j, cell);
            }
        }
        Ok(m)
    }

    /// Number of taxa.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix has no taxa.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Taxon labels, in index order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between taxa `i` and `j` (order-insensitive).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else if i < j {
            self.data[self.offset(i, j)]
        } else {
            self.data[self.offset(j, i)]
        }
    }

    /// Set the distance between taxa `i` and `j` (order-insensitive).
    /// Setting a diagonal entry is a no-op.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        if i == j {
            return;
        }
        let off = if i < j {
            self.offset(i, j)
        } else {
            self.offset(j, i)
        };
        self.data[off] = value;
    }

    /// Sum of distances from taxon `i` to every other taxon (the `R_i`
    /// term of neighbor joining).
    pub fn row_sum(&self, i: usize) -> f64 {
        (0..self.n).map(|j| self.get(i, j)).sum()
    }
}

/// Compute all pairwise distances by global alignment.
///
/// Runs `n(n-1)/2` alignments; for family sizes in the hundreds this is
/// the dominant tree-construction cost (measured by experiment E9).
pub fn pairwise_distances(
    seqs: &[ProteinSequence],
    matrix: &ScoringMatrix,
    gap: GapPenalty,
    model: DistanceModel,
) -> Result<DistanceMatrix> {
    let labels: Vec<String> = seqs.iter().map(|s| s.id().to_string()).collect();
    let mut dm = DistanceMatrix::zeros(labels);
    for i in 0..seqs.len() {
        for j in (i + 1)..seqs.len() {
            let aln = global_align(seqs[i].residues(), seqs[j].residues(), matrix, gap)?;
            dm.set(i, j, model.correct(aln.p_distance()));
        }
    }
    Ok(dm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_agree_at_zero() {
        for m in [
            DistanceModel::PDistance,
            DistanceModel::Poisson,
            DistanceModel::Kimura,
        ] {
            assert_eq!(m.correct(0.0), 0.0);
        }
    }

    #[test]
    fn corrections_expand_distances() {
        // Corrected distances account for multiple hits, so they always
        // exceed the raw p-distance for 0 < p < saturation.
        for p in [0.05, 0.2, 0.5, 0.7] {
            assert!(DistanceModel::Poisson.correct(p) > p);
            assert!(DistanceModel::Kimura.correct(p) > p);
            // Kimura's correction is the more aggressive of the two.
            assert!(DistanceModel::Kimura.correct(p) >= DistanceModel::Poisson.correct(p));
        }
    }

    #[test]
    fn saturation_is_finite() {
        assert!(DistanceModel::Poisson.correct(1.0).is_finite());
        assert!(DistanceModel::Kimura.correct(0.99).is_finite());
        assert!(DistanceModel::Kimura.correct(1.0).is_finite());
    }

    #[test]
    fn correct_clamps_out_of_range_input() {
        assert_eq!(DistanceModel::PDistance.correct(-0.5), 0.0);
        assert_eq!(DistanceModel::PDistance.correct(1.5), 1.0);
    }

    #[test]
    fn condensed_storage_roundtrip() {
        let n = 7;
        let labels: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let mut m = DistanceMatrix::zeros(labels);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, (i * 10 + j) as f64);
            }
        }
        for i in 0..n {
            assert_eq!(m.get(i, i), 0.0);
            for j in (i + 1)..n {
                assert_eq!(m.get(i, j), (i * 10 + j) as f64);
                assert_eq!(m.get(j, i), (i * 10 + j) as f64);
            }
        }
    }

    #[test]
    fn set_is_order_insensitive_and_diagonal_noop() {
        let mut m = DistanceMatrix::zeros(vec!["a".into(), "b".into()]);
        m.set(1, 0, 3.5);
        assert_eq!(m.get(0, 1), 3.5);
        m.set(0, 0, 99.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_square_validates() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let ok =
            DistanceMatrix::from_square(labels.clone(), &[vec![0.0, 2.0], vec![2.0, 0.0]]).unwrap();
        assert_eq!(ok.get(0, 1), 2.0);

        let bad_dim = DistanceMatrix::from_square(labels.clone(), &[vec![0.0]]);
        assert!(bad_dim.is_err());
        let asym = DistanceMatrix::from_square(labels.clone(), &[vec![0.0, 1.0], vec![2.0, 0.0]]);
        assert!(asym.is_err());
        let diag = DistanceMatrix::from_square(labels, &[vec![1.0, 2.0], vec![2.0, 0.0]]);
        assert!(diag.is_err());
    }

    #[test]
    fn row_sum() {
        let labels = vec!["a".into(), "b".into(), "c".into()];
        let m = DistanceMatrix::from_square(
            labels,
            &[
                vec![0.0, 1.0, 2.0],
                vec![1.0, 0.0, 4.0],
                vec![2.0, 4.0, 0.0],
            ],
        )
        .unwrap();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), 5.0);
        assert_eq!(m.row_sum(2), 6.0);
    }

    #[test]
    fn pairwise_distances_from_sequences() {
        let seqs = vec![
            ProteinSequence::parse("a", "ACDEFGHIKL").unwrap(),
            ProteinSequence::parse("b", "ACDEFGHIKL").unwrap(),
            ProteinSequence::parse("c", "ACDEWWHIKL").unwrap(),
        ];
        let dm = pairwise_distances(
            &seqs,
            &ScoringMatrix::blosum62(),
            GapPenalty::BLOSUM62_DEFAULT,
            DistanceModel::PDistance,
        )
        .unwrap();
        assert_eq!(dm.get(0, 1), 0.0);
        assert!((dm.get(0, 2) - 0.2).abs() < 1e-9);
        assert_eq!(dm.labels(), &["a", "b", "c"]);
    }
}
