//! Newick tree serialization and parsing.
//!
//! Supports the common dialect: nested parentheses, node labels
//! (bare or single-quoted), and `:length` branch lengths, terminated by
//! `;`. This is the interchange format DrugTree would import trees
//! through (e.g. from an external phylogeny pipeline).

use crate::tree::{NodeId, Tree};
use crate::{PhyloError, Result};

/// Serialize a tree to a Newick string (with branch lengths).
pub fn to_newick(tree: &Tree) -> String {
    let mut out = String::with_capacity(tree.len() * 8);
    write_node(tree, tree.root(), true, &mut out);
    out.push(';');
    out
}

fn write_node(tree: &Tree, id: NodeId, is_root: bool, out: &mut String) {
    let node = tree.node_unchecked(id);
    if !node.children.is_empty() {
        out.push('(');
        for (i, &c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(tree, c, false, out);
        }
        out.push(')');
    }
    if let Some(label) = &node.label {
        write_label(label, out);
    }
    if !is_root {
        out.push(':');
        // Trim trailing zeros for readability while keeping precision.
        let formatted = format!("{:.6}", node.branch_length);
        let trimmed = formatted.trim_end_matches('0').trim_end_matches('.');
        out.push_str(if trimmed.is_empty() { "0" } else { trimmed });
    }
}

fn write_label(label: &str, out: &mut String) {
    let needs_quote = label
        .bytes()
        .any(|b| matches!(b, b'(' | b')' | b',' | b':' | b';' | b'\'' | b' ' | b'\t'));
    if needs_quote {
        out.push('\'');
        for ch in label.chars() {
            if ch == '\'' {
                out.push('\'');
            }
            out.push(ch);
        }
        out.push('\'');
    } else {
        out.push_str(label);
    }
}

/// Parse a Newick string into a [`Tree`].
pub fn parse_newick(input: &str) -> Result<Tree> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let mut tree = Tree::with_root(None);
    let root = tree.root();
    p.parse_node(&mut tree, root)?;
    p.skip_ws();
    if !p.eat(b';') {
        return Err(p.err("expected ';'"));
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after ';'"));
    }
    Ok(tree)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> PhyloError {
        PhyloError::MalformedNewick {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Parse the node whose arena slot is `id` (children, label, length).
    fn parse_node(&mut self, tree: &mut Tree, id: NodeId) -> Result<()> {
        self.skip_ws();
        if self.eat(b'(') {
            loop {
                let child = tree.add_child(id, None, 0.0)?;
                self.parse_node(tree, child)?;
                self.skip_ws();
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b')') {
                    break;
                }
                return Err(self.err("expected ',' or ')'"));
            }
        }
        self.skip_ws();
        if let Some(label) = self.parse_label()? {
            tree.set_label(id, Some(label))?;
        }
        self.skip_ws();
        if self.eat(b':') {
            self.skip_ws();
            let len = self.parse_number()?;
            tree.set_branch_length(id, len)?;
        }
        Ok(())
    }

    fn parse_label(&mut self) -> Result<Option<String>> {
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let mut label = String::new();
                loop {
                    match self.peek() {
                        Some(b'\'') => {
                            self.pos += 1;
                            // Doubled quote is an escaped quote.
                            if self.peek() == Some(b'\'') {
                                label.push('\'');
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance one full UTF-8 character.
                            let rest = &self.bytes[self.pos..];
                            let s = std::str::from_utf8(rest)
                                .map_err(|_| self.err("invalid UTF-8 in label"))?;
                            let Some(ch) = s.chars().next() else {
                                return Err(self.err("unterminated quoted label"));
                            };
                            label.push(ch);
                            self.pos += ch.len_utf8();
                        }
                        None => return Err(self.err("unterminated quoted label")),
                    }
                }
                Ok(Some(label))
            }
            Some(b)
                if !matches!(b, b'(' | b')' | b',' | b':' | b';') && !b.is_ascii_whitespace() =>
            {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if matches!(b, b'(' | b')' | b',' | b':' | b';') || b.is_ascii_whitespace() {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in label"))?;
                // Underscores are conventional space stand-ins in bare labels.
                Ok(Some(raw.replace('_', " ")))
            }
            _ => Ok(None),
        }
    }

    fn parse_number(&mut self) -> Result<f64> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected branch length after ':'"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .ok_or_else(|| self.err("invalid branch length"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let t = parse_newick("(A:0.1,B:0.2,(C:0.3,D:0.4)E:0.5)F;").unwrap();
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.node(t.root()).unwrap().label.as_deref(), Some("F"));
        let e = t.find_by_label("E").unwrap();
        assert_eq!(t.node(e).unwrap().branch_length, 0.5);
        assert_eq!(t.node(e).unwrap().children.len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let cases = [
            "(A:0.1,B:0.2,(C:0.3,D:0.4)E:0.5)F;",
            "((a:1,b:2):0.5,c:3);",
            "(leaf:0.000001,other:123.456);",
        ];
        for case in cases {
            let t1 = parse_newick(case).unwrap();
            let rendered = to_newick(&t1);
            let t2 = parse_newick(&rendered).unwrap();
            assert_eq!(t1, t2, "case {case} -> {rendered}");
        }
    }

    #[test]
    fn quoted_labels() {
        let t = parse_newick("('kinase A':1,'it''s':2);").unwrap();
        assert!(t.find_by_label("kinase A").is_ok());
        assert!(t.find_by_label("it's").is_ok());
        // Round-trip keeps the awkward labels.
        let t2 = parse_newick(&to_newick(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn underscores_become_spaces_in_bare_labels() {
        let t = parse_newick("(Homo_sapiens:1,Mus_musculus:2);").unwrap();
        assert!(t.find_by_label("Homo sapiens").is_ok());
    }

    #[test]
    fn scientific_notation_lengths() {
        let t = parse_newick("(a:1e-3,b:2.5E2);").unwrap();
        let a = t.find_by_label("a").unwrap();
        let b = t.find_by_label("b").unwrap();
        assert!((t.node(a).unwrap().branch_length - 0.001).abs() < 1e-12);
        assert!((t.node(b).unwrap().branch_length - 250.0).abs() < 1e-12);
    }

    #[test]
    fn whitespace_tolerated() {
        let t = parse_newick(" ( A : 1 ,\n B : 2 ) ;\n").unwrap();
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn error_positions() {
        for bad in [
            "(A,B)",
            "(A,B;",
            "(A:,B);",
            "(A:1,B:2);x",
            "('unterminated:1);",
        ] {
            let err = parse_newick(bad).unwrap_err();
            assert!(
                matches!(err, PhyloError::MalformedNewick { .. }),
                "{bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn single_leaf_tree() {
        let t = parse_newick("A;").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.node(t.root()).unwrap().label.as_deref(), Some("A"));
        assert_eq!(to_newick(&t), "A;");
    }

    #[test]
    fn infinite_branch_length_rejected() {
        assert!(parse_newick("(a:1e999,b:1);").is_err());
    }
}
