//! Global pairwise protein alignment (Needleman–Wunsch with affine gap
//! penalties, i.e. Gotoh's algorithm).
//!
//! DrugTree's "protein-motivated" tree is distance-based; the distances
//! come from pairwise global alignments of the family members, so a
//! correct global aligner is a required substrate.

use crate::matrices::ScoringMatrix;
use crate::seq::AminoAcid;
use crate::{PhyloError, Result};

/// Affine gap model: opening a gap costs `open`, each residue in the gap
/// (including the first) additionally costs `extend`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPenalty {
    /// Cost charged once when a gap is opened (non-negative).
    pub open: i32,
    /// Cost charged per gapped position (non-negative).
    pub extend: i32,
}

impl GapPenalty {
    /// The common BLOSUM62 companion penalties (11/1).
    pub const BLOSUM62_DEFAULT: GapPenalty = GapPenalty {
        open: 10,
        extend: 1,
    };

    /// Validate the penalty configuration.
    pub fn validate(&self) -> Result<()> {
        if self.open < 0 || self.extend < 0 {
            return Err(PhyloError::InvalidValue(format!(
                "gap penalties must be non-negative, got open={} extend={}",
                self.open, self.extend
            )));
        }
        Ok(())
    }
}

/// One column of a pairwise alignment: a residue or a gap on each side.
pub type AlignedPair = (Option<AminoAcid>, Option<AminoAcid>);

/// The result of a global pairwise alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Optimal alignment score under the scoring matrix and gap model.
    pub score: i32,
    /// Alignment columns from left to right.
    pub columns: Vec<AlignedPair>,
}

impl Alignment {
    /// Number of columns where both sequences have the same residue.
    pub fn matches(&self) -> usize {
        self.columns
            .iter()
            .filter(|(a, b)| matches!((a, b), (Some(x), Some(y)) if x == y))
            .count()
    }

    /// Columns where both sides are residues (no gap).
    pub fn aligned_sites(&self) -> usize {
        self.columns
            .iter()
            .filter(|(a, b)| a.is_some() && b.is_some())
            .count()
    }

    /// Fraction of gap-free columns that match exactly. Zero when the
    /// alignment has no gap-free column.
    pub fn identity(&self) -> f64 {
        let sites = self.aligned_sites();
        if sites == 0 {
            0.0
        } else {
            self.matches() as f64 / sites as f64
        }
    }

    /// Proportion of gap-free columns that differ — the "p-distance"
    /// input to the estimators in [`crate::distance`].
    pub fn p_distance(&self) -> f64 {
        let sites = self.aligned_sites();
        if sites == 0 {
            1.0
        } else {
            1.0 - self.identity()
        }
    }

    /// Render as two gapped one-letter-code strings.
    pub fn to_strings(&self) -> (String, String) {
        let mut a = String::with_capacity(self.columns.len());
        let mut b = String::with_capacity(self.columns.len());
        for (x, y) in &self.columns {
            a.push(x.map_or('-', super::seq::AminoAcid::to_char));
            b.push(y.map_or('-', super::seq::AminoAcid::to_char));
        }
        (a, b)
    }
}

/// Traceback directions for the three Gotoh layers.
#[derive(Clone, Copy, PartialEq)]
enum Layer {
    /// Match/mismatch layer.
    M,
    /// Gap in `b` (consume from `a`).
    X,
    /// Gap in `a` (consume from `b`).
    Y,
}

const NEG_INF: i32 = i32::MIN / 4;

/// Globally align `a` against `b`.
///
/// Runs in `O(|a| * |b|)` time and memory (full traceback matrices are
/// retained so the alignment itself, not just the score, is recovered).
pub fn global_align(
    a: &[AminoAcid],
    b: &[AminoAcid],
    matrix: &ScoringMatrix,
    gap: GapPenalty,
) -> Result<Alignment> {
    gap.validate()?;
    let n = a.len();
    let m = b.len();
    let w = m + 1;

    // Three DP layers: best score ending in a match (M), a gap in b (X),
    // or a gap in a (Y).
    let mut sm = vec![NEG_INF; (n + 1) * w];
    let mut sx = vec![NEG_INF; (n + 1) * w];
    let mut sy = vec![NEG_INF; (n + 1) * w];
    // Traceback: which layer the optimum came from.
    let mut tm = vec![Layer::M; (n + 1) * w];
    let mut tx = vec![Layer::M; (n + 1) * w];
    let mut ty = vec![Layer::M; (n + 1) * w];

    let open_cost = gap.open + gap.extend;
    sm[0] = 0;
    for i in 1..=n {
        sx[i * w] = -(open_cost + (i as i32 - 1) * gap.extend);
        tx[i * w] = Layer::X;
    }
    for j in 1..=m {
        sy[j] = -(open_cost + (j as i32 - 1) * gap.extend);
        ty[j] = Layer::Y;
    }

    for i in 1..=n {
        for j in 1..=m {
            let idx = i * w + j;
            let diag = (i - 1) * w + (j - 1);
            let up = (i - 1) * w + j;
            let left = i * w + (j - 1);

            // M layer: consume a[i-1] and b[j-1].
            let sub = matrix.score(a[i - 1], b[j - 1]);
            let (mb, ml) = best3(sm[diag], sx[diag], sy[diag]);
            sm[idx] = mb.saturating_add(sub);
            tm[idx] = ml;

            // X layer: gap in b, consume a[i-1].
            let from_m = sm[up].saturating_sub(open_cost);
            let from_x = sx[up].saturating_sub(gap.extend);
            if from_m >= from_x {
                sx[idx] = from_m;
                tx[idx] = Layer::M;
            } else {
                sx[idx] = from_x;
                tx[idx] = Layer::X;
            }

            // Y layer: gap in a, consume b[j-1].
            let from_m = sm[left].saturating_sub(open_cost);
            let from_y = sy[left].saturating_sub(gap.extend);
            if from_m >= from_y {
                sy[idx] = from_m;
                ty[idx] = Layer::M;
            } else {
                sy[idx] = from_y;
                ty[idx] = Layer::Y;
            }
        }
    }

    let end = n * w + m;
    let (score, mut layer) = best3(sm[end], sx[end], sy[end]);

    // Traceback.
    let mut columns = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let idx = i * w + j;
        match layer {
            Layer::M => {
                debug_assert!(i > 0 && j > 0, "M layer requires both residues");
                columns.push((Some(a[i - 1]), Some(b[j - 1])));
                layer = tm[idx];
                i -= 1;
                j -= 1;
            }
            Layer::X => {
                debug_assert!(i > 0, "X layer consumes from a");
                columns.push((Some(a[i - 1]), None));
                layer = tx[idx];
                i -= 1;
            }
            Layer::Y => {
                debug_assert!(j > 0, "Y layer consumes from b");
                columns.push((None, Some(b[j - 1])));
                layer = ty[idx];
                j -= 1;
            }
        }
    }
    columns.reverse();
    Ok(Alignment { score, columns })
}

#[inline]
fn best3(m: i32, x: i32, y: i32) -> (i32, Layer) {
    if m >= x && m >= y {
        (m, Layer::M)
    } else if x >= y {
        (x, Layer::X)
    } else {
        (y, Layer::Y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::ProteinSequence;

    fn res(s: &str) -> Vec<AminoAcid> {
        ProteinSequence::parse("t", s).unwrap().residues().to_vec()
    }

    fn align(a: &str, b: &str) -> Alignment {
        global_align(
            &res(a),
            &res(b),
            &ScoringMatrix::blosum62(),
            GapPenalty::BLOSUM62_DEFAULT,
        )
        .unwrap()
    }

    #[test]
    fn identical_sequences_align_without_gaps() {
        let aln = align("ACDEFGHIK", "ACDEFGHIK");
        assert_eq!(aln.identity(), 1.0);
        assert_eq!(aln.aligned_sites(), 9);
        // Score is the sum of diagonal BLOSUM62 entries.
        let m = ScoringMatrix::blosum62();
        let expected: i32 = res("ACDEFGHIK").iter().map(|&r| m.score(r, r)).sum();
        assert_eq!(aln.score, expected);
    }

    #[test]
    fn single_insertion_is_recovered() {
        let aln = align("ACDEFG", "ACDKEFG");
        let (sa, sb) = aln.to_strings();
        assert_eq!(sa, "ACD-EFG");
        assert_eq!(sb, "ACDKEFG");
    }

    #[test]
    fn affine_gaps_prefer_one_long_gap() {
        // With affine penalties, deleting "KKK" should produce one
        // 3-column gap rather than three scattered single gaps.
        let aln = align("AAACCCAAA", "AAAKKKCCCAAA");
        let (sa, _) = aln.to_strings();
        assert!(sa.contains("---"), "expected contiguous gap, got {sa}");
        assert_eq!(sa.matches('-').count(), 3);
    }

    #[test]
    fn empty_against_nonempty() {
        let aln = align("", "ACD");
        assert_eq!(aln.columns.len(), 3);
        assert!(aln.columns.iter().all(|(a, _)| a.is_none()));
        let open_total = -(10 + 1) - 1 - 1; // open+extend, then 2 extends
        assert_eq!(aln.score, open_total);
    }

    #[test]
    fn both_empty() {
        let aln = align("", "");
        assert_eq!(aln.score, 0);
        assert!(aln.columns.is_empty());
        assert_eq!(aln.p_distance(), 1.0);
    }

    #[test]
    fn score_is_symmetric() {
        let x = align("MKVLAT", "MKLAWT");
        let y = align("MKLAWT", "MKVLAT");
        assert_eq!(x.score, y.score);
        assert_eq!(x.identity(), y.identity());
    }

    #[test]
    fn traceback_reconstructs_inputs() {
        let a = "MKVLATWQDE";
        let b = "MKLATQDEYY";
        let aln = align(a, b);
        let (sa, sb) = aln.to_strings();
        assert_eq!(sa.replace('-', ""), a);
        assert_eq!(sb.replace('-', ""), b);
    }

    #[test]
    fn rejects_negative_penalties() {
        let err = global_align(
            &res("AA"),
            &res("AA"),
            &ScoringMatrix::blosum62(),
            GapPenalty {
                open: -1,
                extend: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PhyloError::InvalidValue(_)));
    }

    #[test]
    fn p_distance_counts_only_gapfree_columns() {
        let aln = align("AAAA", "AAAC");
        assert_eq!(aln.aligned_sites(), 4);
        assert!((aln.p_distance() - 0.25).abs() < 1e-12);
    }
}
