//! Compact array-form tree representation for million-leaf scale.
//!
//! [`TreeIndex`](crate::TreeIndex) is the full-featured index (LCA
//! lifting tables, label lookup, rank maps) and costs hundreds of
//! bytes per node. At the million-leaf scale the query engine's hot
//! path only needs three questions answered — *who is my parent*, *is
//! a an ancestor of b*, and *what leaf interval does this subtree
//! cover* — all of which flat arrays answer in O(1):
//!
//! * `parent[v]` — parent id (`u32::MAX` sentinel for the root),
//! * `enter[v]`/`exit[v]` — preorder timestamps delimiting `v`'s
//!   subtree (`exit` is one past the last descendant),
//! * `leaves_before[t]` — leaves among the first `t` preorder nodes,
//!   turning timestamps into Euler-tour leaf intervals.
//!
//! Sixteen bytes per node, append-only vectors, no per-node
//! allocation: a 1M-leaf binary tree (~2M nodes) fits in ~32 MB.
//! Leaf ranks coincide with [`TreeIndex`](crate::TreeIndex)'s ranks
//! because both assign them in preorder.

use crate::index::LeafInterval;
use crate::tree::{NodeId, Tree};
use crate::{PhyloError, Result};

/// Sentinel parent for the root node.
const NO_PARENT: u32 = u32::MAX;

/// Flat-array tree: parent/enter/exit plus a leaf-count prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuccinctTree {
    parent: Vec<u32>,
    enter: Vec<u32>,
    exit: Vec<u32>,
    /// `leaves_before[t]` = number of leaves among the first `t`
    /// preorder nodes; length `node_count() + 1`.
    leaves_before: Vec<u32>,
}

impl SuccinctTree {
    /// Build the arrays from a tree in `O(n)`.
    pub fn from_tree(tree: &Tree) -> Result<SuccinctTree> {
        let n = tree.len();
        if n == 0 {
            return Err(PhyloError::InvalidValue(
                "cannot index an empty tree".to_string(),
            ));
        }
        if n as u64 >= NO_PARENT as u64 {
            return Err(PhyloError::InvalidValue(format!(
                "tree has {n} nodes; succinct arrays index with u32"
            )));
        }
        let preorder = tree.preorder();
        let mut parent = vec![NO_PARENT; n];
        let mut enter = vec![0u32; n];
        let mut leaves_before = Vec::with_capacity(n + 1);
        leaves_before.push(0);
        for (pos, &id) in preorder.iter().enumerate() {
            enter[id.index()] = pos as u32;
            let node = tree.node_unchecked(id);
            if let Some(p) = node.parent {
                parent[id.index()] = p.0;
            }
            let so_far = *leaves_before.last().unwrap_or(&0);
            leaves_before.push(so_far + u32::from(node.is_leaf()));
        }
        // Subtree sizes accumulate bottom-up; exit = enter + size.
        let mut size = vec![1u32; n];
        let mut exit = vec![0u32; n];
        for &id in &tree.postorder() {
            let node = tree.node_unchecked(id);
            for &c in &node.children {
                size[id.index()] += size[c.index()];
            }
            exit[id.index()] = enter[id.index()] + size[id.index()];
        }
        Ok(SuccinctTree {
            parent,
            enter,
            exit,
            leaves_before,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        *self.leaves_before.last().unwrap_or(&0) as usize
    }

    /// Parent of a node, `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        match self.parent[id.index()] {
            NO_PARENT => None,
            p => Some(NodeId(p)),
        }
    }

    /// True when the node has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.exit[id.index()] == self.enter[id.index()] + 1
    }

    /// True when `ancestor` is `node` or one of its ancestors
    /// (self-inclusive, matching [`TreeIndex`](crate::TreeIndex)).
    #[inline]
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.enter[ancestor.index()] <= self.enter[node.index()]
            && self.exit[node.index()] <= self.exit[ancestor.index()]
    }

    /// Half-open Euler-tour leaf interval of a node's subtree.
    #[inline]
    pub fn interval(&self, id: NodeId) -> LeafInterval {
        LeafInterval {
            lo: self.leaves_before[self.enter[id.index()] as usize],
            hi: self.leaves_before[self.exit[id.index()] as usize],
        }
    }

    /// Leaf rank of a leaf node, `None` for internal nodes.
    #[inline]
    pub fn rank_of(&self, id: NodeId) -> Option<u32> {
        self.is_leaf(id)
            .then(|| self.leaves_before[self.enter[id.index()] as usize])
    }

    /// Bytes held by the four arrays (the whole structure).
    pub fn memory_bytes(&self) -> usize {
        4 * (self.parent.len() + self.enter.len() + self.exit.len() + self.leaves_before.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TreeIndex;

    /// A mixed-shape tree: a caterpillar spine with balanced tufts and
    /// the occasional unary internal node (the case where leaf
    /// intervals alone cannot decide ancestry).
    fn gnarly_tree() -> Tree {
        let mut t = Tree::with_root(Some("root".to_string()));
        let mut spine = t.root();
        for i in 0..12 {
            let next = t.add_child(spine, Some(format!("s{i}")), 1.0).unwrap();
            // Tuft of two leaves under every other spine node.
            if i % 2 == 0 {
                let tuft = t.add_child(spine, None, 0.5).unwrap();
                t.add_child(tuft, Some(format!("a{i}")), 0.1).unwrap();
                t.add_child(tuft, Some(format!("b{i}")), 0.1).unwrap();
            } else {
                // Unary chain: internal node with a single child.
                let mid = t.add_child(spine, None, 0.2).unwrap();
                t.add_child(mid, Some(format!("c{i}")), 0.1).unwrap();
            }
            spine = next;
        }
        t.add_child(spine, Some("tip".to_string()), 1.0).unwrap();
        t
    }

    #[test]
    fn agrees_with_tree_index() {
        let tree = gnarly_tree();
        let full = TreeIndex::build(&tree);
        let compact = SuccinctTree::from_tree(&tree).unwrap();
        assert_eq!(compact.node_count(), tree.len());
        assert_eq!(compact.leaf_count(), full.leaf_count());
        let n = tree.len() as u32;
        for v in 0..n {
            let v = NodeId(v);
            assert_eq!(compact.interval(v), full.interval(v), "interval of {v}");
            assert_eq!(compact.rank_of(v), full.rank_of(v), "rank of {v}");
            assert_eq!(
                compact.parent(v),
                tree.node_unchecked(v).parent,
                "parent of {v}"
            );
            assert_eq!(
                compact.is_leaf(v),
                tree.node_unchecked(v).is_leaf(),
                "leafness of {v}"
            );
            for u in 0..n {
                let u = NodeId(u);
                assert_eq!(
                    compact.is_ancestor(v, u),
                    full.is_ancestor(v, u),
                    "is_ancestor({v}, {u})"
                );
            }
        }
    }

    #[test]
    fn sixteen_bytes_per_node() {
        let tree = gnarly_tree();
        let compact = SuccinctTree::from_tree(&tree).unwrap();
        let n = tree.len();
        assert_eq!(compact.memory_bytes(), 4 * (3 * n + n + 1));
        // Well under 20 bytes amortized even with the prefix array.
        assert!(compact.memory_bytes() <= 20 * n);
    }

    #[test]
    fn single_node_tree() {
        let tree = Tree::with_root(Some("only".to_string()));
        let compact = SuccinctTree::from_tree(&tree).unwrap();
        assert_eq!(compact.node_count(), 1);
        assert_eq!(compact.leaf_count(), 1);
        let root = tree.root();
        assert!(compact.is_leaf(root));
        assert_eq!(compact.parent(root), None);
        assert!(compact.is_ancestor(root, root));
        assert_eq!(compact.interval(root), LeafInterval { lo: 0, hi: 1 });
    }
}
