//! Ground-truth validation: sequences evolved along a known tree,
//! reconstructed with the full alignment → distance → NJ pipeline,
//! compared by Robinson–Foulds distance.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_phylo::align::GapPenalty;
use drugtree_phylo::compare::{normalized_robinson_foulds, recovered_splits};
use drugtree_phylo::distance::{pairwise_distances, DistanceModel};
use drugtree_phylo::matrices::ScoringMatrix;
use drugtree_phylo::nj::neighbor_joining;
use drugtree_workload::phylogeny::{evolve_sequences, random_tree};

#[test]
fn nj_reconstruction_recovers_most_of_the_true_tree() {
    // Long sequences + moderate divergence = strong signal.
    let truth = random_tree(24, 99);
    let seqs = evolve_sequences(&truth, 400, 99);
    let dm = pairwise_distances(
        &seqs,
        &ScoringMatrix::blosum62(),
        GapPenalty::BLOSUM62_DEFAULT,
        DistanceModel::Poisson,
    )
    .unwrap();
    let estimate = neighbor_joining(&dm).unwrap();

    let norm = normalized_robinson_foulds(&truth, &estimate).unwrap();
    assert!(
        norm < 0.35,
        "reconstruction too far from truth: normalized RF = {norm:.2}"
    );
    let (recovered, total) = recovered_splits(&truth, &estimate).unwrap();
    assert!(
        recovered * 3 >= total * 2,
        "only {recovered}/{total} true splits recovered"
    );
}

#[test]
fn more_signal_means_better_reconstruction() {
    // Averaged over seeds, longer sequences must not reconstruct worse.
    let mean_rf = |seq_len: usize| -> f64 {
        let mut total = 0.0;
        for seed in 0..4u64 {
            let truth = random_tree(16, 100 + seed);
            let seqs = evolve_sequences(&truth, seq_len, 100 + seed);
            let dm = pairwise_distances(
                &seqs,
                &ScoringMatrix::blosum62(),
                GapPenalty::BLOSUM62_DEFAULT,
                DistanceModel::Poisson,
            )
            .unwrap();
            let estimate = neighbor_joining(&dm).unwrap();
            total += normalized_robinson_foulds(&truth, &estimate).unwrap();
        }
        total / 4.0
    };
    let short = mean_rf(30);
    let long = mean_rf(300);
    assert!(
        long <= short + 0.05,
        "long sequences reconstructed worse: {long:.2} vs {short:.2}"
    );
}

#[test]
fn distance_model_choice_matters_at_high_divergence() {
    // With heavy divergence, Poisson-corrected distances should not be
    // worse than raw p-distances (correction linearizes the tree
    // metric). Averaged over seeds to stabilize.
    let mean_rf = |model: DistanceModel| -> f64 {
        let mut total = 0.0;
        for seed in 0..4u64 {
            let truth = random_tree(16, 200 + seed);
            let seqs = evolve_sequences(&truth, 250, 200 + seed);
            let dm = pairwise_distances(
                &seqs,
                &ScoringMatrix::blosum62(),
                GapPenalty::BLOSUM62_DEFAULT,
                model,
            )
            .unwrap();
            let estimate = neighbor_joining(&dm).unwrap();
            total += normalized_robinson_foulds(&truth, &estimate).unwrap();
        }
        total / 4.0
    };
    let poisson = mean_rf(DistanceModel::Poisson);
    let raw = mean_rf(DistanceModel::PDistance);
    assert!(
        poisson <= raw + 0.1,
        "Poisson correction notably worse than raw: {poisson:.2} vs {raw:.2}"
    );
}
