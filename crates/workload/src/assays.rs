//! Clade-correlated activity generation.
//!
//! Real protein-ligand data is not uniform: a ligand scaffold binds a
//! *family* of related proteins. The generator assigns each ligand a
//! home clade; leaves inside the clade receive potent measurements,
//! with occasional weak off-target records elsewhere. Per-leaf record
//! counts follow the clade structure, producing the skew (hot clades,
//! empty leaves) that statistics pruning and semantic caching exploit.

use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::{NodeId, Tree};
use drugtree_sources::ligand_db::LigandRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Assay generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssaySpec {
    /// Mean records per (ligand, home-clade leaf) pair.
    pub hit_density: f64,
    /// Probability of an off-target record per (ligand, outside leaf).
    pub off_target_rate: f64,
    /// Fraction of leaves left without any record.
    pub empty_leaf_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AssaySpec {
    fn default() -> AssaySpec {
        AssaySpec {
            hit_density: 0.8,
            off_target_rate: 0.002,
            empty_leaf_fraction: 0.25,
            seed: 11,
        }
    }
}

/// Generate activity records against the tree's leaf accessions.
pub fn random_assays(
    tree: &Tree,
    index: &TreeIndex,
    ligands: &[LigandRecord],
    spec: &AssaySpec,
) -> Vec<ActivityRecord> {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xA55A);
    let n_leaves = index.leaf_count() as u32;
    let leaf_label = |rank: u32| {
        let leaf = index.leaf_at(rank).expect("rank in range");
        tree.node_unchecked(leaf)
            .label
            .clone()
            .expect("leaves labeled")
    };

    // Permanently empty leaves (proteins nobody has assayed).
    let empty: Vec<bool> = (0..n_leaves)
        .map(|_| rng.gen::<f64>() < spec.empty_leaf_fraction)
        .collect();

    // Candidate home clades: internal nodes covering 2..~n/4 leaves.
    let clades: Vec<NodeId> = tree
        .node_ids()
        .filter(|&id| {
            let len = index.interval(id).len();
            !tree.node_unchecked(id).is_leaf() && len >= 2 && len <= (n_leaves / 2).max(2)
        })
        .collect();

    let mut out = Vec::new();
    for ligand in ligands {
        let home = clades[rng.gen_range(0..clades.len())];
        let home_iv = index.interval(home);
        // Potency scale of this scaffold against its family.
        let family_p = rng.gen_range(6.0..9.5);
        for rank in 0..n_leaves {
            if empty[rank as usize] {
                continue;
            }
            let in_home = home_iv.contains_rank(rank);
            let p_record = if in_home {
                spec.hit_density
            } else {
                spec.off_target_rate
            };
            if rng.gen::<f64>() >= p_record {
                continue;
            }
            // Potent in the home clade, weak outside.
            let p_activity = if in_home {
                family_p + rng.gen_range(-0.8..0.8)
            } else {
                rng.gen_range(3.5..5.5)
            };
            let value_nm = 10f64.powf(9.0 - p_activity);
            out.push(ActivityRecord {
                protein_accession: leaf_label(rank),
                ligand_id: ligand.ligand_id.clone(),
                activity_type: match rng.gen_range(0..4) {
                    0 => ActivityType::Ki,
                    1 => ActivityType::Kd,
                    2 => ActivityType::Ic50,
                    _ => ActivityType::Ec50,
                },
                value_nm,
                source: "synthetic-assays".into(),
                year: rng.gen_range(1995..=2013),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ligands::random_ligands;
    use crate::phylogeny::random_tree;
    use rustc_hash::FxHashMap;

    fn setup() -> (Tree, TreeIndex, Vec<ActivityRecord>) {
        let tree = random_tree(64, 1);
        let index = TreeIndex::build(&tree);
        let ligands = random_ligands(20, 1);
        let assays = random_assays(&tree, &index, &ligands, &AssaySpec::default());
        (tree, index, assays)
    }

    #[test]
    fn records_are_valid_and_nonempty() {
        let (_, index, assays) = setup();
        assert!(assays.len() > 40, "got {}", assays.len());
        for a in &assays {
            a.validate().unwrap();
            assert!(index.by_label(&a.protein_accession).is_ok());
            assert!((1995..=2013).contains(&a.year));
        }
    }

    #[test]
    fn deterministic() {
        let tree = random_tree(32, 2);
        let index = TreeIndex::build(&tree);
        let ligands = random_ligands(10, 2);
        let spec = AssaySpec::default();
        assert_eq!(
            random_assays(&tree, &index, &ligands, &spec),
            random_assays(&tree, &index, &ligands, &spec)
        );
    }

    #[test]
    fn some_leaves_stay_empty() {
        let (_, index, assays) = setup();
        let mut per_leaf: FxHashMap<&str, usize> = FxHashMap::default();
        for a in &assays {
            *per_leaf.entry(a.protein_accession.as_str()).or_default() += 1;
        }
        let empty = (index.leaf_count()) - per_leaf.len();
        assert!(empty > 0, "expected some empty leaves");
    }

    #[test]
    fn activities_are_clade_correlated() {
        let (_, index, assays) = setup();
        // Potent records (p >= 6) should concentrate: for each ligand,
        // the tightest clade containing its potent records should be a
        // small fraction of the tree.
        let mut per_ligand: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
        for a in &assays {
            if a.p_activity() >= 6.0 {
                let leaf = index.by_label(&a.protein_accession).unwrap();
                per_ligand
                    .entry(a.ligand_id.as_str())
                    .or_default()
                    .push(index.rank_of(leaf).unwrap());
            }
        }
        let mut concentrated = 0;
        let mut total = 0;
        for ranks in per_ligand.values() {
            if ranks.len() < 3 {
                continue;
            }
            total += 1;
            let lo = *ranks.iter().min().unwrap();
            let hi = *ranks.iter().max().unwrap() + 1;
            if (hi - lo) <= index.leaf_count() as u32 / 2 {
                concentrated += 1;
            }
        }
        assert!(total > 0);
        assert!(
            concentrated * 10 >= total * 7,
            "only {concentrated}/{total} ligands clade-concentrated"
        );
    }

    #[test]
    fn potency_inside_home_exceeds_off_target() {
        let (_, _, assays) = setup();
        let potent = assays.iter().filter(|a| a.p_activity() >= 6.0).count();
        let weak = assays.iter().filter(|a| a.p_activity() < 6.0).count();
        assert!(potent > 0 && weak > 0);
        assert!(
            potent > weak,
            "home-clade hits should dominate: {potent} vs {weak}"
        );
    }
}
