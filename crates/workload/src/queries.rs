//! Seeded query workload generation.
//!
//! Experiments E1/E2/E4 run fixed mixes of the four query classes over
//! scopes chosen with Zipf skew (users hammer a few hot clades). The
//! generator produces deterministic query streams from a seed.

use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::{NodeId, Tree};
use drugtree_query::ast::{Metric, Query, Scope};
use drugtree_sources::ligand_db::LigandRecord;
use drugtree_store::expr::{CompareOp, Predicate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The four benchmarked query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// All activities in a subtree.
    SubtreeListing,
    /// Potency-filtered activities in a subtree.
    AffinityFilter,
    /// Similarity-constrained top-k in a subtree.
    SimilarityTopK,
    /// Per-child aggregate of a subtree.
    Aggregate,
}

impl QueryClass {
    /// All classes, in reporting order.
    pub const ALL: [QueryClass; 4] = [
        QueryClass::SubtreeListing,
        QueryClass::AffinityFilter,
        QueryClass::SimilarityTopK,
        QueryClass::Aggregate,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::SubtreeListing => "subtree_listing",
            QueryClass::AffinityFilter => "affinity_filter",
            QueryClass::SimilarityTopK => "similarity_topk",
            QueryClass::Aggregate => "aggregate",
        }
    }
}

/// Query stream configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryWorkloadConfig {
    /// Queries to generate.
    pub len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Zipf exponent over candidate scopes (0 = uniform).
    pub scope_theta: f64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> QueryWorkloadConfig {
        QueryWorkloadConfig {
            len: 100,
            seed: 5,
            scope_theta: 0.8,
        }
    }
}

/// Generate a stream of one class.
pub fn class_stream(
    class: QueryClass,
    tree: &Tree,
    index: &TreeIndex,
    ligands: &[LigandRecord],
    config: &QueryWorkloadConfig,
) -> Vec<Query> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ (class as u64) << 7);
    let scopes = candidate_scopes(tree, index);
    (0..config.len)
        .map(|_| {
            let scope_node = scopes[zipf(&mut rng, scopes.len(), config.scope_theta)];
            let label = tree
                .node_unchecked(scope_node)
                .label
                .clone()
                .expect("scopes are labeled");
            let scope = Scope::Subtree(label);
            match class {
                QueryClass::SubtreeListing => Query::activities(scope),
                QueryClass::AffinityFilter => Query::activities(scope).filter(Predicate::cmp(
                    "p_activity",
                    CompareOp::Ge,
                    rng.gen_range(5.0..8.0),
                )),
                QueryClass::SimilarityTopK => {
                    let reference = &ligands[rng.gen_range(0..ligands.len())].ligand_id;
                    Query::activities(scope)
                        .similar_to(reference.clone(), rng.gen_range(0.2..0.6))
                        .top_k("p_activity", 10, true)
                }
                QueryClass::Aggregate => {
                    Query::activities(scope).aggregate(match rng.gen_range(0..3) {
                        0 => Metric::Count,
                        1 => Metric::MaxPActivity,
                        _ => Metric::DistinctLigands,
                    })
                }
            }
        })
        .collect()
}

/// Generate a mixed stream cycling through all classes.
pub fn mixed_stream(
    tree: &Tree,
    index: &TreeIndex,
    ligands: &[LigandRecord],
    config: &QueryWorkloadConfig,
) -> Vec<Query> {
    let per = config.len.div_ceil(QueryClass::ALL.len());
    let mut streams: Vec<Vec<Query>> = QueryClass::ALL
        .iter()
        .map(|&c| {
            class_stream(
                c,
                tree,
                index,
                ligands,
                &QueryWorkloadConfig {
                    len: per,
                    ..*config
                },
            )
        })
        .collect();
    let mut out = Vec::with_capacity(config.len);
    'outer: loop {
        for s in &mut streams {
            match s.pop() {
                Some(q) => out.push(q),
                None => break 'outer,
            }
            if out.len() == config.len {
                break 'outer;
            }
        }
    }
    out
}

/// Internal nodes big enough to be interesting scopes (≥ 2 leaves),
/// ordered largest-first so Zipf rank 0 is the hottest big clade.
fn candidate_scopes(tree: &Tree, index: &TreeIndex) -> Vec<NodeId> {
    let mut scopes: Vec<NodeId> = tree
        .node_ids()
        .filter(|&id| {
            !tree.node_unchecked(id).is_leaf()
                && tree.node_unchecked(id).label.is_some()
                && index.interval(id).len() >= 2
        })
        .collect();
    scopes.sort_by_key(|&id| std::cmp::Reverse(index.interval(id).len()));
    scopes
}

fn zipf(rng: &mut SmallRng, n: usize, theta: f64) -> usize {
    if n <= 1 {
        return 0;
    }
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{SyntheticBundle, WorkloadSpec};
    use drugtree_query::optimizer::{Optimizer, OptimizerConfig};
    use drugtree_query::Executor;

    fn bundle() -> SyntheticBundle {
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8))
    }

    #[test]
    fn streams_are_deterministic() {
        let b = bundle();
        let cfg = QueryWorkloadConfig::default();
        let a = mixed_stream(&b.tree, &b.index, &b.ligands, &cfg);
        let c = mixed_stream(&b.tree, &b.index, &b.ligands, &cfg);
        assert_eq!(a, c);
        assert_eq!(a.len(), cfg.len);
    }

    #[test]
    fn class_streams_have_expected_shape() {
        let b = bundle();
        let cfg = QueryWorkloadConfig {
            len: 20,
            ..Default::default()
        };
        for class in QueryClass::ALL {
            let qs = class_stream(class, &b.tree, &b.index, &b.ligands, &cfg);
            assert_eq!(qs.len(), 20);
            for q in &qs {
                match class {
                    QueryClass::SubtreeListing => {
                        assert_eq!(q.predicate, Predicate::True);
                        assert!(q.similarity.is_none());
                    }
                    QueryClass::AffinityFilter => {
                        assert!(matches!(q.predicate, Predicate::Compare { .. }));
                    }
                    QueryClass::SimilarityTopK => {
                        assert!(q.similarity.is_some());
                    }
                    QueryClass::Aggregate => {
                        assert!(matches!(
                            q.kind,
                            drugtree_query::ast::QueryKind::AggregateChildren { .. }
                        ));
                    }
                }
            }
        }
    }

    #[test]
    fn every_generated_query_executes() {
        let b = bundle();
        let d = b.build_dataset();
        let e = Executor::new(Optimizer::new(OptimizerConfig::full()));
        let qs = mixed_stream(
            &b.tree,
            &b.index,
            &b.ligands,
            &QueryWorkloadConfig {
                len: 40,
                ..Default::default()
            },
        );
        for q in &qs {
            e.execute(&d, q)
                .unwrap_or_else(|err| panic!("{q:?}: {err}"));
        }
    }

    #[test]
    fn scope_skew_follows_theta() {
        let b = bundle();
        let scopes_of = |theta: f64| {
            let qs = class_stream(
                QueryClass::SubtreeListing,
                &b.tree,
                &b.index,
                &b.ligands,
                &QueryWorkloadConfig {
                    len: 300,
                    seed: 3,
                    scope_theta: theta,
                },
            );
            let distinct: std::collections::HashSet<String> = qs
                .iter()
                .filter_map(|q| match &q.scope {
                    Scope::Subtree(l) => Some(l.clone()),
                    _ => None,
                })
                .collect();
            distinct.len()
        };
        assert!(scopes_of(3.0) < scopes_of(0.0));
    }
}
