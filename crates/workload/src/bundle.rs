//! One-call assembly of a complete synthetic DrugTree deployment.

use crate::assays::{random_assays, AssaySpec};
use crate::ligands::random_ligands;
use crate::phylogeny::random_tree;
use drugtree_chem::affinity::ActivityRecord;
use drugtree_integrate::overlay::OverlayBuilder;
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::Tree;
use drugtree_query::Dataset;
use drugtree_sources::assay_db::assay_source;
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::ligand_db::{ligand_source, LigandRecord};
use drugtree_sources::protein_db::{protein_source, ProteinRecord};
use drugtree_sources::source::SourceCapabilities;
use std::sync::Arc;

/// Parameters of a synthetic deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of tree leaves (proteins).
    pub leaves: usize,
    /// Number of ligands.
    pub ligands: usize,
    /// Assay generation parameters.
    pub assay: AssaySpec,
    /// Number of assay sources the records are partitioned across.
    pub assay_sources: usize,
    /// When true, every assay source holds the *full* record set
    /// (replicas with increasingly slow latency, declared to the
    /// registry) instead of a disjoint partition.
    pub replicated: bool,
    /// Capabilities every source advertises.
    pub capabilities: SourceCapabilities,
    /// Latency model applied to every source (seed is perturbed per
    /// source).
    pub latency: LatencyModel,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            leaves: 128,
            ligands: 32,
            assay: AssaySpec::default(),
            assay_sources: 1,
            replicated: false,
            capabilities: SourceCapabilities::full(),
            latency: LatencyModel::web_api(1),
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// Override the leaf count.
    pub fn leaves(mut self, n: usize) -> Self {
        self.leaves = n;
        self
    }

    /// Override the ligand count.
    pub fn ligands(mut self, n: usize) -> Self {
        self.ligands = n;
        self
    }

    /// Override the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the number of assay sources.
    pub fn assay_sources(mut self, n: usize) -> Self {
        self.assay_sources = n.max(1);
        self
    }

    /// Make the assay sources full replicas (see [`WorkloadSpec::replicated`]).
    pub fn replicated(mut self, replicated: bool) -> Self {
        self.replicated = replicated;
        self
    }

    /// Override the per-source latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }
}

/// The generated raw materials of a deployment.
pub struct SyntheticBundle {
    /// Generation parameters.
    pub spec: WorkloadSpec,
    /// The ground-truth tree.
    pub tree: Tree,
    /// Its index.
    pub index: TreeIndex,
    /// Protein records (one per leaf).
    pub proteins: Vec<ProteinRecord>,
    /// Ligand records.
    pub ligands: Vec<LigandRecord>,
    /// Activity records.
    pub activities: Vec<ActivityRecord>,
}

impl SyntheticBundle {
    /// Generate everything from a spec.
    pub fn generate(spec: &WorkloadSpec) -> SyntheticBundle {
        let tree = random_tree(spec.leaves, spec.seed);
        let index = TreeIndex::build(&tree);
        let proteins: Vec<ProteinRecord> = tree
            .leaves()
            .into_iter()
            .map(|leaf| {
                let label = tree.node_unchecked(leaf).label.clone().expect("labeled");
                ProteinRecord {
                    accession: label.clone(),
                    name: format!("synthetic protein {label}"),
                    organism: "Synthetica exemplaris".into(),
                    sequence: "MKVLATQDE".into(),
                    gene: None,
                }
            })
            .collect();
        let ligands = random_ligands(spec.ligands, spec.seed);
        let mut assay_spec = spec.assay;
        assay_spec.seed ^= spec.seed;
        let activities = random_assays(&tree, &index, &ligands, &assay_spec);
        SyntheticBundle {
            spec: spec.clone(),
            tree,
            index,
            proteins,
            ligands,
            activities,
        }
    }

    /// Build the federated dataset: proteins + ligands materialized
    /// locally, activity records partitioned across `assay_sources`
    /// simulated remote sources.
    pub fn build_dataset(&self) -> Dataset {
        self.build_dataset_with_clock(VirtualClock::new())
    }

    /// Like [`SyntheticBundle::build_dataset`] with an external clock.
    pub fn build_dataset_with_clock(&self, clock: Arc<VirtualClock>) -> Dataset {
        let overlay = OverlayBuilder::new(&self.tree, &self.index)
            .build(&self.proteins, &self.ligands, &[])
            .expect("synthetic inputs are resolvable");

        let mut registry = SourceRegistry::new();
        let k = self.spec.assay_sources.max(1);
        let shards: Vec<Vec<ActivityRecord>> = if self.spec.replicated {
            vec![self.activities.clone(); k]
        } else {
            partition(&self.activities, k)
        };
        for (i, chunk) in shards.into_iter().enumerate() {
            let mut latency = self.spec.latency.clone();
            latency.seed ^= i as u64;
            if self.spec.replicated {
                // Replicas degrade: each copy is slower than the last,
                // so replica selection has a meaningful choice.
                latency.base_rtt *= (i + 1) as u32;
            }
            registry
                .register(Arc::new(
                    assay_source(
                        format!("assay-{i}"),
                        &chunk,
                        self.spec.capabilities,
                        latency,
                    )
                    .expect("synthetic records are valid"),
                ))
                .expect("unique source names");
        }
        if self.spec.replicated && k > 1 {
            registry
                .declare_replicas((0..k).map(|i| format!("assay-{i}")).collect())
                .expect("members just registered");
        }
        // Protein and ligand sources are registered too: the builder
        // above already materialized them, but downstream consumers can
        // still inspect capabilities/metrics.
        registry
            .register(Arc::new(
                protein_source(
                    "protein-0",
                    &self.proteins,
                    self.spec.capabilities,
                    self.spec.latency.clone(),
                )
                .expect("valid proteins"),
            ))
            .expect("unique");
        registry
            .register(Arc::new(
                ligand_source(
                    "ligand-0",
                    &self.ligands,
                    self.spec.capabilities,
                    self.spec.latency.clone(),
                )
                .expect("valid ligands"),
            ))
            .expect("unique");

        Dataset::new(
            self.tree.clone(),
            self.index.clone(),
            overlay,
            registry,
            clock,
        )
        .expect("bundle is internally consistent")
    }
}

/// Partition records round-robin into `k` chunks (every source sees a
/// representative slice, as when federating BindingDB + ChEMBL + a lab
/// database).
fn partition(records: &[ActivityRecord], k: usize) -> Vec<Vec<ActivityRecord>> {
    let mut out = vec![Vec::with_capacity(records.len() / k + 1); k];
    for (i, r) in records.iter().enumerate() {
        out[i % k].push(r.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_query::ast::{Query, Scope};
    use drugtree_query::optimizer::{Optimizer, OptimizerConfig};
    use drugtree_query::Executor;
    use drugtree_sources::source::SourceKind;

    #[test]
    fn generate_is_deterministic() {
        let spec = WorkloadSpec::default().leaves(32).ligands(8);
        let a = SyntheticBundle::generate(&spec);
        let b = SyntheticBundle::generate(&spec);
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.activities, b.activities);
        assert_eq!(a.proteins.len(), 32);
        assert_eq!(a.ligands.len(), 8);
    }

    #[test]
    fn dataset_builds_and_answers_queries() {
        let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
        let d = bundle.build_dataset();
        assert_eq!(d.leaf_count(), 32);
        let e = Executor::new(Optimizer::new(OptimizerConfig::full()));
        let r = e.execute(&d, &Query::activities(Scope::Tree)).unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn partitioned_sources_union_to_all_records() {
        let spec = WorkloadSpec::default()
            .leaves(32)
            .ligands(8)
            .assay_sources(3);
        let bundle = SyntheticBundle::generate(&spec);
        let d = bundle.build_dataset();
        let assay = d.registry.by_kind(SourceKind::Assay);
        assert_eq!(assay.len(), 3);
        let total: usize = assay.iter().map(|s| s.record_count()).sum();
        assert_eq!(total, bundle.activities.len());
        // Partitions are disjoint, so no dedupe losses: a full query
        // returns every record.
        let e = Executor::new(Optimizer::new(OptimizerConfig::naive()));
        let r = e.execute(&d, &Query::activities(Scope::Tree)).unwrap();
        assert_eq!(r.rows.len(), bundle.activities.len());
    }

    #[test]
    fn replicated_sources_declared_and_equal() {
        let spec = WorkloadSpec::default()
            .leaves(32)
            .ligands(8)
            .assay_sources(3)
            .replicated(true);
        let bundle = SyntheticBundle::generate(&spec);
        let d = bundle.build_dataset();
        let assay = d.registry.by_kind(SourceKind::Assay);
        assert_eq!(assay.len(), 3);
        for s in &assay {
            assert_eq!(s.record_count(), bundle.activities.len(), "full copies");
        }
        assert!(d.registry.replica_group_of("assay-0").is_some());
        assert!(d.registry.replica_group_of("assay-2").is_some());
        // Later replicas are slower.
        assert!(assay[2].latency_model().base_rtt > assay[0].latency_model().base_rtt);
    }

    #[test]
    fn spec_builder_methods() {
        let spec = WorkloadSpec::default()
            .leaves(10)
            .ligands(3)
            .seed(9)
            .assay_sources(0)
            .latency(LatencyModel::free());
        assert_eq!(spec.leaves, 10);
        assert_eq!(spec.assay_sources, 1, "clamped to >= 1");
        assert_eq!(spec.latency.base_rtt, std::time::Duration::ZERO);
    }
}
