//! Random drug-like ligand generation.
//!
//! Molecules are built directly on the graph API (random carbon
//! skeletons with hetero-atom substitutions, optional ring closures)
//! and rendered to SMILES, so every generated ligand round-trips
//! through the real parser and yields a fingerprint.

use drugtree_chem::element::Element;
use drugtree_chem::mol::{Atom, BondOrder, Molecule};
use drugtree_chem::smiles::write_smiles;
use drugtree_sources::ligand_db::LigandRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate one random drug-like molecule with 6–28 heavy atoms.
pub fn random_molecule(rng: &mut SmallRng) -> Molecule {
    let n_atoms = rng.gen_range(6..=28);
    let mut mol = Molecule::new();
    let first = mol.add_atom(random_atom(rng));
    let mut attachable = vec![first];

    for _ in 1..n_atoms {
        let atom = random_atom(rng);
        let idx = mol.add_atom(atom);
        // Attach to a random existing atom with spare valence.
        for _ in 0..8 {
            let pick = attachable[rng.gen_range(0..attachable.len())];
            if mol.hydrogens(pick) == 0 {
                continue;
            }
            let order = if atom.element == Element::C
                && mol.atoms()[pick as usize].element == Element::C
                && mol.hydrogens(pick) >= 2
                && rng.gen_bool(0.12)
            {
                BondOrder::Double
            } else {
                BondOrder::Single
            };
            if mol.add_bond(pick, idx, order).is_ok() {
                break;
            }
        }
        // If every attempt failed the atom stays a disconnected
        // fragment; avoid that by force-linking to the first atom when
        // possible.
        if mol.degree(idx) == 0 {
            let _ = mol.add_bond(first, idx, BondOrder::Single);
        }
        attachable.push(idx);
    }

    // Occasional ring closure between distant atoms with spare valence.
    for _ in 0..(n_atoms / 8) {
        let a = rng.gen_range(0..mol.atom_count() as u32);
        let b = rng.gen_range(0..mol.atom_count() as u32);
        if a != b && mol.hydrogens(a) > 0 && mol.hydrogens(b) > 0 {
            let _ = mol.add_bond(a, b, BondOrder::Single);
        }
    }
    mol
}

fn random_atom(rng: &mut SmallRng) -> Atom {
    let element = match rng.gen_range(0..100) {
        0..=64 => Element::C,
        65..=79 => Element::N,
        80..=91 => Element::O,
        92..=94 => Element::S,
        95..=97 => Element::F,
        _ => Element::Cl,
    };
    Atom::new(element)
}

/// Generate `n` ligand records with ids `L0000…`.
pub fn random_ligands(n: usize, seed: u64) -> Vec<LigandRecord> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0011_CA4D);
    (0..n)
        .map(|i| {
            let mol = random_molecule(&mut rng);
            let smiles = write_smiles(&mol);
            LigandRecord::from_smiles(format!("L{i:04}"), format!("compound-{i}"), smiles)
                .expect("generated SMILES parses")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_chem::smiles::parse_smiles;

    #[test]
    fn generated_smiles_parse_back() {
        let ligands = random_ligands(50, 1);
        assert_eq!(ligands.len(), 50);
        for l in &ligands {
            let mol = parse_smiles(&l.smiles).unwrap_or_else(|e| panic!("{}: {e}", l.smiles));
            assert!(mol.atom_count() >= 6);
            assert!((6..=40).contains(&mol.atom_count()));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_ligands(10, 3), random_ligands(10, 3));
        assert_ne!(random_ligands(10, 3), random_ligands(10, 4));
    }

    #[test]
    fn descriptors_vary() {
        let ligands = random_ligands(40, 2);
        let mws: std::collections::BTreeSet<u64> =
            ligands.iter().map(|l| l.molecular_weight as u64).collect();
        assert!(mws.len() > 10, "molecular weights too uniform: {mws:?}");
        assert!(ligands.iter().any(|l| l.hbd > 0));
        assert!(ligands.iter().any(|l| l.rings > 0));
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let ligands = random_ligands(12, 5);
        for (i, l) in ligands.iter().enumerate() {
            assert_eq!(l.ligand_id, format!("L{i:04}"));
        }
    }
}
