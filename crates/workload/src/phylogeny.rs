//! Ground-truth tree and sequence generation.

use drugtree_phylo::seq::{AminoAcid, ProteinSequence, CANONICAL};
use drugtree_phylo::tree::{NodeId, Tree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a random rooted binary tree with `n_leaves` leaves labeled
/// `P0000…`, by repeatedly splitting a uniformly chosen leaf (a Yule
/// process). Branch lengths are exponential with mean 0.1.
pub fn random_tree(n_leaves: usize, seed: u64) -> Tree {
    assert!(n_leaves >= 2, "need at least 2 leaves");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tree = Tree::with_root(None);
    let root = tree.root();
    let mut leaves: Vec<NodeId> = vec![
        tree.add_child(root, None, branch_len(&mut rng))
            .expect("root exists"),
        tree.add_child(root, None, branch_len(&mut rng))
            .expect("root exists"),
    ];
    while leaves.len() < n_leaves {
        let pick = rng.gen_range(0..leaves.len());
        let split = leaves.swap_remove(pick);
        let a = tree
            .add_child(split, None, branch_len(&mut rng))
            .expect("leaf exists");
        let b = tree
            .add_child(split, None, branch_len(&mut rng))
            .expect("leaf exists");
        leaves.push(a);
        leaves.push(b);
    }
    // Label leaves in display order so accessions match leaf ranks
    // deterministically; label internal nodes for subtree queries.
    let mut leaf_counter = 0;
    let mut clade_counter = 0;
    for id in tree.preorder() {
        let is_leaf = tree.node_unchecked(id).is_leaf();
        let label = if is_leaf {
            let l = format!("P{leaf_counter:04}");
            leaf_counter += 1;
            l
        } else {
            let l = format!("clade{clade_counter}");
            clade_counter += 1;
            l
        };
        tree.set_label(id, Some(label)).expect("id valid");
    }
    debug_assert!(tree.check_invariants().is_ok());
    tree
}

fn branch_len(rng: &mut SmallRng) -> f64 {
    // Exponential(mean 0.1) via inverse CDF.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -0.1 * u.ln()
}

/// Evolve protein sequences down the tree: a random root sequence of
/// `seq_len` residues mutates along each branch with per-site
/// substitution probability `min(1, branch_length)`. Returns one
/// sequence per leaf, labeled with the leaf's label.
pub fn evolve_sequences(tree: &Tree, seq_len: usize, seed: u64) -> Vec<ProteinSequence> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let root_seq: Vec<AminoAcid> = (0..seq_len)
        .map(|_| CANONICAL[rng.gen_range(0..20)])
        .collect();

    let mut seq_at: Vec<Option<Vec<AminoAcid>>> = vec![None; tree.len()];
    seq_at[tree.root().index()] = Some(root_seq);

    let mut out = Vec::new();
    for id in tree.preorder() {
        let node = tree.node_unchecked(id);
        if let Some(parent) = node.parent {
            let mut seq = seq_at[parent.index()]
                .clone()
                .expect("preorder: parent first");
            let p_sub = node.branch_length.clamp(0.0, 1.0);
            for site in &mut seq {
                if rng.gen::<f64>() < p_sub {
                    *site = CANONICAL[rng.gen_range(0..20)];
                }
            }
            seq_at[id.index()] = Some(seq);
        }
        if node.is_leaf() {
            let label = node.label.clone().unwrap_or_else(|| format!("n{}", id.0));
            out.push(ProteinSequence::new(
                label,
                seq_at[id.index()].clone().expect("assigned above"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_phylo::index::TreeIndex;

    #[test]
    fn random_tree_shape() {
        let t = random_tree(50, 1);
        assert_eq!(t.leaf_count(), 50);
        // Binary: 2n-1 nodes.
        assert_eq!(t.len(), 99);
        t.check_invariants().unwrap();
        // Labels follow display order.
        let idx = TreeIndex::build(&t);
        for rank in 0..50u32 {
            let leaf = idx.leaf_at(rank).unwrap();
            assert_eq!(
                t.node_unchecked(leaf).label.as_deref(),
                Some(format!("P{rank:04}").as_str())
            );
        }
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_tree(20, 5), random_tree(20, 5));
        assert_ne!(random_tree(20, 5), random_tree(20, 6));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn too_small_panics() {
        random_tree(1, 0);
    }

    #[test]
    fn branch_lengths_positive() {
        let t = random_tree(30, 2);
        for id in t.node_ids() {
            if id != t.root() {
                assert!(t.node_unchecked(id).branch_length > 0.0);
            }
        }
    }

    #[test]
    fn sequences_evolve_with_distance() {
        let t = random_tree(16, 3);
        let seqs = evolve_sequences(&t, 120, 3);
        assert_eq!(seqs.len(), 16);
        assert!(seqs.iter().all(|s| s.len() == 120));
        // Sibling leaves should be more similar than distant leaves on
        // average; check the weaker invariant that not everything is
        // identical and not everything is noise.
        let identity = |a: &ProteinSequence, b: &ProteinSequence| {
            a.residues()
                .iter()
                .zip(b.residues())
                .filter(|(x, y)| x == y)
                .count() as f64
                / a.len() as f64
        };
        let id01 = identity(&seqs[0], &seqs[1]);
        assert!(id01 > 0.2, "sequences unexpectedly unrelated: {id01}");
    }

    #[test]
    fn evolution_is_deterministic() {
        let t = random_tree(8, 4);
        assert_eq!(evolve_sequences(&t, 50, 9), evolve_sequences(&t, 50, 9));
    }
}
