#![warn(missing_docs)]
// Test/bench support crate: generators construct their own inputs, so
// `expect` documents generator invariants and a panic here is a bug in
// the generator itself, never in user data. The workspace-wide
// unwrap/expect denial is therefore relaxed for this crate only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Synthetic workload generation for the DrugTree reproduction.
//!
//! The original evaluation used the authors' lab datasets, which are
//! unavailable; this crate generates statistically similar substitutes
//! with *verifiable ground truth* (DESIGN.md §6):
//!
//! * [`phylogeny`] — random ground-truth trees and sequences evolved
//!   along them (so distance-based reconstruction can be checked).
//! * [`ligands`] — random drug-like molecules, emitted as SMILES.
//! * [`assays`] — clade-correlated activity records: ligand families
//!   bind protein clades, giving the skewed, locality-heavy overlay
//!   the optimizer exploits.
//! * [`bundle`] — one-call assembly of sources, overlay, and dataset
//!   from a [`WorkloadSpec`].
//! * [`queries`] — seeded query workloads mixing the four query
//!   classes over Zipf-chosen scopes.

pub mod assays;
pub mod bundle;
pub mod ligands;
pub mod phylogeny;
pub mod queries;

pub use bundle::{SyntheticBundle, WorkloadSpec};
