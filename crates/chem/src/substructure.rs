//! Subgraph-isomorphism substructure search.
//!
//! "Show me every activity whose ligand *contains* this scaffold" is
//! the other classic ligand query besides similarity. The matcher is a
//! VF2-style backtracking search with degree pruning; the path
//! fingerprints provide a sound prescreen (every path of a matched
//! pattern exists in the target, so `pattern_bits ⊆ target_bits` is a
//! necessary condition) that rejects most candidates without running
//! the matcher.

use crate::fingerprint::Fingerprint;
use crate::mol::{Atom, BondOrder, Molecule};

/// Atom compatibility: element, aromaticity, and charge must agree.
/// (Strict semantics keep the fingerprint prescreen sound; hydrogen
/// counts are intentionally ignored, as in substructure convention.)
fn atoms_compatible(pattern: &Atom, target: &Atom) -> bool {
    pattern.element == target.element
        && pattern.aromatic == target.aromatic
        && pattern.charge == target.charge
}

/// Bond compatibility: orders must agree exactly. (The parser already
/// normalizes aromatic rings, so Kekulé/aromatic mismatches do not
/// arise within this crate's own molecules.)
fn bonds_compatible(pattern: BondOrder, target: BondOrder) -> bool {
    pattern == target
}

/// Sound prescreen: a pattern can only match targets whose fingerprint
/// contains every pattern bit.
pub fn fingerprint_prescreen(pattern_fp: &Fingerprint, target_fp: &Fingerprint) -> bool {
    pattern_fp.and_popcount(target_fp) == pattern_fp.popcount()
}

/// Does `target` contain `pattern` as a subgraph (with compatible
/// atoms and bonds)? The empty pattern matches everything.
pub fn is_substructure(pattern: &Molecule, target: &Molecule) -> bool {
    let pn = pattern.atom_count();
    if pn == 0 {
        return true;
    }
    if pn > target.atom_count() || pattern.bond_count() > target.bond_count() {
        return false;
    }

    // Match pattern atoms in a connectivity-aware order: each next
    // atom (after the first) neighbors an already-matched one when the
    // pattern is connected, which keeps the search space tight.
    let order = match_order(pattern);
    let mut assignment: Vec<Option<u32>> = vec![None; pn];
    let mut used = vec![false; target.atom_count()];
    backtrack(pattern, target, &order, 0, &mut assignment, &mut used)
}

/// BFS-based match order over (possibly disconnected) patterns.
fn match_order(pattern: &Molecule) -> Vec<u32> {
    let n = pattern.atom_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n as u32 {
        if seen[start as usize] {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start as usize] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(to, _) in pattern.neighbors(v) {
                if !seen[to as usize] {
                    seen[to as usize] = true;
                    queue.push_back(to);
                }
            }
        }
    }
    order
}

fn backtrack(
    pattern: &Molecule,
    target: &Molecule,
    order: &[u32],
    depth: usize,
    assignment: &mut Vec<Option<u32>>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let p = order[depth];
    let p_atom = &pattern.atoms()[p as usize];
    let p_degree = pattern.degree(p);

    // Candidate targets: neighbors of an already-matched neighbor when
    // one exists (connectivity pruning), else all atoms.
    let anchored: Option<(u32, BondOrder)> = pattern
        .neighbors(p)
        .iter()
        .find_map(|&(q, b)| assignment[q as usize].map(|t| (t, pattern.bonds()[b as usize].order)));

    let candidates: Vec<u32> = match anchored {
        Some((t_anchor, _)) => target.neighbors(t_anchor).iter().map(|&(t, _)| t).collect(),
        None => (0..target.atom_count() as u32).collect(),
    };

    'cand: for t in candidates {
        if used[t as usize]
            || !atoms_compatible(p_atom, &target.atoms()[t as usize])
            || target.degree(t) < p_degree
        {
            continue;
        }
        // Every already-matched pattern neighbor must be a target
        // neighbor with a compatible bond.
        for &(q, pb) in pattern.neighbors(p) {
            if let Some(tq) = assignment[q as usize] {
                match target.bond_between(t, tq) {
                    Some(tb)
                        if bonds_compatible(
                            pattern.bonds()[pb as usize].order,
                            target.bonds()[tb as usize].order,
                        ) => {}
                    _ => continue 'cand,
                }
            }
        }
        assignment[p as usize] = Some(t);
        used[t as usize] = true;
        if backtrack(pattern, target, order, depth + 1, assignment, used) {
            return true;
        }
        assignment[p as usize] = None;
        used[t as usize] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    fn check(pattern: &str, target: &str) -> bool {
        is_substructure(
            &parse_smiles(pattern).unwrap(),
            &parse_smiles(target).unwrap(),
        )
    }

    #[test]
    fn trivial_cases() {
        assert!(check("C", "CCO"));
        assert!(check("O", "CCO"));
        assert!(!check("N", "CCO"));
        assert!(is_substructure(
            &crate::mol::Molecule::new(),
            &parse_smiles("C").unwrap()
        ));
        assert!(!check("CCCC", "CCC"), "pattern larger than target");
    }

    #[test]
    fn chains_and_branches() {
        assert!(check("CCO", "CCCO"));
        assert!(check("CC(C)C", "CC(C)(C)C"), "isobutane in neopentane");
        assert!(!check("CC(C)(C)C", "CC(C)C"));
        assert!(check("CO", "OCC"), "direction irrelevant");
    }

    #[test]
    fn bond_orders_matter() {
        assert!(check("C=C", "CC=CC"));
        assert!(!check("C=C", "CCCC"));
        assert!(check("C#N", "CC#N"));
        assert!(!check("C#N", "CC=NC"));
    }

    #[test]
    fn aromatic_vs_aliphatic() {
        assert!(check("c1ccccc1", "Cc1ccccc1"), "benzene in toluene");
        assert!(!check("C1CCCCC1", "c1ccccc1"), "cyclohexane is not benzene");
        assert!(!check("c1ccccc1", "C1CCCCC1"));
        assert!(check("cc", "c1ccccc1"));
    }

    #[test]
    fn rings_in_fused_systems() {
        // Benzene ring inside naphthalene.
        assert!(check("c1ccccc1", "c1ccc2ccccc2c1"));
        // Naphthalene not inside benzene.
        assert!(!check("c1ccc2ccccc2c1", "c1ccccc1"));
    }

    #[test]
    fn real_scaffolds() {
        let aspirin = "CC(=O)Oc1ccccc1C(=O)O";
        assert!(check("c1ccccc1", aspirin), "phenyl");
        assert!(check("C(=O)O", aspirin), "carboxyl");
        assert!(check("OC(=O)C", aspirin), "acetyl ester fragment");
        assert!(!check("c1ccncc1", aspirin), "no pyridine");
        let caffeine = "Cn1cnc2c1c(=O)n(C)c(=O)n2C";
        // Caffeine's carbonyl carbons are written aromatic (`c(=O)`),
        // so the aliphatic pattern C=O must NOT match under strict
        // aromaticity semantics — but the aromatic form does.
        assert!(!check("C=O", caffeine));
        assert!(check("O=c", caffeine));
        assert!(check("cn", caffeine));
        assert!(!check("S", caffeine));
    }

    #[test]
    fn charges_must_match() {
        assert!(check("[O-]", "CC(=O)[O-]"));
        assert!(!check("[O-]", "CC(=O)O"));
        assert!(!check("O", "[O-]"));
    }

    #[test]
    fn disconnected_patterns() {
        assert!(check("C.O", "CCO"), "two components both embed");
        assert!(!check("N.O", "CCO"));
        // Components must map to *distinct* atoms.
        assert!(!check("O.O", "CCO"));
        assert!(check("O.O", "OCCO"));
    }

    #[test]
    fn prescreen_is_sound() {
        use crate::fingerprint::Fingerprint;
        let targets = [
            "CCO",
            "CCCO",
            "c1ccccc1",
            "CC(=O)Oc1ccccc1C(=O)O",
            "Cn1cnc2c1c(=O)n(C)c(=O)n2C",
        ];
        for pattern_s in ["CCO", "C=O", "c1ccccc1", "CC(C)C"] {
            let pattern = parse_smiles(pattern_s).unwrap();
            let pfp = Fingerprint::of_molecule(&pattern);
            for target_s in targets {
                let target = parse_smiles(target_s).unwrap();
                let tfp = Fingerprint::of_molecule(&target);
                if is_substructure(&pattern, &target) {
                    assert!(
                        fingerprint_prescreen(&pfp, &tfp),
                        "prescreen wrongly rejected {pattern_s} ⊆ {target_s}"
                    );
                }
            }
        }
    }
}
