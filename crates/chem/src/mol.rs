//! Molecule graphs: atoms, bonds, rings, implicit hydrogens.

use crate::element::Element;
use crate::{ChemError, Result};
use serde::{Deserialize, Serialize};

/// Bond order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BondOrder {
    /// Single bond.
    Single,
    /// Double bond.
    Double,
    /// Triple bond.
    Triple,
    /// Delocalized aromatic bond (order 1.5).
    Aromatic,
}

impl BondOrder {
    /// Bond order in half-units (single = 2), so aromatic bonds can be
    /// represented exactly as 3 (= 1.5).
    #[inline]
    pub fn half_units(self) -> u32 {
        match self {
            BondOrder::Single => 2,
            BondOrder::Double => 4,
            BondOrder::Triple => 6,
            BondOrder::Aromatic => 3,
        }
    }
}

/// One atom of a molecule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// Chemical element.
    pub element: Element,
    /// Participates in an aromatic system (lowercase in SMILES).
    pub aromatic: bool,
    /// Formal charge.
    pub charge: i8,
    /// Explicit hydrogen count from a bracket expression; `None` means
    /// hydrogens are implicit (computed from valence).
    pub explicit_h: Option<u8>,
}

impl Atom {
    /// A neutral, non-aromatic atom with implicit hydrogens.
    pub fn new(element: Element) -> Atom {
        Atom {
            element,
            aromatic: false,
            charge: 0,
            explicit_h: None,
        }
    }

    /// Aromatic version of the atom.
    pub fn aromatic(element: Element) -> Atom {
        Atom {
            element,
            aromatic: true,
            charge: 0,
            explicit_h: None,
        }
    }
}

/// One bond of a molecule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bond {
    /// First endpoint (atom index).
    pub a: u32,
    /// Second endpoint (atom index).
    pub b: u32,
    /// Bond order.
    pub order: BondOrder,
}

/// A small-molecule graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Molecule {
    atoms: Vec<Atom>,
    bonds: Vec<Bond>,
    /// Adjacency: per atom, (neighbor atom index, bond index).
    adjacency: Vec<Vec<(u32, u32)>>,
}

impl Molecule {
    /// An empty molecule.
    pub fn new() -> Molecule {
        Molecule::default()
    }

    /// Add an atom, returning its index.
    pub fn add_atom(&mut self, atom: Atom) -> u32 {
        let idx = self.atoms.len() as u32;
        self.atoms.push(atom);
        self.adjacency.push(Vec::new());
        idx
    }

    /// Add a bond between two distinct existing atoms.
    pub fn add_bond(&mut self, a: u32, b: u32, order: BondOrder) -> Result<u32> {
        if a as usize >= self.atoms.len() {
            return Err(ChemError::UnknownAtom(a as usize));
        }
        if b as usize >= self.atoms.len() {
            return Err(ChemError::UnknownAtom(b as usize));
        }
        if a == b {
            return Err(ChemError::InvalidBond(format!("self-bond on atom {a}")));
        }
        if self.bond_between(a, b).is_some() {
            return Err(ChemError::InvalidBond(format!("duplicate bond {a}-{b}")));
        }
        let idx = self.bonds.len() as u32;
        self.bonds.push(Bond { a, b, order });
        self.adjacency[a as usize].push((b, idx));
        self.adjacency[b as usize].push((a, idx));
        Ok(idx)
    }

    /// Number of atoms (heavy atoms; explicit H atoms count if added).
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of bonds.
    pub fn bond_count(&self) -> usize {
        self.bonds.len()
    }

    /// All atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// All bonds.
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// Borrow one atom.
    pub fn atom(&self, idx: u32) -> Result<&Atom> {
        self.atoms
            .get(idx as usize)
            .ok_or(ChemError::UnknownAtom(idx as usize))
    }

    /// Neighbors of an atom as (atom index, bond index) pairs.
    pub fn neighbors(&self, idx: u32) -> &[(u32, u32)] {
        &self.adjacency[idx as usize]
    }

    /// Degree (number of explicit bonds) of an atom.
    pub fn degree(&self, idx: u32) -> usize {
        self.adjacency[idx as usize].len()
    }

    /// Bond index between two atoms, if any.
    pub fn bond_between(&self, a: u32, b: u32) -> Option<u32> {
        self.adjacency
            .get(a as usize)?
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, bond)| bond)
    }

    /// Implicit hydrogen count of an atom under the SMILES normal-
    /// valence model. Explicit bracket hydrogens override the estimate.
    pub fn hydrogens(&self, idx: u32) -> u32 {
        let atom = &self.atoms[idx as usize];
        if let Some(h) = atom.explicit_h {
            return h as u32;
        }
        let bond_half_units: u32 = self.adjacency[idx as usize]
            .iter()
            .map(|&(_, b)| self.bonds[b as usize].order.half_units())
            .sum();
        let valence_half = atom.element.default_valence() as u32 * 2;
        // Charge adjusts the available valence (e.g. N+ carries 4 bonds).
        let valence_half = (valence_half as i64 + 2 * atom.charge as i64).max(0) as u32;
        valence_half.saturating_sub(bond_half_units) / 2
    }

    /// Total hydrogen count over all atoms.
    pub fn total_hydrogens(&self) -> u32 {
        (0..self.atoms.len() as u32)
            .map(|i| self.hydrogens(i))
            .sum()
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let n = self.atoms.len();
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start as u32];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for &(nb, _) in &self.adjacency[v as usize] {
                    if !seen[nb as usize] {
                        seen[nb as usize] = true;
                        stack.push(nb);
                    }
                }
            }
        }
        components
    }

    /// Smallest-set-of-smallest-rings *count* via the cyclomatic number:
    /// `bonds - atoms + components`.
    pub fn ring_count(&self) -> usize {
        (self.bonds.len() + self.component_count()).saturating_sub(self.atoms.len())
    }

    /// Per-bond flag: true when the bond lies on a cycle (is not a
    /// bridge). Computed with a DFS low-link bridge search.
    pub fn ring_bonds(&self) -> Vec<bool> {
        let n = self.atoms.len();
        let m = self.bonds.len();
        let mut in_ring = vec![true; m];
        let mut disc = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut timer = 0u32;

        // Iterative DFS to avoid recursion on large molecules.
        for root in 0..n {
            if disc[root] != u32::MAX {
                continue;
            }
            // Stack entries: (vertex, incoming bond, next neighbor slot).
            let mut stack: Vec<(u32, Option<u32>, usize)> = vec![(root as u32, None, 0)];
            disc[root] = timer;
            low[root] = timer;
            timer += 1;
            while let Some(top) = stack.last().copied() {
                let (v, in_bond, slot) = top;
                if slot < self.adjacency[v as usize].len() {
                    if let Some(entry) = stack.last_mut() {
                        entry.2 += 1;
                    }
                    let (to, bond) = self.adjacency[v as usize][slot];
                    if Some(bond) == in_bond {
                        continue;
                    }
                    if disc[to as usize] == u32::MAX {
                        disc[to as usize] = timer;
                        low[to as usize] = timer;
                        timer += 1;
                        stack.push((to, Some(bond), 0));
                    } else {
                        low[v as usize] = low[v as usize].min(disc[to as usize]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(parent, _, _)) = stack.last() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                        if let Some(bond) = in_bond {
                            if low[v as usize] > disc[parent as usize] {
                                in_ring[bond as usize] = false; // bridge
                            }
                        }
                    }
                }
            }
        }
        // Bonds whose removal disconnects (bridges) are not in rings;
        // everything else is.
        in_ring
    }

    /// Per-atom flag: true when the atom lies on at least one ring bond.
    pub fn ring_atoms(&self) -> Vec<bool> {
        let ring_bonds = self.ring_bonds();
        let mut flags = vec![false; self.atoms.len()];
        for (i, bond) in self.bonds.iter().enumerate() {
            if ring_bonds[i] {
                flags[bond.a as usize] = true;
                flags[bond.b as usize] = true;
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear propane: C-C-C.
    fn propane() -> Molecule {
        let mut m = Molecule::new();
        let c0 = m.add_atom(Atom::new(Element::C));
        let c1 = m.add_atom(Atom::new(Element::C));
        let c2 = m.add_atom(Atom::new(Element::C));
        m.add_bond(c0, c1, BondOrder::Single).unwrap();
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        m
    }

    /// Benzene ring of aromatic carbons.
    fn benzene() -> Molecule {
        let mut m = Molecule::new();
        let atoms: Vec<u32> = (0..6)
            .map(|_| m.add_atom(Atom::aromatic(Element::C)))
            .collect();
        for i in 0..6 {
            m.add_bond(atoms[i], atoms[(i + 1) % 6], BondOrder::Aromatic)
                .unwrap();
        }
        m
    }

    #[test]
    fn construction_and_validation() {
        let mut m = propane();
        assert_eq!(m.atom_count(), 3);
        assert_eq!(m.bond_count(), 2);
        assert_eq!(m.degree(1), 2);
        assert!(m.bond_between(0, 1).is_some());
        assert!(m.bond_between(0, 2).is_none());
        assert!(matches!(
            m.add_bond(0, 0, BondOrder::Single),
            Err(ChemError::InvalidBond(_))
        ));
        assert!(matches!(
            m.add_bond(0, 9, BondOrder::Single),
            Err(ChemError::UnknownAtom(9))
        ));
        assert!(matches!(
            m.add_bond(0, 1, BondOrder::Double),
            Err(ChemError::InvalidBond(_))
        ));
    }

    #[test]
    fn implicit_hydrogens_propane() {
        let m = propane();
        assert_eq!(m.hydrogens(0), 3);
        assert_eq!(m.hydrogens(1), 2);
        assert_eq!(m.hydrogens(2), 3);
        assert_eq!(m.total_hydrogens(), 8);
    }

    #[test]
    fn implicit_hydrogens_benzene() {
        let m = benzene();
        for i in 0..6 {
            assert_eq!(m.hydrogens(i), 1, "atom {i}");
        }
    }

    #[test]
    fn explicit_h_overrides() {
        let mut m = Molecule::new();
        let n = m.add_atom(Atom {
            element: Element::N,
            aromatic: false,
            charge: 1,
            explicit_h: Some(4),
        });
        assert_eq!(m.hydrogens(n), 4);
    }

    #[test]
    fn charge_adjusts_valence() {
        let mut m = Molecule::new();
        // N+ has effective valence 4 -> NH4+ without explicit H.
        let n = m.add_atom(Atom {
            element: Element::N,
            aromatic: false,
            charge: 1,
            explicit_h: None,
        });
        assert_eq!(m.hydrogens(n), 4);
        // O- has effective valence 1.
        let o = m.add_atom(Atom {
            element: Element::O,
            aromatic: false,
            charge: -1,
            explicit_h: None,
        });
        assert_eq!(m.hydrogens(o), 1);
    }

    #[test]
    fn ring_detection() {
        let m = benzene();
        assert_eq!(m.ring_count(), 1);
        assert!(m.ring_bonds().iter().all(|&b| b));
        assert!(m.ring_atoms().iter().all(|&a| a));

        let m = propane();
        assert_eq!(m.ring_count(), 0);
        assert!(m.ring_bonds().iter().all(|&b| !b));
    }

    #[test]
    fn toluene_has_one_non_ring_bond() {
        let mut m = benzene();
        let methyl = m.add_atom(Atom::new(Element::C));
        m.add_bond(0, methyl, BondOrder::Single).unwrap();
        let ring = m.ring_bonds();
        assert_eq!(ring.iter().filter(|&&b| b).count(), 6);
        assert_eq!(ring.iter().filter(|&&b| !b).count(), 1);
        assert_eq!(m.ring_count(), 1);
        let atoms = m.ring_atoms();
        assert!(!atoms[methyl as usize]);
    }

    #[test]
    fn fused_rings_counted_by_cyclomatic_number() {
        // Naphthalene skeleton: two fused 6-rings, 10 atoms, 11 bonds.
        let mut m = Molecule::new();
        let a: Vec<u32> = (0..10)
            .map(|_| m.add_atom(Atom::aromatic(Element::C)))
            .collect();
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (0, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 5),
        ];
        for (x, y) in edges {
            m.add_bond(a[x], a[y], BondOrder::Aromatic).unwrap();
        }
        assert_eq!(m.ring_count(), 2);
        assert!(m.ring_bonds().iter().all(|&b| b));
    }

    #[test]
    fn components() {
        let mut m = propane();
        m.add_atom(Atom::new(Element::O)); // disconnected water oxygen
        assert_eq!(m.component_count(), 2);
        assert_eq!(m.ring_count(), 0);
        assert_eq!(benzene().component_count(), 1);
    }
}
