//! Fingerprint similarity coefficients.

use crate::fingerprint::Fingerprint;

/// Tanimoto (Jaccard) coefficient: `|A∩B| / |A∪B|`.
///
/// Two empty fingerprints are defined as identical (1.0), matching the
/// convention of most cheminformatics toolkits.
pub fn tanimoto(a: &Fingerprint, b: &Fingerprint) -> f64 {
    let union = a.or_popcount(b);
    if union == 0 {
        return 1.0;
    }
    a.and_popcount(b) as f64 / union as f64
}

/// Dice (Sørensen) coefficient: `2|A∩B| / (|A| + |B|)`.
pub fn dice(a: &Fingerprint, b: &Fingerprint) -> f64 {
    let total = a.popcount() + b.popcount();
    if total == 0 {
        return 1.0;
    }
    2.0 * a.and_popcount(b) as f64 / total as f64
}

/// Upper bound on the Tanimoto similarity achievable against a query of
/// `query_popcount` bits by any fingerprint with `candidate_popcount`
/// bits — the standard Swamidass–Baldi pruning bound used to skip
/// candidates during top-k similarity search.
pub fn tanimoto_upper_bound(query_popcount: u32, candidate_popcount: u32) -> f64 {
    let (q, c) = (query_popcount as f64, candidate_popcount as f64);
    if q == 0.0 && c == 0.0 {
        return 1.0;
    }
    q.min(c) / q.max(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    fn fp(smiles: &str) -> Fingerprint {
        Fingerprint::of_molecule(&parse_smiles(smiles).unwrap())
    }

    #[test]
    fn identity_is_one() {
        let a = fp("CC(=O)Oc1ccccc1C(=O)O");
        assert_eq!(tanimoto(&a, &a), 1.0);
        assert_eq!(dice(&a, &a), 1.0);
    }

    #[test]
    fn bounds_and_symmetry() {
        let a = fp("CCO");
        let b = fp("c1ccccc1");
        let t = tanimoto(&a, &b);
        let d = dice(&a, &b);
        assert!((0.0..=1.0).contains(&t));
        assert!((0.0..=1.0).contains(&d));
        assert_eq!(t, tanimoto(&b, &a));
        assert_eq!(d, dice(&b, &a));
        // Dice always >= Tanimoto for the same pair.
        assert!(d >= t);
    }

    #[test]
    fn similar_beats_dissimilar() {
        let ethanol = fp("CCO");
        let propanol = fp("CCCO");
        let benzene = fp("c1ccccc1");
        assert!(tanimoto(&ethanol, &propanol) > tanimoto(&ethanol, &benzene));
    }

    #[test]
    fn empty_fingerprints_are_identical() {
        let a = Fingerprint::empty(64);
        let b = Fingerprint::empty(64);
        assert_eq!(tanimoto(&a, &b), 1.0);
        assert_eq!(dice(&a, &b), 1.0);
    }

    #[test]
    fn upper_bound_is_valid() {
        let mols = ["CCO", "CCCO", "c1ccccc1", "CC(=O)Oc1ccccc1C(=O)O", "C"];
        for a in &mols {
            for b in &mols {
                let fa = fp(a);
                let fb = fp(b);
                let bound = tanimoto_upper_bound(fa.popcount(), fb.popcount());
                assert!(
                    tanimoto(&fa, &fb) <= bound + 1e-12,
                    "{a} vs {b}: {} > {bound}",
                    tanimoto(&fa, &fb)
                );
            }
        }
        assert_eq!(tanimoto_upper_bound(0, 0), 1.0);
        assert_eq!(tanimoto_upper_bound(10, 0), 0.0);
    }
}
