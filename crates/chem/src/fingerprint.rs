//! Hashed linear-path molecular fingerprints.
//!
//! The classic Daylight-style scheme: enumerate all linear atom-bond
//! paths up to a maximum length, hash each path string into a fixed-
//! width bitset, and compare bitsets with Tanimoto similarity. This is
//! the representation DrugTree's "ligands similar to X" queries run on.

use crate::mol::{BondOrder, Molecule};
use serde::{Deserialize, Serialize};

/// Default fingerprint width in bits.
pub const DEFAULT_BITS: usize = 1024;

/// Default maximum path length (in bonds).
pub const DEFAULT_MAX_PATH: usize = 5;

/// A fixed-width bitset fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint {
    bits: Vec<u64>,
    nbits: u32,
}

impl Fingerprint {
    /// An empty fingerprint of `nbits` width (rounded up to 64).
    pub fn empty(nbits: usize) -> Fingerprint {
        assert!(nbits > 0, "fingerprint width must be positive");
        Fingerprint {
            bits: vec![0; nbits.div_ceil(64)],
            nbits: nbits as u32,
        }
    }

    /// Width in bits.
    pub fn nbits(&self) -> usize {
        self.nbits as usize
    }

    /// Set one bit (modulo the width).
    #[inline]
    pub fn set(&mut self, bit: u64) {
        let b = (bit % self.nbits as u64) as usize;
        self.bits[b / 64] |= 1u64 << (b % 64);
    }

    /// Test one bit (modulo the width).
    #[inline]
    pub fn get(&self, bit: u64) -> bool {
        let b = (bit % self.nbits as u64) as usize;
        self.bits[b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Number of set bits.
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Popcount of the intersection with `other`.
    pub fn and_popcount(&self, other: &Fingerprint) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Popcount of the union with `other`.
    pub fn or_popcount(&self, other: &Fingerprint) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a | b).count_ones())
            .sum()
    }

    /// Compute the path fingerprint of a molecule with default
    /// parameters.
    pub fn of_molecule(mol: &Molecule) -> Fingerprint {
        Fingerprint::of_molecule_with(mol, DEFAULT_BITS, DEFAULT_MAX_PATH)
    }

    /// Compute the path fingerprint with explicit width and path length.
    pub fn of_molecule_with(mol: &Molecule, nbits: usize, max_path: usize) -> Fingerprint {
        let mut fp = Fingerprint::empty(nbits);
        let n = mol.atom_count();
        // DFS path enumeration from every atom. Paths are encoded as a
        // rolling FNV-1a hash over (atom code, bond code) tokens; both
        // directions of a path hash differently, so we also hash the
        // reverse and set the min — making the bit direction-invariant.
        let mut path: Vec<u64> = Vec::with_capacity(2 * max_path + 1);
        for start in 0..n as u32 {
            let mut visited = vec![false; n];
            visited[start as usize] = true;
            path.push(atom_code(mol, start));
            enumerate_paths(mol, start, max_path, &mut visited, &mut path, &mut fp);
            path.clear();
        }
        fp
    }
}

fn enumerate_paths(
    mol: &Molecule,
    at: u32,
    remaining: usize,
    visited: &mut [bool],
    path: &mut Vec<u64>,
    fp: &mut Fingerprint,
) {
    // Every prefix path (length >= 1 atom) contributes a bit.
    fp.set(direction_invariant_hash(path));
    if remaining == 0 {
        return;
    }
    for &(to, bond) in mol.neighbors(at) {
        if visited[to as usize] {
            continue;
        }
        visited[to as usize] = true;
        path.push(bond_code(mol, bond));
        path.push(atom_code(mol, to));
        enumerate_paths(mol, to, remaining - 1, visited, path, fp);
        path.pop();
        path.pop();
        visited[to as usize] = false;
    }
}

fn atom_code(mol: &Molecule, idx: u32) -> u64 {
    let a = &mol.atoms()[idx as usize];
    (a.element as u64) << 3 | (a.aromatic as u64) << 2 | ((a.charge != 0) as u64)
}

fn bond_code(mol: &Molecule, bond: u32) -> u64 {
    match mol.bonds()[bond as usize].order {
        BondOrder::Single => 101,
        BondOrder::Double => 102,
        BondOrder::Triple => 103,
        BondOrder::Aromatic => 104,
    }
}

fn fnv1a(tokens: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for t in tokens {
        for byte in t.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn direction_invariant_hash(path: &[u64]) -> u64 {
    let fwd = fnv1a(path.iter().copied());
    let rev = fnv1a(path.iter().rev().copied());
    fwd.min(rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    #[test]
    fn bitset_basics() {
        let mut fp = Fingerprint::empty(128);
        assert_eq!(fp.popcount(), 0);
        fp.set(5);
        fp.set(127);
        fp.set(128 + 5); // wraps onto bit 5
        assert!(fp.get(5));
        assert!(fp.get(127));
        assert!(!fp.get(6));
        assert_eq!(fp.popcount(), 2);
    }

    #[test]
    fn and_or_popcounts() {
        let mut a = Fingerprint::empty(128);
        let mut b = Fingerprint::empty(128);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        assert_eq!(a.and_popcount(&b), 1);
        assert_eq!(a.or_popcount(&b), 3);
    }

    #[test]
    fn identical_molecules_identical_fingerprints() {
        let a = Fingerprint::of_molecule(&parse_smiles("CCO").unwrap());
        let b = Fingerprint::of_molecule(&parse_smiles("CCO").unwrap());
        assert_eq!(a, b);
        assert!(a.popcount() > 0);
    }

    #[test]
    fn direction_invariance() {
        // OCC written from the other end is the same molecule with a
        // different atom order; path fingerprints must agree.
        let a = Fingerprint::of_molecule(&parse_smiles("CCO").unwrap());
        let b = Fingerprint::of_molecule(&parse_smiles("OCC").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn different_molecules_differ() {
        let a = Fingerprint::of_molecule(&parse_smiles("CCO").unwrap());
        let b = Fingerprint::of_molecule(&parse_smiles("CCN").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn substructure_paths_are_subset() {
        // Ethane's paths are a subset of propane's.
        let eth = Fingerprint::of_molecule(&parse_smiles("CC").unwrap());
        let prop = Fingerprint::of_molecule(&parse_smiles("CCC").unwrap());
        assert_eq!(eth.and_popcount(&prop), eth.popcount());
    }

    #[test]
    fn larger_molecules_set_more_bits() {
        let small = Fingerprint::of_molecule(&parse_smiles("CC").unwrap());
        let large = Fingerprint::of_molecule(&parse_smiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C").unwrap());
        assert!(large.popcount() > small.popcount());
    }

    #[test]
    fn custom_width() {
        let fp = Fingerprint::of_molecule_with(&parse_smiles("CCO").unwrap(), 256, 3);
        assert_eq!(fp.nbits(), 256);
        assert!(fp.popcount() > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = Fingerprint::empty(0);
    }
}
