//! Physicochemical descriptors for drug-likeness filtering.
//!
//! DrugTree query predicates filter ligands on exactly these properties
//! ("MW < 500", "Lipinski-compliant", …), so the descriptor set mirrors
//! what a 2013-era medicinal-chemistry database exposes.

use crate::element::Element;
use crate::mol::{BondOrder, Molecule};
use serde::{Deserialize, Serialize};

/// Computed descriptor block for one molecule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Descriptors {
    /// Molecular weight, including implicit hydrogens (g/mol).
    pub molecular_weight: f64,
    /// Heavy (non-hydrogen) atom count.
    pub heavy_atoms: u32,
    /// Ring count (cyclomatic number).
    pub rings: u32,
    /// Aromatic atom count.
    pub aromatic_atoms: u32,
    /// Hydrogen-bond donors (N/O bearing at least one H).
    pub hbd: u32,
    /// Hydrogen-bond acceptors (N/O atoms).
    pub hba: u32,
    /// Rotatable bonds (non-ring single bonds between non-terminal
    /// heavy atoms).
    pub rotatable_bonds: u32,
    /// Net formal charge.
    pub net_charge: i32,
}

impl Descriptors {
    /// Compute all descriptors in one pass over the molecule.
    pub fn compute(mol: &Molecule) -> Descriptors {
        let mut mw = 0.0;
        let mut hbd = 0;
        let mut hba = 0;
        let mut aromatic_atoms = 0;
        let mut net_charge = 0i32;

        for (i, atom) in mol.atoms().iter().enumerate() {
            let h = mol.hydrogens(i as u32);
            mw += atom.element.atomic_mass() + h as f64 * Element::H.atomic_mass();
            net_charge += atom.charge as i32;
            if atom.aromatic {
                aromatic_atoms += 1;
            }
            if matches!(atom.element, Element::N | Element::O) {
                hba += 1;
                if h > 0 {
                    hbd += 1;
                }
            }
        }

        let ring_bonds = mol.ring_bonds();
        let mut rotatable = 0;
        for (bi, bond) in mol.bonds().iter().enumerate() {
            if bond.order == BondOrder::Single
                && !ring_bonds[bi]
                && mol.degree(bond.a) > 1
                && mol.degree(bond.b) > 1
            {
                rotatable += 1;
            }
        }

        Descriptors {
            molecular_weight: mw,
            heavy_atoms: mol.atom_count() as u32,
            rings: mol.ring_count() as u32,
            aromatic_atoms,
            hbd,
            hba,
            rotatable_bonds: rotatable,
            net_charge,
        }
    }

    /// Number of Lipinski rule-of-five violations (MW > 500, HBD > 5,
    /// HBA > 10). LogP is not modeled, so the classic fourth rule is
    /// omitted; this matches the three-rule variant used when partition
    /// coefficients are unavailable.
    pub fn lipinski_violations(&self) -> u32 {
        let mut v = 0;
        if self.molecular_weight > 500.0 {
            v += 1;
        }
        if self.hbd > 5 {
            v += 1;
        }
        if self.hba > 10 {
            v += 1;
        }
        v
    }

    /// Drug-likeness shortcut: at most one Lipinski violation.
    pub fn is_drug_like(&self) -> bool {
        self.lipinski_violations() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smiles::parse_smiles;

    #[test]
    fn water_free_methane() {
        let d = Descriptors::compute(&parse_smiles("C").unwrap());
        assert!((d.molecular_weight - 16.043).abs() < 0.01);
        assert_eq!(d.heavy_atoms, 1);
        assert_eq!(d.hbd, 0);
        assert_eq!(d.hba, 0);
        assert_eq!(d.rotatable_bonds, 0);
    }

    #[test]
    fn ethanol() {
        let d = Descriptors::compute(&parse_smiles("CCO").unwrap());
        assert!((d.molecular_weight - 46.07).abs() < 0.05);
        assert_eq!(d.hbd, 1);
        assert_eq!(d.hba, 1);
        // C-C and C-O both touch a terminal heavy atom.
        assert_eq!(d.rotatable_bonds, 0);
    }

    #[test]
    fn butane_rotatable() {
        let d = Descriptors::compute(&parse_smiles("CCCC").unwrap());
        assert_eq!(d.rotatable_bonds, 1);
        let d = Descriptors::compute(&parse_smiles("CCCCC").unwrap());
        assert_eq!(d.rotatable_bonds, 2);
    }

    #[test]
    fn benzene_descriptors() {
        let d = Descriptors::compute(&parse_smiles("c1ccccc1").unwrap());
        assert!((d.molecular_weight - 78.11).abs() < 0.05);
        assert_eq!(d.rings, 1);
        assert_eq!(d.aromatic_atoms, 6);
        assert_eq!(d.rotatable_bonds, 0);
    }

    #[test]
    fn aspirin_descriptors() {
        let d = Descriptors::compute(&parse_smiles("CC(=O)Oc1ccccc1C(=O)O").unwrap());
        assert!(
            (d.molecular_weight - 180.16).abs() < 0.2,
            "mw = {}",
            d.molecular_weight
        );
        assert_eq!(d.hbd, 1); // carboxylic OH
        assert_eq!(d.hba, 4); // four oxygens
        assert_eq!(d.rings, 1);
        assert!(d.is_drug_like());
        assert_eq!(d.lipinski_violations(), 0);
    }

    #[test]
    fn charged_species() {
        let d = Descriptors::compute(&parse_smiles("[NH4+].[O-]C=O").unwrap());
        assert_eq!(d.net_charge, 0);
        assert!(d.hbd >= 1);
    }

    #[test]
    fn lipinski_violations_trigger() {
        // A long polyol: lots of donors/acceptors and high weight.
        let polyol = "OCC(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)C(O)CO";
        let d = Descriptors::compute(&parse_smiles(polyol).unwrap());
        assert!(d.molecular_weight > 500.0);
        assert!(d.hbd > 5);
        assert!(d.hba > 10);
        assert_eq!(d.lipinski_violations(), 3);
        assert!(!d.is_drug_like());
    }
}
