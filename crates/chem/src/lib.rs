#![warn(missing_docs)]

//! Ligand (small-molecule) data model for the DrugTree reproduction.
//!
//! DrugTree overlays *ligand data* on the protein tree; this crate is
//! that data's home:
//!
//! * [`element`] — the elements SMILES' organic subset covers, with
//!   atomic masses.
//! * [`mol`] — molecule graphs (atoms, bonds, rings).
//! * [`smiles`] — a SMILES parser/writer for the organic subset,
//!   brackets, branches, ring closures and charges.
//! * [`descriptors`] — physicochemical descriptors (MW, H-bond
//!   donors/acceptors, rotatable bonds, Lipinski's rule of five).
//! * [`fingerprint`] — hashed linear-path fingerprints over a compact
//!   bitset, the classic similarity-search representation.
//! * [`similarity`] — Tanimoto and Dice coefficients.
//! * [`canonical`] — Morgan-style canonical ranking and canonical
//!   SMILES (ligand identity across sources).
//! * [`substructure`] — VF2-style subgraph-isomorphism matching with
//!   a fingerprint prescreen ("ligands containing this scaffold").
//! * [`affinity`] — binding/assay activity records (Ki, Kd, IC50, …)
//!   and the `pActivity` scale queries filter on.

pub mod affinity;
pub mod canonical;
pub mod descriptors;
pub mod element;
pub mod error;
pub mod fingerprint;
pub mod mol;
pub mod similarity;
pub mod smiles;
pub mod substructure;

pub use affinity::{ActivityRecord, ActivityType};
pub use error::ChemError;
pub use fingerprint::Fingerprint;
pub use mol::Molecule;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ChemError>;
