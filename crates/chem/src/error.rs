//! Error type for the chemistry substrate.

use std::fmt;

/// Errors from SMILES parsing, molecule construction, or activity data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChemError {
    /// SMILES input could not be parsed.
    MalformedSmiles {
        /// Byte offset of the error.
        offset: usize,
        /// What was expected.
        message: String,
    },
    /// An atom index that does not belong to the molecule.
    UnknownAtom(usize),
    /// A bond refers to the same atom twice or duplicates an existing bond.
    InvalidBond(String),
    /// An activity value was out of its valid domain.
    InvalidActivity(String),
}

impl fmt::Display for ChemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChemError::MalformedSmiles { offset, message } => {
                write!(f, "malformed SMILES at byte {offset}: {message}")
            }
            ChemError::UnknownAtom(i) => write!(f, "unknown atom index {i}"),
            ChemError::InvalidBond(msg) => write!(f, "invalid bond: {msg}"),
            ChemError::InvalidActivity(msg) => write!(f, "invalid activity: {msg}"),
        }
    }
}

impl std::error::Error for ChemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ChemError::MalformedSmiles {
            offset: 2,
            message: "x".into(),
        };
        assert!(e.to_string().contains("byte 2"));
        assert!(ChemError::UnknownAtom(7).to_string().contains('7'));
    }
}
