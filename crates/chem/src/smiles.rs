//! SMILES parsing and writing for a drug-like subset.
//!
//! Supported dialect: the organic subset (`B C N O P S F Cl Br I`),
//! aromatic lowercase atoms (`b c n o p s`), bracket atoms with
//! isotope (ignored), chirality markers (ignored), explicit hydrogen
//! counts and formal charges, bond symbols `- = # :`, branches,
//! two-digit `%nn` ring closures, and `.`-separated components. This
//! covers the ChEMBL-style ligand strings a DrugTree deployment would
//! ingest.

use crate::element::Element;
use crate::mol::{Atom, BondOrder, Molecule};
use crate::{ChemError, Result};

/// Parse a SMILES string into a [`Molecule`].
pub fn parse_smiles(input: &str) -> Result<Molecule> {
    Parser {
        bytes: input.as_bytes(),
        pos: 0,
    }
    .parse()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

#[derive(Clone, Copy)]
struct PendingBond {
    order: Option<BondOrder>,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ChemError {
        ChemError::MalformedSmiles {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse(mut self) -> Result<Molecule> {
        let mut mol = Molecule::new();
        // Stack of "previous atom" indices for branch handling.
        let mut stack: Vec<u32> = Vec::new();
        let mut prev: Option<u32> = None;
        let mut pending = PendingBond { order: None };
        // Open ring closures: number -> (atom, bond order at open site).
        let mut rings: std::collections::HashMap<u16, (u32, Option<BondOrder>)> =
            std::collections::HashMap::new();

        while let Some(b) = self.peek() {
            match b {
                b'(' => {
                    self.bump();
                    let cur = prev.ok_or_else(|| self.err("branch before any atom"))?;
                    stack.push(cur);
                }
                b')' => {
                    self.bump();
                    prev = Some(stack.pop().ok_or_else(|| self.err("unmatched ')'"))?);
                    pending = PendingBond { order: None };
                }
                b'-' => {
                    self.bump();
                    pending.order = Some(BondOrder::Single);
                }
                b'=' => {
                    self.bump();
                    pending.order = Some(BondOrder::Double);
                }
                b'#' => {
                    self.bump();
                    pending.order = Some(BondOrder::Triple);
                }
                b':' => {
                    self.bump();
                    pending.order = Some(BondOrder::Aromatic);
                }
                b'/' | b'\\' => {
                    // Cis/trans markers act as single bonds; geometry is
                    // out of scope for the ligand model.
                    self.bump();
                    pending.order = Some(BondOrder::Single);
                }
                b'.' => {
                    if pending.order.is_some() {
                        return Err(self.err("bond symbol before '.'"));
                    }
                    if prev.is_none() {
                        return Err(self.err("'.' must follow an atom"));
                    }
                    self.bump();
                    prev = None;
                }
                b'0'..=b'9' | b'%' => {
                    let num = self.parse_ring_number()?;
                    let cur = prev.ok_or_else(|| self.err("ring closure before any atom"))?;
                    match rings.remove(&num) {
                        None => {
                            rings.insert(num, (cur, pending.order));
                            pending.order = None;
                        }
                        Some((other, open_order)) => {
                            let order = match (open_order, pending.order) {
                                (Some(a), Some(b)) if a != b => {
                                    return Err(self.err("conflicting bond orders at ring closure"))
                                }
                                (Some(a), _) => Some(a),
                                (None, b) => b,
                            };
                            let order = order.unwrap_or_else(|| default_bond(&mol, other, cur));
                            pending.order = None;
                            mol.add_bond(other, cur, order)
                                .map_err(|e| self.err(e.to_string()))?;
                        }
                    }
                }
                _ => {
                    let atom = self.parse_atom()?;
                    let idx = mol.add_atom(atom);
                    if let Some(p) = prev {
                        let order = pending.order.unwrap_or_else(|| default_bond(&mol, p, idx));
                        mol.add_bond(p, idx, order)
                            .map_err(|e| self.err(e.to_string()))?;
                    }
                    pending = PendingBond { order: None };
                    prev = Some(idx);
                }
            }
        }
        if !stack.is_empty() {
            return Err(self.err("unmatched '('"));
        }
        if !rings.is_empty() {
            let nums: Vec<u16> = rings.keys().copied().collect();
            return Err(self.err(format!("unclosed ring bond(s): {nums:?}")));
        }
        if pending.order.is_some() {
            return Err(self.err("dangling bond symbol at end of input"));
        }
        Ok(mol)
    }

    fn parse_ring_number(&mut self) -> Result<u16> {
        match self.bump() {
            Some(b'%') => {
                let d1 = self.bump().filter(u8::is_ascii_digit);
                let d2 = self.bump().filter(u8::is_ascii_digit);
                match (d1, d2) {
                    (Some(a), Some(b)) => Ok(((a - b'0') as u16) * 10 + (b - b'0') as u16),
                    _ => Err(self.err("'%' must be followed by two digits")),
                }
            }
            Some(d) if d.is_ascii_digit() => Ok((d - b'0') as u16),
            _ => Err(self.err("expected ring closure digit")),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom> {
        match self.peek() {
            Some(b'[') => self.parse_bracket_atom(),
            Some(_) => self.parse_organic_atom(),
            None => Err(self.err("expected atom")),
        }
    }

    fn parse_organic_atom(&mut self) -> Result<Atom> {
        let b = self.bump().ok_or_else(|| self.err("expected atom"))?;
        let two = |p: &Self, next: u8| p.peek() == Some(next);
        let atom = match b {
            b'C' if two(self, b'l') => {
                self.bump();
                Atom::new(Element::Cl)
            }
            b'B' if two(self, b'r') => {
                self.bump();
                Atom::new(Element::Br)
            }
            b'B' => Atom::new(Element::B),
            b'C' => Atom::new(Element::C),
            b'N' => Atom::new(Element::N),
            b'O' => Atom::new(Element::O),
            b'P' => Atom::new(Element::P),
            b'S' => Atom::new(Element::S),
            b'F' => Atom::new(Element::F),
            b'I' => Atom::new(Element::I),
            b'b' => Atom::aromatic(Element::B),
            b'c' => Atom::aromatic(Element::C),
            b'n' => Atom::aromatic(Element::N),
            b'o' => Atom::aromatic(Element::O),
            b'p' => Atom::aromatic(Element::P),
            b's' => Atom::aromatic(Element::S),
            other => {
                self.pos -= 1;
                return Err(self.err(format!("unexpected character {:?}", other as char)));
            }
        };
        Ok(atom)
    }

    fn parse_bracket_atom(&mut self) -> Result<Atom> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();

        // Optional isotope (ignored).
        while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
            self.bump();
        }

        // Element symbol: uppercase + optional lowercase, or a bare
        // aromatic lowercase.
        let aromatic;
        let element = match self.peek() {
            Some(c @ b'a'..=b'z') => {
                self.bump();
                aromatic = true;
                let sym = (c.to_ascii_uppercase() as char).to_string();
                Element::from_symbol(&sym)
                    .filter(|e| e.supports_aromatic())
                    .ok_or_else(|| self.err(format!("unknown aromatic atom {:?}", c as char)))?
            }
            Some(c @ b'A'..=b'Z') => {
                self.bump();
                aromatic = false;
                let mut sym = (c as char).to_string();
                if let Some(l @ b'a'..=b'z') = self.peek() {
                    // Only consume the lowercase letter if it completes a
                    // known two-letter symbol (e.g. Cl, Br) — otherwise it
                    // belongs to a following token such as H-count.
                    let mut two = sym.clone();
                    two.push(l as char);
                    if Element::from_symbol(&two).is_some() && two != "CH" {
                        sym = two;
                        self.bump();
                    }
                }
                Element::from_symbol(&sym)
                    .ok_or_else(|| self.err(format!("unknown element {sym:?}")))?
            }
            _ => return Err(self.err("expected element symbol in brackets")),
        };

        // Optional chirality (ignored).
        while self.peek() == Some(b'@') {
            self.bump();
        }

        // Optional explicit hydrogen count.
        let mut explicit_h = Some(0u8);
        if self.peek() == Some(b'H') {
            self.bump();
            let mut count = 1u8;
            if let Some(d) = self.peek().filter(u8::is_ascii_digit) {
                self.bump();
                count = d - b'0';
            }
            explicit_h = Some(count);
        }

        // Optional charge: +, -, ++, --, +2, -3.
        let mut charge: i8 = 0;
        if let Some(sign @ (b'+' | b'-')) = self.peek() {
            self.bump();
            let unit: i8 = if sign == b'+' { 1 } else { -1 };
            charge = unit;
            if let Some(d) = self.peek().filter(u8::is_ascii_digit) {
                self.bump();
                charge = unit * (d - b'0') as i8;
            } else {
                while self.peek() == Some(sign) {
                    self.bump();
                    charge += unit;
                }
            }
        }

        if self.bump() != Some(b']') {
            return Err(self.err("expected ']'"));
        }
        Ok(Atom {
            element,
            aromatic,
            charge,
            explicit_h,
        })
    }
}

/// Default bond between two atoms when no symbol is written: aromatic
/// if both ends are aromatic, otherwise single.
fn default_bond(mol: &Molecule, a: u32, b: u32) -> BondOrder {
    let atoms = mol.atoms();
    if atoms[a as usize].aromatic && atoms[b as usize].aromatic {
        BondOrder::Aromatic
    } else {
        BondOrder::Single
    }
}

/// Serialize a molecule to SMILES.
///
/// Output is deterministic (DFS from the lowest atom index of each
/// component) but not canonical across different atom orderings of the
/// same molecule — for that, see
/// [`crate::canonical::canonical_smiles`].
pub fn write_smiles(mol: &Molecule) -> String {
    let identity: Vec<u32> = (0..mol.atom_count() as u32).collect();
    write_smiles_ordered(mol, &identity)
}

/// Serialize with an explicit atom priority: the DFS starts at the
/// lowest-priority atom of each component and visits neighbors in
/// priority order, so equal molecules with equal priorities produce
/// identical text. Ring-closure numbers are assigned in traversal
/// order. `priority.len()` must equal the atom count.
pub fn write_smiles_ordered(mol: &Molecule, priority: &[u32]) -> String {
    let n = mol.atom_count();
    assert_eq!(priority.len(), n, "priority arity mismatch");
    let mut out = String::with_capacity(n * 2);
    let mut visited = vec![false; n];

    // Spanning tree chosen by the same priority-driven DFS that will
    // write the text; non-tree bonds become ring closures, numbered in
    // traversal order.
    let mut tree_bond = vec![false; mol.bond_count()];
    let mut closure_of_bond: std::collections::HashMap<u32, u16> = std::collections::HashMap::new();
    {
        // Recursive DFS mirroring the writer's order.
        fn span(
            mol: &Molecule,
            v: u32,
            priority: &[u32],
            seen: &mut [bool],
            tree_bond: &mut [bool],
            closures: &mut std::collections::HashMap<u32, u16>,
            next_num: &mut u16,
        ) {
            seen[v as usize] = true;
            let mut neigh: Vec<(u32, u32)> = mol.neighbors(v).to_vec();
            neigh.sort_by_key(|&(to, _)| priority[to as usize]);
            for (to, bond) in neigh {
                if seen[to as usize] {
                    // Every non-tree edge to a seen vertex is a
                    // back edge in an undirected DFS: a ring bond.
                    if !tree_bond[bond as usize] && !closures.contains_key(&bond) {
                        closures.insert(bond, *next_num);
                        *next_num += 1;
                    }
                    continue;
                }
                tree_bond[bond as usize] = true;
                span(mol, to, priority, seen, tree_bond, closures, next_num);
            }
        }

        let mut seen = vec![false; n];
        let mut next_num = 1u16;
        let mut roots: Vec<u32> = (0..n as u32).collect();
        roots.sort_by_key(|&a| priority[a as usize]);
        for &start in &roots {
            if seen[start as usize] {
                continue;
            }
            span(
                mol,
                start,
                priority,
                &mut seen,
                &mut tree_bond,
                &mut closure_of_bond,
                &mut next_num,
            );
        }
    }

    let mut first_component = true;
    let mut roots: Vec<u32> = (0..n as u32).collect();
    roots.sort_by_key(|&a| priority[a as usize]);
    for &start in &roots {
        if visited[start as usize] {
            continue;
        }
        if !first_component {
            out.push('.');
        }
        first_component = false;
        write_atom_dfs(
            mol,
            start,
            None,
            priority,
            &mut visited,
            &closure_of_bond,
            &mut out,
        );
    }
    out
}

fn write_atom_dfs(
    mol: &Molecule,
    v: u32,
    in_bond: Option<u32>,
    priority: &[u32],
    visited: &mut [bool],
    closures: &std::collections::HashMap<u32, u16>,
    out: &mut String,
) {
    visited[v as usize] = true;
    write_atom_token(mol, v, out);

    // Ring closure digits attach directly after the atom, in numeric
    // order so both endpoints print them identically.
    let mut ring_bonds: Vec<(u16, u32)> = mol
        .neighbors(v)
        .iter()
        .filter_map(|&(_, bond)| closures.get(&bond).map(|&num| (num, bond)))
        .collect();
    ring_bonds.sort_unstable();
    for (num, bond) in ring_bonds {
        write_bond_symbol_if_needed(mol, bond, out);
        if num >= 10 {
            out.push('%');
        }
        out.push_str(&num.to_string());
    }

    // Recurse into unvisited tree neighbors in priority order; all but
    // the last go in branches.
    let mut next: Vec<(u32, u32)> = mol
        .neighbors(v)
        .iter()
        .copied()
        .filter(|&(to, bond)| {
            Some(bond) != in_bond && !visited[to as usize] && !closures.contains_key(&bond)
        })
        .collect();
    next.sort_by_key(|&(to, _)| priority[to as usize]);
    for (i, &(to, bond)) in next.iter().enumerate() {
        if visited[to as usize] {
            continue; // may have been reached through an earlier branch
        }
        let is_last = i + 1 == next.len();
        if !is_last {
            out.push('(');
        }
        write_bond_symbol_if_needed(mol, bond, out);
        write_atom_dfs(mol, to, Some(bond), priority, visited, closures, out);
        if !is_last {
            out.push(')');
        }
    }
}

fn write_bond_symbol_if_needed(mol: &Molecule, bond: u32, out: &mut String) {
    let b = mol.bonds()[bond as usize];
    let implied = default_bond(mol, b.a, b.b);
    if b.order == implied {
        return;
    }
    out.push(match b.order {
        BondOrder::Single => '-',
        BondOrder::Double => '=',
        BondOrder::Triple => '#',
        BondOrder::Aromatic => ':',
    });
}

fn write_atom_token(mol: &Molecule, v: u32, out: &mut String) {
    let atom = &mol.atoms()[v as usize];
    let needs_bracket = atom.charge != 0
        || atom.explicit_h.is_some()
        || atom.element == Element::H
        || (atom.aromatic && !atom.element.supports_aromatic())
        || !atom.element.in_organic_subset();
    let symbol = if atom.aromatic {
        atom.element.symbol().to_ascii_lowercase()
    } else {
        atom.element.symbol().to_string()
    };
    if !needs_bracket {
        out.push_str(&symbol);
        return;
    }
    out.push('[');
    out.push_str(&symbol);
    if let Some(h) = atom.explicit_h {
        if h > 0 {
            out.push('H');
            if h > 1 {
                out.push_str(&h.to_string());
            }
        }
    }
    match atom.charge {
        0 => {}
        1 => out.push('+'),
        -1 => out.push('-'),
        c if c > 0 => out.push_str(&format!("+{c}")),
        c => out.push_str(&format!("-{}", -c)),
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_linear_alkane() {
        let m = parse_smiles("CCC").unwrap();
        assert_eq!(m.atom_count(), 3);
        assert_eq!(m.bond_count(), 2);
        assert_eq!(m.total_hydrogens(), 8);
    }

    #[test]
    fn parse_branches() {
        // Isobutane: central carbon with three methyls.
        let m = parse_smiles("CC(C)C").unwrap();
        assert_eq!(m.atom_count(), 4);
        assert_eq!(m.degree(1), 3);
        assert_eq!(m.total_hydrogens(), 10);
    }

    #[test]
    fn parse_benzene_ring() {
        let m = parse_smiles("c1ccccc1").unwrap();
        assert_eq!(m.atom_count(), 6);
        assert_eq!(m.bond_count(), 6);
        assert_eq!(m.ring_count(), 1);
        assert!(m.atoms().iter().all(|a| a.aromatic));
        assert_eq!(m.total_hydrogens(), 6);
        assert!(m.bonds().iter().all(|b| b.order == BondOrder::Aromatic));
    }

    #[test]
    fn parse_double_and_triple_bonds() {
        let m = parse_smiles("C=C").unwrap();
        assert_eq!(m.bonds()[0].order, BondOrder::Double);
        assert_eq!(m.total_hydrogens(), 4);
        let m = parse_smiles("C#N").unwrap();
        assert_eq!(m.bonds()[0].order, BondOrder::Triple);
        assert_eq!(m.total_hydrogens(), 1);
    }

    #[test]
    fn parse_brackets() {
        let m = parse_smiles("[NH4+]").unwrap();
        let a = &m.atoms()[0];
        assert_eq!(a.element, Element::N);
        assert_eq!(a.charge, 1);
        assert_eq!(a.explicit_h, Some(4));

        let m = parse_smiles("[O-]").unwrap();
        assert_eq!(m.atoms()[0].charge, -1);
        assert_eq!(m.hydrogens(0), 0);

        let m = parse_smiles("[13CH4]").unwrap();
        assert_eq!(m.atoms()[0].element, Element::C);
        assert_eq!(m.hydrogens(0), 4);

        let m = parse_smiles("[Fe]");
        assert!(m.is_err(), "unsupported element must be rejected");
    }

    #[test]
    fn parse_aromatic_nitrogen_with_h() {
        // Pyrrole nitrogen.
        let m = parse_smiles("c1cc[nH]c1").unwrap();
        assert_eq!(m.atom_count(), 5);
        let n = m
            .atoms()
            .iter()
            .position(|a| a.element == Element::N)
            .unwrap();
        assert_eq!(m.hydrogens(n as u32), 1);
        assert!(m.atoms()[n].aromatic);
    }

    #[test]
    fn parse_two_letter_organic() {
        let m = parse_smiles("ClCBr").unwrap();
        assert_eq!(m.atoms()[0].element, Element::Cl);
        assert_eq!(m.atoms()[2].element, Element::Br);
        assert_eq!(m.total_hydrogens(), 2);
    }

    #[test]
    fn parse_components() {
        let m = parse_smiles("C.C").unwrap();
        assert_eq!(m.component_count(), 2);
        assert_eq!(m.bond_count(), 0);
    }

    #[test]
    fn parse_percent_ring_closure() {
        let a = parse_smiles("C%12CCCCC%12").unwrap();
        let b = parse_smiles("C1CCCCC1").unwrap();
        assert_eq!(a.ring_count(), b.ring_count());
        assert_eq!(a.bond_count(), b.bond_count());
    }

    #[test]
    fn parse_double_bond_ring_closure() {
        // Cyclohexene written with the double bond at the closure.
        let m = parse_smiles("C=1CCCCC=1").unwrap();
        assert_eq!(
            m.bonds()
                .iter()
                .filter(|b| b.order == BondOrder::Double)
                .count(),
            1
        );
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "C(",
            "C)",
            "C1CC",
            "(C)",
            "C=",
            "[C",
            "[]",
            "C..C",
            "1CC",
            "%C",
            "C%1C",
            "C=1CCCCC#1",
        ] {
            assert!(parse_smiles(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn caffeine_parses() {
        let m = parse_smiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C").unwrap();
        assert_eq!(m.atom_count(), 14);
        assert_eq!(m.ring_count(), 2);
        let n_count = m.atoms().iter().filter(|a| a.element == Element::N).count();
        assert_eq!(n_count, 4);
        let o_count = m.atoms().iter().filter(|a| a.element == Element::O).count();
        assert_eq!(o_count, 2);
    }

    #[test]
    fn aspirin_parses() {
        let m = parse_smiles("CC(=O)Oc1ccccc1C(=O)O").unwrap();
        assert_eq!(m.atom_count(), 13);
        assert_eq!(m.ring_count(), 1);
    }

    fn assert_roundtrip(smiles: &str) {
        let m1 = parse_smiles(smiles).unwrap();
        let rendered = write_smiles(&m1);
        let m2 = parse_smiles(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} (from {smiles:?}): {e}"));
        assert_eq!(m1.atom_count(), m2.atom_count(), "{smiles} -> {rendered}");
        assert_eq!(m1.bond_count(), m2.bond_count(), "{smiles} -> {rendered}");
        assert_eq!(m1.ring_count(), m2.ring_count(), "{smiles} -> {rendered}");
        assert_eq!(
            m1.total_hydrogens(),
            m2.total_hydrogens(),
            "{smiles} -> {rendered}"
        );
        // Writer output must be a fixed point.
        assert_eq!(write_smiles(&m2), rendered);
    }

    #[test]
    fn write_roundtrips() {
        for s in [
            "CCC",
            "CC(C)C",
            "c1ccccc1",
            "Cn1cnc2c1c(=O)n(C)c(=O)n2C",
            "CC(=O)Oc1ccccc1C(=O)O",
            "[NH4+].[O-]C=O",
            "C#N",
            "C1CC1C2CC2",
            "ClC(Br)I",
            "c1ccc2ccccc2c1",
        ] {
            assert_roundtrip(s);
        }
    }

    #[test]
    fn biphenyl_single_bond_between_aromatic_rings() {
        let m = parse_smiles("c1ccccc1-c1ccccc1").unwrap();
        let singles = m
            .bonds()
            .iter()
            .filter(|b| b.order == BondOrder::Single)
            .count();
        assert_eq!(singles, 1);
        // The writer must re-emit the explicit single bond.
        assert_roundtrip("c1ccccc1-c1ccccc1");
    }
}
