//! Chemical elements covered by the SMILES organic subset (plus the
//! halogens and a few common hetero-atoms appearing in drug-like
//! molecules).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Elements supported by the ligand model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // element symbols are self-describing
pub enum Element {
    H,
    B,
    C,
    N,
    O,
    F,
    P,
    S,
    Cl,
    Br,
    I,
}

impl Element {
    /// Standard atomic weight (g/mol), rounded to 3 decimals.
    pub fn atomic_mass(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::B => 10.811,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::F => 18.998,
            Element::P => 30.974,
            Element::S => 32.06,
            Element::Cl => 35.45,
            Element::Br => 79.904,
            Element::I => 126.904,
        }
    }

    /// Default valence used for implicit-hydrogen computation
    /// (the SMILES "normal valence" of the organic subset).
    pub fn default_valence(self) -> u8 {
        match self {
            Element::H => 1,
            Element::B => 3,
            Element::C => 4,
            Element::N => 3,
            Element::O => 2,
            Element::F => 1,
            Element::P => 3,
            Element::S => 2,
            Element::Cl => 1,
            Element::Br => 1,
            Element::I => 1,
        }
    }

    /// True when the element may be written bare (outside brackets) in
    /// SMILES — the "organic subset".
    pub fn in_organic_subset(self) -> bool {
        !matches!(self, Element::H)
    }

    /// True when the element can be aromatic in the supported dialect.
    pub fn supports_aromatic(self) -> bool {
        matches!(
            self,
            Element::B | Element::C | Element::N | Element::O | Element::P | Element::S
        )
    }

    /// Element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::B => "B",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::F => "F",
            Element::P => "P",
            Element::S => "S",
            Element::Cl => "Cl",
            Element::Br => "Br",
            Element::I => "I",
        }
    }

    /// Parse a symbol (case-sensitive, as in SMILES brackets).
    pub fn from_symbol(s: &str) -> Option<Element> {
        Some(match s {
            "H" => Element::H,
            "B" => Element::B,
            "C" => Element::C,
            "N" => Element::N,
            "O" => Element::O,
            "F" => Element::F,
            "P" => Element::P,
            "S" => Element::S,
            "Cl" => Element::Cl,
            "Br" => Element::Br,
            "I" => Element::I,
            _ => return None,
        })
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Element; 11] = [
        Element::H,
        Element::B,
        Element::C,
        Element::N,
        Element::O,
        Element::F,
        Element::P,
        Element::S,
        Element::Cl,
        Element::Br,
        Element::I,
    ];

    #[test]
    fn symbol_roundtrip() {
        for e in ALL {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
        assert_eq!(Element::from_symbol("Xx"), None);
        assert_eq!(Element::from_symbol("c"), None); // aromatic handled by parser
    }

    #[test]
    fn masses_are_positive_and_ordered_sanely() {
        for e in ALL {
            assert!(e.atomic_mass() > 0.0);
        }
        assert!(Element::I.atomic_mass() > Element::C.atomic_mass());
        assert!((Element::C.atomic_mass() - 12.011).abs() < 1e-9);
    }

    #[test]
    fn valences() {
        assert_eq!(Element::C.default_valence(), 4);
        assert_eq!(Element::N.default_valence(), 3);
        assert_eq!(Element::O.default_valence(), 2);
        assert_eq!(Element::Cl.default_valence(), 1);
    }

    #[test]
    fn aromatic_support() {
        assert!(Element::C.supports_aromatic());
        assert!(Element::N.supports_aromatic());
        assert!(!Element::Cl.supports_aromatic());
        assert!(!Element::H.supports_aromatic());
    }
}
