//! Binding/assay activity records.
//!
//! DrugTree's overlay attaches per-(protein, ligand) activity
//! measurements to tree leaves; these are the records users filter and
//! rank ("Ki < 100 nM", "pActivity >= 6.5", "top 10 by potency").

use crate::{ChemError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Measured activity type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ActivityType {
    /// Inhibition constant.
    Ki,
    /// Dissociation constant.
    Kd,
    /// Half-maximal inhibitory concentration.
    Ic50,
    /// Half-maximal effective concentration.
    Ec50,
}

impl ActivityType {
    /// All variants.
    pub const ALL: [ActivityType; 4] = [
        ActivityType::Ki,
        ActivityType::Kd,
        ActivityType::Ic50,
        ActivityType::Ec50,
    ];

    /// Short label as printed in result tables.
    pub fn label(self) -> &'static str {
        match self {
            ActivityType::Ki => "Ki",
            ActivityType::Kd => "Kd",
            ActivityType::Ic50 => "IC50",
            ActivityType::Ec50 => "EC50",
        }
    }

    /// Parse a label (case-insensitive).
    pub fn parse(s: &str) -> Option<ActivityType> {
        match s.to_ascii_uppercase().as_str() {
            "KI" => Some(ActivityType::Ki),
            "KD" => Some(ActivityType::Kd),
            "IC50" => Some(ActivityType::Ic50),
            "EC50" => Some(ActivityType::Ec50),
            _ => None,
        }
    }
}

impl fmt::Display for ActivityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One activity measurement of a ligand against a protein target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRecord {
    /// Protein accession the assay targeted.
    pub protein_accession: String,
    /// Ligand identifier in the originating database.
    pub ligand_id: String,
    /// Measurement type.
    pub activity_type: ActivityType,
    /// Measured value in nanomolar.
    pub value_nm: f64,
    /// Originating source name (for provenance/conflict resolution).
    pub source: String,
    /// Publication/deposition year (for recency-based conflict
    /// resolution).
    pub year: u16,
}

impl ActivityRecord {
    /// Validate the measured value.
    pub fn validate(&self) -> Result<()> {
        if !(self.value_nm.is_finite() && self.value_nm > 0.0) {
            return Err(ChemError::InvalidActivity(format!(
                "activity value must be positive and finite, got {}",
                self.value_nm
            )));
        }
        Ok(())
    }

    /// Negative log10 of the molar activity — the `pActivity`
    /// (pKi/pIC50/…) scale where *larger means more potent*.
    pub fn p_activity(&self) -> f64 {
        // value_nm nanomolar -> molar is value * 1e-9.
        -(self.value_nm * 1e-9).log10()
    }
}

/// Convert a value in the given unit to nanomolar.
pub fn to_nanomolar(value: f64, unit: &str) -> Result<f64> {
    let factor = match unit.trim() {
        "M" | "mol/L" => 1e9,
        "mM" => 1e6,
        "uM" | "µM" | "um" => 1e3,
        "nM" | "nm" => 1.0,
        "pM" | "pm" => 1e-3,
        other => {
            return Err(ChemError::InvalidActivity(format!(
                "unknown unit {other:?}"
            )))
        }
    };
    let nm = value * factor;
    if !(nm.is_finite() && nm > 0.0) {
        return Err(ChemError::InvalidActivity(format!(
            "non-positive activity {value} {unit}"
        )));
    }
    Ok(nm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(value_nm: f64) -> ActivityRecord {
        ActivityRecord {
            protein_accession: "P00001".into(),
            ligand_id: "L1".into(),
            activity_type: ActivityType::Ki,
            value_nm,
            source: "assaydb".into(),
            year: 2012,
        }
    }

    #[test]
    fn p_activity_scale() {
        // 1 µM = 1000 nM -> pActivity 6; 1 nM -> 9.
        assert!((record(1000.0).p_activity() - 6.0).abs() < 1e-9);
        assert!((record(1.0).p_activity() - 9.0).abs() < 1e-9);
        // More potent (smaller Ki) -> larger pActivity.
        assert!(record(1.0).p_activity() > record(1000.0).p_activity());
    }

    #[test]
    fn validation() {
        assert!(record(5.0).validate().is_ok());
        assert!(record(0.0).validate().is_err());
        assert!(record(-1.0).validate().is_err());
        assert!(record(f64::NAN).validate().is_err());
        assert!(record(f64::INFINITY).validate().is_err());
    }

    #[test]
    fn unit_conversion() {
        assert_eq!(to_nanomolar(1.0, "nM").unwrap(), 1.0);
        assert_eq!(to_nanomolar(1.0, "uM").unwrap(), 1000.0);
        assert_eq!(to_nanomolar(2.0, "mM").unwrap(), 2e6);
        assert_eq!(to_nanomolar(1.0, "M").unwrap(), 1e9);
        assert_eq!(to_nanomolar(500.0, "pM").unwrap(), 0.5);
        assert!(to_nanomolar(1.0, "furlongs").is_err());
        assert!(to_nanomolar(-1.0, "nM").is_err());
        assert!(to_nanomolar(0.0, "nM").is_err());
    }

    #[test]
    fn activity_type_roundtrip() {
        for t in ActivityType::ALL {
            assert_eq!(ActivityType::parse(t.label()), Some(t));
        }
        assert_eq!(ActivityType::parse("ki"), Some(ActivityType::Ki));
        assert_eq!(ActivityType::parse("bogus"), None);
    }
}
