//! Canonical atom ranking and canonical SMILES.
//!
//! The federation problem in miniature: two sources describe the same
//! compound with differently-written SMILES. Canonicalization gives
//! every molecule a unique text form so ligand identity survives
//! integration. The algorithm is the classic Morgan/invariant-
//! refinement scheme: start from local atom invariants, iteratively
//! refine by neighbor rank multisets, and break remaining ties
//! deterministically; the canonical SMILES is then written by a DFS
//! that always prefers the lowest-ranked atom.

use crate::mol::{BondOrder, Molecule};
use crate::smiles::write_smiles_ordered;

/// Canonical ranks (0-based, dense) for every atom.
///
/// Equal ranks are possible only for atoms in genuinely symmetric
/// positions *after* tie-breaking has split every class — i.e. never:
/// the result is a permutation.
pub fn canonical_ranks(mol: &Molecule) -> Vec<u32> {
    let n = mol.atom_count();
    if n == 0 {
        return Vec::new();
    }

    // Initial invariant per atom: (element, aromatic, charge, degree,
    // H count, ring membership).
    let ring_atoms = mol.ring_atoms();
    let mut classes: Vec<u64> = (0..n as u32)
        .map(|i| {
            let a = &mol.atoms()[i as usize];
            let mut inv: u64 = a.element as u64;
            inv = inv << 1 | u64::from(a.aromatic);
            inv = inv << 8 | (a.charge as i16 as u16 as u64 & 0xFF);
            inv = inv << 4 | mol.degree(i) as u64;
            inv = inv << 4 | mol.hydrogens(i) as u64;
            inv = inv << 1 | u64::from(ring_atoms[i as usize]);
            inv
        })
        .collect();
    classes = densify(&classes);

    // Iterative refinement: a round recomputes each atom's class from
    // (own class, sorted multiset of (bond order, neighbor class)).
    loop {
        let mut next: Vec<u64> = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let mut neigh: Vec<(u8, u64)> = mol
                .neighbors(i)
                .iter()
                .map(|&(to, b)| {
                    (
                        match mol.bonds()[b as usize].order {
                            BondOrder::Single => 1u8,
                            BondOrder::Double => 2,
                            BondOrder::Triple => 3,
                            BondOrder::Aromatic => 4,
                        },
                        classes[to as usize],
                    )
                })
                .collect();
            neigh.sort_unstable();
            let mut h: u64 = classes[i as usize].wrapping_mul(0x100000001B3);
            for (order, class) in neigh {
                h = h
                    .rotate_left(7)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((order as u64) << 56 | class);
            }
            next.push(h);
        }
        let refined = densify(&next);
        let old_count = count_classes(&classes);
        let new_count = count_classes(&refined);
        // Refinement may relabel classes even when their count is
        // stable; compare by partition coarseness, not labels.
        if new_count == old_count && same_partition(&classes, &refined) {
            break;
        }
        classes = refined;
    }

    // Tie-breaking: while any class holds more than one atom, single
    // out its lowest-index member and re-refine. Deterministic, and
    // each pass strictly increases the class count, so it terminates.
    while count_classes(&classes) < n {
        let mut by_class: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
        for (i, &c) in classes.iter().enumerate() {
            by_class.entry(c).or_default().push(i as u32);
        }
        // The while condition guarantees a duplicated class; bail out
        // rather than panic if that invariant ever breaks.
        let Some(victim) = by_class
            .values()
            .find(|members| members.len() > 1)
            .map(|members| members[0])
        else {
            break;
        };
        // Give the victim a fresh, smaller-than-everything class and
        // re-refine to propagate the asymmetry.
        let max = classes.iter().copied().max().unwrap_or(0) + 1;
        classes[victim as usize] = max;
        classes = densify(&classes);
        loop {
            let mut next: Vec<u64> = Vec::with_capacity(n);
            for i in 0..n as u32 {
                let mut neigh: Vec<u64> = mol
                    .neighbors(i)
                    .iter()
                    .map(|&(to, _)| classes[to as usize])
                    .collect();
                neigh.sort_unstable();
                let mut h: u64 = classes[i as usize].wrapping_mul(0x100000001B3);
                for class in neigh {
                    h = h
                        .rotate_left(9)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(class);
                }
                next.push(h);
            }
            let refined = densify(&next);
            if same_partition(&classes, &refined) {
                break;
            }
            classes = refined;
        }
    }

    classes.iter().map(|&c| c as u32).collect()
}

/// Map arbitrary class values onto dense 0..k ranks (order-preserving).
fn densify(classes: &[u64]) -> Vec<u64> {
    let mut sorted: Vec<u64> = classes.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    classes
        .iter()
        // Every class is in its own sorted dedup, so Err is
        // unreachable; the insert position keeps the map total anyway.
        .map(|c| match sorted.binary_search(c) {
            Ok(i) | Err(i) => i as u64,
        })
        .collect()
}

fn count_classes(classes: &[u64]) -> usize {
    let mut sorted: Vec<u64> = classes.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Do two labelings induce the same partition of atoms?
fn same_partition(a: &[u64], b: &[u64]) -> bool {
    let mut map_ab = std::collections::HashMap::new();
    let mut map_ba = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *map_ab.entry(x).or_insert(y) != y || *map_ba.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

/// A canonical SMILES: identical for any atom ordering of the same
/// molecule.
pub fn canonical_smiles(mol: &Molecule) -> String {
    let ranks = canonical_ranks(mol);
    write_smiles_ordered(mol, &ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mol::{Atom, Molecule};
    use crate::smiles::parse_smiles;

    /// Rebuild a molecule with its atoms permuted.
    fn permute(mol: &Molecule, perm: &[u32]) -> Molecule {
        // perm[old] = new position.
        let mut out = Molecule::new();
        let mut order: Vec<u32> = (0..mol.atom_count() as u32).collect();
        order.sort_by_key(|&old| perm[old as usize]);
        let mut new_index = vec![0u32; mol.atom_count()];
        for &old in &order {
            new_index[old as usize] = out.add_atom(mol.atoms()[old as usize]);
        }
        let mut bonds: Vec<_> = mol.bonds().to_vec();
        bonds.sort_by_key(|b| (perm[b.a as usize], perm[b.b as usize]));
        for b in bonds {
            out.add_bond(new_index[b.a as usize], new_index[b.b as usize], b.order)
                .expect("permutation preserves validity");
        }
        out
    }

    fn rotations(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|shift| (0..n).map(|i| ((i + shift) % n) as u32).collect())
            .collect()
    }

    #[test]
    fn ranks_are_a_permutation() {
        for s in ["CCO", "c1ccccc1", "CC(=O)Oc1ccccc1C(=O)O", "C", "CC(C)(C)C"] {
            let mol = parse_smiles(s).unwrap();
            let mut ranks = canonical_ranks(&mol);
            ranks.sort_unstable();
            let expected: Vec<u32> = (0..mol.atom_count() as u32).collect();
            assert_eq!(ranks, expected, "{s}");
        }
    }

    #[test]
    fn canonical_form_is_order_invariant() {
        for s in [
            "CCO",
            "c1ccccc1",
            "CC(=O)Oc1ccccc1C(=O)O",
            "Cn1cnc2c1c(=O)n(C)c(=O)n2C",
            "CC(C)CC1CC1",
            "[NH4+].[O-]C=O",
        ] {
            let mol = parse_smiles(s).unwrap();
            let reference = canonical_smiles(&mol);
            for perm in rotations(mol.atom_count()) {
                let shuffled = permute(&mol, &perm);
                assert_eq!(
                    canonical_smiles(&shuffled),
                    reference,
                    "{s} under rotation {perm:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_form_roundtrips() {
        for s in ["CCO", "c1ccccc1", "CC(=O)Oc1ccccc1C(=O)O"] {
            let mol = parse_smiles(s).unwrap();
            let canon = canonical_smiles(&mol);
            let back = parse_smiles(&canon).unwrap();
            assert_eq!(canonical_smiles(&back), canon, "{s} -> {canon}");
            assert_eq!(back.atom_count(), mol.atom_count());
            assert_eq!(back.bond_count(), mol.bond_count());
        }
    }

    #[test]
    fn different_molecules_differ() {
        let a = canonical_smiles(&parse_smiles("CCO").unwrap());
        let b = canonical_smiles(&parse_smiles("CCN").unwrap());
        let c = canonical_smiles(&parse_smiles("COC").unwrap());
        assert_ne!(a, b);
        assert_ne!(a, c, "ethanol vs dimethyl ether (same formula)");
    }

    #[test]
    fn alternative_writings_converge() {
        // The same compound written three ways.
        let forms = ["OCC", "CCO", "C(O)C"];
        let canon: Vec<String> = forms
            .iter()
            .map(|s| canonical_smiles(&parse_smiles(s).unwrap()))
            .collect();
        assert_eq!(canon[0], canon[1]);
        assert_eq!(canon[1], canon[2]);
        // Benzene from different ring-closure spellings.
        let b1 = canonical_smiles(&parse_smiles("c1ccccc1").unwrap());
        let b2 = canonical_smiles(&parse_smiles("c1ccc(cc1)").unwrap());
        assert_eq!(b1, b2);
    }

    #[test]
    fn empty_molecule() {
        let m = Molecule::new();
        assert!(canonical_ranks(&m).is_empty());
        assert_eq!(canonical_smiles(&m), "");
        let mut single = Molecule::new();
        single.add_atom(Atom::new(crate::element::Element::C));
        assert_eq!(canonical_smiles(&single), "C");
    }
}
