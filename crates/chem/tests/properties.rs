//! Property-based tests for the chemistry substrate.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_chem::canonical::canonical_smiles;
use drugtree_chem::descriptors::Descriptors;
use drugtree_chem::element::Element;
use drugtree_chem::fingerprint::Fingerprint;
use drugtree_chem::mol::{Atom, BondOrder, Molecule};
use drugtree_chem::similarity::{dice, tanimoto, tanimoto_upper_bound};
use drugtree_chem::smiles::{parse_smiles, write_smiles};
use proptest::prelude::*;

/// Strategy: a random connected molecule built as a tree with optional
/// extra ring-closing bonds.
fn arb_molecule() -> impl Strategy<Value = Molecule> {
    let element = prop_oneof![
        Just(Element::C),
        Just(Element::N),
        Just(Element::O),
        Just(Element::S),
        Just(Element::F),
        Just(Element::Cl),
    ];
    let order = prop_oneof![
        4 => Just(BondOrder::Single),
        1 => Just(BondOrder::Double),
    ];
    (
        proptest::collection::vec((element, any::<u32>(), order), 1..20),
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..4),
    )
        .prop_map(|(atom_specs, extra_edges)| {
            let mut mol = Molecule::new();
            for (i, (el, attach, ord)) in atom_specs.into_iter().enumerate() {
                let idx = mol.add_atom(Atom::new(el));
                if i > 0 {
                    let parent = attach % idx;
                    // Preserve a valid valence budget: only bond single
                    // unless the parent has room; keep it simple with
                    // singles for N/O.
                    let order = if el == Element::C {
                        ord
                    } else {
                        BondOrder::Single
                    };
                    let _ = mol.add_bond(parent, idx, order);
                }
            }
            // Extra ring-closing single bonds (ignored when invalid).
            let n = mol.atom_count() as u32;
            for (a, b) in extra_edges {
                if n >= 2 {
                    let _ = mol.add_bond(a % n, b % n, BondOrder::Single);
                }
            }
            mol
        })
}

proptest! {
    #[test]
    fn smiles_write_parse_preserves_graph(mol in arb_molecule()) {
        let text = write_smiles(&mol);
        let back = parse_smiles(&text).unwrap();
        prop_assert_eq!(back.atom_count(), mol.atom_count(), "{}", text);
        prop_assert_eq!(back.bond_count(), mol.bond_count(), "{}", text);
        prop_assert_eq!(back.ring_count(), mol.ring_count(), "{}", text);
        prop_assert_eq!(back.component_count(), mol.component_count(), "{}", text);
        // Element multiset must match.
        let mut e1: Vec<Element> = mol.atoms().iter().map(|a| a.element).collect();
        let mut e2: Vec<Element> = back.atoms().iter().map(|a| a.element).collect();
        e1.sort();
        e2.sort();
        prop_assert_eq!(e1, e2);
        // After one round-trip the atom numbering follows text order, so
        // a second round-trip must be a fixed point.
        let text2 = write_smiles(&back);
        let back2 = parse_smiles(&text2).unwrap();
        prop_assert_eq!(write_smiles(&back2), text2);
        prop_assert_eq!(back2.atom_count(), mol.atom_count());
        prop_assert_eq!(back2.bond_count(), mol.bond_count());
    }

    #[test]
    fn fingerprint_is_atom_order_invariant_for_paths(mol in arb_molecule()) {
        // The same molecule fingerprinted twice must be identical
        // (determinism), and similarity with itself must be exactly 1.
        let a = Fingerprint::of_molecule(&mol);
        let b = Fingerprint::of_molecule(&mol);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(tanimoto(&a, &b), 1.0);
    }

    #[test]
    fn similarity_bounds(m1 in arb_molecule(), m2 in arb_molecule()) {
        let a = Fingerprint::of_molecule(&m1);
        let b = Fingerprint::of_molecule(&m2);
        let t = tanimoto(&a, &b);
        let d = dice(&a, &b);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!(d + 1e-12 >= t, "dice {d} < tanimoto {t}");
        prop_assert_eq!(t, tanimoto(&b, &a));
        let bound = tanimoto_upper_bound(a.popcount(), b.popcount());
        prop_assert!(t <= bound + 1e-12);
    }

    #[test]
    fn descriptors_are_sane(mol in arb_molecule()) {
        let d = Descriptors::compute(&mol);
        prop_assert!(d.molecular_weight > 0.0);
        prop_assert_eq!(d.heavy_atoms as usize, mol.atom_count());
        prop_assert!(d.hbd <= d.hba, "donors {} exceed acceptors {}", d.hbd, d.hba);
        prop_assert!((d.rotatable_bonds as usize) <= mol.bond_count());
        prop_assert_eq!(d.rings as usize, mol.ring_count());
    }

    #[test]
    fn canonical_smiles_is_permutation_invariant(
        mol in arb_molecule(),
        shift in 0usize..16,
    ) {
        // Rotate the atom order and rebuild; the canonical form must
        // not move.
        let n = mol.atom_count();
        let mut rebuilt = Molecule::new();
        let mut new_index = vec![0u32; n];
        for i in 0..n {
            let old = (i + shift) % n;
            new_index[old] = rebuilt.add_atom(mol.atoms()[old]);
        }
        for b in mol.bonds() {
            rebuilt
                .add_bond(new_index[b.a as usize], new_index[b.b as usize], b.order)
                .expect("rotation preserves validity");
        }
        prop_assert_eq!(canonical_smiles(&rebuilt), canonical_smiles(&mol));
        // And the canonical form re-parses to the same canonical form.
        let canon = canonical_smiles(&mol);
        let back = parse_smiles(&canon).unwrap();
        prop_assert_eq!(canonical_smiles(&back), canon);
    }

    #[test]
    fn smiles_parser_never_panics(text in "\\PC{0,60}") {
        let _ = parse_smiles(&text);
    }

    #[test]
    fn hydrogens_never_negative_or_huge(mol in arb_molecule()) {
        for i in 0..mol.atom_count() as u32 {
            let h = mol.hydrogens(i);
            prop_assert!(h <= 4, "atom {i} reports {h} hydrogens");
        }
    }
}
