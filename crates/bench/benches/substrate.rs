//! E9 (Table 4a): substrate micro-benchmarks — the CPU kernels behind
//! the virtual-latency experiments.

// Bench target over self-generated inputs: unwraps mark harness bugs.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use drugtree_chem::canonical::canonical_smiles;
use drugtree_chem::fingerprint::Fingerprint;
use drugtree_chem::similarity::tanimoto;
use drugtree_chem::smiles::{parse_smiles, write_smiles};
use drugtree_chem::substructure::{fingerprint_prescreen, is_substructure};
use drugtree_phylo::align::{global_align, GapPenalty};
use drugtree_phylo::compare::robinson_foulds;
use drugtree_phylo::distance::{pairwise_distances, DistanceModel};
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::matrices::ScoringMatrix;
use drugtree_phylo::newick::{parse_newick, to_newick};
use drugtree_phylo::nj::neighbor_joining;
use drugtree_phylo::upgma::upgma;
use drugtree_workload::ligands::random_ligands;
use drugtree_workload::phylogeny::{evolve_sequences, random_tree};
use std::hint::black_box;

fn bench_alignment(c: &mut Criterion) {
    let tree = random_tree(2, 1);
    let seqs = evolve_sequences(&tree, 200, 1);
    let matrix = ScoringMatrix::blosum62();
    c.bench_function("align/needleman_wunsch_200x200", |b| {
        b.iter(|| {
            global_align(
                black_box(seqs[0].residues()),
                black_box(seqs[1].residues()),
                &matrix,
                GapPenalty::BLOSUM62_DEFAULT,
            )
            .unwrap()
        });
    });
}

fn bench_tree_construction(c: &mut Criterion) {
    let tree = random_tree(48, 2);
    let seqs = evolve_sequences(&tree, 60, 2);
    let dm = pairwise_distances(
        &seqs,
        &ScoringMatrix::blosum62(),
        GapPenalty::BLOSUM62_DEFAULT,
        DistanceModel::Poisson,
    )
    .unwrap();
    c.bench_function("tree/neighbor_joining_48_taxa", |b| {
        b.iter(|| neighbor_joining(black_box(&dm)).unwrap());
    });
    c.bench_function("tree/upgma_48_taxa", |b| {
        b.iter(|| upgma(black_box(&dm)).unwrap());
    });
}

fn bench_tree_index(c: &mut Criterion) {
    let tree = random_tree(1024, 3);
    c.bench_function("index/build_1024_leaves", |b| {
        b.iter(|| TreeIndex::build(black_box(&tree)));
    });
    let index = TreeIndex::build(&tree);
    let nodes: Vec<_> = tree.node_ids().collect();
    c.bench_function("index/lca_1024_leaves", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = nodes[i % nodes.len()];
            let z = nodes[(i * 7 + 13) % nodes.len()];
            i += 1;
            black_box(index.lca(a, z))
        });
    });
}

fn bench_newick(c: &mut Criterion) {
    let tree = random_tree(512, 4);
    let text = to_newick(&tree);
    c.bench_function("newick/parse_512_leaves", |b| {
        b.iter(|| parse_newick(black_box(&text)).unwrap());
    });
    c.bench_function("newick/write_512_leaves", |b| {
        b.iter(|| to_newick(black_box(&tree)));
    });
}

fn bench_chem(c: &mut Criterion) {
    let caffeine = "Cn1cnc2c1c(=O)n(C)c(=O)n2C";
    c.bench_function("smiles/parse_caffeine", |b| {
        b.iter(|| parse_smiles(black_box(caffeine)).unwrap());
    });
    let mol = parse_smiles(caffeine).unwrap();
    c.bench_function("smiles/write_caffeine", |b| {
        b.iter(|| write_smiles(black_box(&mol)));
    });
    c.bench_function("fingerprint/caffeine", |b| {
        b.iter(|| Fingerprint::of_molecule(black_box(&mol)));
    });

    let ligands = random_ligands(256, 5);
    let fps: Vec<Fingerprint> = ligands
        .iter()
        .map(|l| Fingerprint::of_molecule(&parse_smiles(&l.smiles).unwrap()))
        .collect();
    c.bench_function("similarity/tanimoto_256_candidates", |b| {
        b.iter_batched(
            || fps[0].clone(),
            |query| {
                let best = fps
                    .iter()
                    .map(|f| tanimoto(&query, f))
                    .fold(0.0f64, f64::max);
                black_box(best)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_substructure_and_canonical(c: &mut Criterion) {
    let ligands = random_ligands(128, 9);
    let mols: Vec<_> = ligands
        .iter()
        .map(|l| parse_smiles(&l.smiles).unwrap())
        .collect();
    let fps: Vec<Fingerprint> = mols.iter().map(Fingerprint::of_molecule).collect();
    let pattern = parse_smiles("CCO").unwrap();
    let pattern_fp = Fingerprint::of_molecule(&pattern);

    c.bench_function("substructure/screen_128_candidates", |b| {
        b.iter(|| {
            let hits = mols
                .iter()
                .zip(&fps)
                .filter(|(m, fp)| {
                    fingerprint_prescreen(&pattern_fp, fp) && is_substructure(&pattern, m)
                })
                .count();
            black_box(hits)
        });
    });
    c.bench_function("canonical/caffeine", |b| {
        let caffeine = parse_smiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C").unwrap();
        b.iter(|| canonical_smiles(black_box(&caffeine)));
    });
}

fn bench_tree_compare(c: &mut Criterion) {
    let a = random_tree(256, 11);
    let b_tree = random_tree(256, 12);
    c.bench_function("compare/robinson_foulds_256_leaves", |b| {
        b.iter(|| robinson_foulds(black_box(&a), black_box(&b_tree)).unwrap());
    });
}

criterion_group!(
    benches,
    bench_alignment,
    bench_tree_construction,
    bench_tree_index,
    bench_newick,
    bench_chem,
    bench_substructure_and_canonical,
    bench_tree_compare
);
criterion_main!(benches);
