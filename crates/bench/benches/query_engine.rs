//! E9 (Table 4b): query-engine micro-benchmarks — parsing, planning,
//! execution, caching, and the mobile render path.
//!
//! Source latency is virtual (never slept), so these numbers are pure
//! CPU cost: what the client/mediator itself burns per interaction.

// Bench target over self-generated inputs: unwraps mark harness bugs.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use drugtree::prelude::*;
use drugtree_mobile::layout::TreeLayout;
use drugtree_mobile::lod::render_visible;
use drugtree_mobile::viewport::Viewport;
use drugtree_query::matview::MaterializedAggregates;
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let text = "activities in subtree('clade12') where p_activity >= 6.5 and mw < 500 and year between 2005 and 2013 top 20 by p_activity desc";
    c.bench_function("parser/full_query", |b| {
        b.iter(|| Query::parse(black_box(text)).unwrap());
    });
}

fn bench_planning_and_execution(c: &mut Criterion) {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(512).ligands(64).seed(42));
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();
    let query = Query::parse("activities in subtree('clade1') where p_activity >= 6").unwrap();

    c.bench_function("optimizer/plan_512_leaves", |b| {
        b.iter(|| {
            system
                .explain(black_box(
                    "activities in subtree('clade1') where p_activity >= 6",
                ))
                .unwrap()
        });
    });

    // Warm the cache once; the hot path is then pure client CPU.
    system.execute(&query).unwrap();
    c.bench_function("executor/cache_hit_512_leaves", |b| {
        b.iter(|| system.execute(black_box(&query)).unwrap());
    });

    // Cold path: invalidate before each execution (timed together —
    // the invalidate itself is trivial).
    c.bench_function("executor/cold_fetch_512_leaves", |b| {
        b.iter(|| {
            system.executor().invalidate();
            system.execute(black_box(&query)).unwrap()
        });
    });
}

fn bench_matview(c: &mut Criterion) {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(1024).ligands(64).seed(43));
    let dataset = bundle.build_dataset();
    c.bench_function("matview/build_1024_leaves", |b| {
        b.iter(|| MaterializedAggregates::build(black_box(&dataset)).unwrap());
    });
}

fn bench_mobile_render(c: &mut Criterion) {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(8192).ligands(16).seed(44));
    let layout = TreeLayout::compute(&bundle.tree, &bundle.index);
    let viewport = Viewport::fullscreen(&layout);
    c.bench_function("mobile/lod_render_8192_leaves", |b| {
        b.iter(|| {
            render_visible(
                black_box(&bundle.tree),
                black_box(&bundle.index),
                &viewport,
                &layout,
            )
        });
    });
    c.bench_function("mobile/layout_8192_leaves", |b| {
        b.iter(|| TreeLayout::compute(black_box(&bundle.tree), black_box(&bundle.index)));
    });
}

criterion_group!(
    benches,
    bench_parser,
    bench_planning_and_execution,
    bench_matview,
    bench_mobile_render
);
criterion_main!(benches);
