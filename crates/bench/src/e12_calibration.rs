//! E12: cost-model calibration — planner estimate error before/after
//! online calibration, and plan-choice wins of the cost-based planner
//! over the fixed rule order.
//!
//! Setup: two assay replicas holding identical data with opposite cost
//! shapes — a "thin" endpoint (low RTT, expensive per row) and a "fat"
//! endpoint (high RTT, nearly free rows). The fixed heuristic scores
//! replicas at a nominal 100 rows and always picks the thin one; the
//! calibrated cost model learns both sources' true parameters from
//! observed fetch latencies and routes large scans to the fat replica.
//!
//! Paper-shape expectation: calibration cuts the mean relative
//! estimate error by well over 2x, and the cost-based planner beats
//! the fixed order on charged latency for scan-heavy query classes.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_integrate::overlay::OverlayBuilder;
use drugtree_phylo::index::TreeIndex;
use drugtree_query::Dataset;
use drugtree_sources::assay_db::assay_source;
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::source::SourceCapabilities;
use drugtree_workload::queries::{class_stream, QueryClass, QueryWorkloadConfig};
use std::sync::Arc;
use std::time::Duration;

/// CI regression ceiling: mean relative estimate error after
/// calibration must stay below this (the uncalibrated prior sits far
/// above it on the E12 fixture).
pub const CALIBRATED_ERROR_CEILING: f64 = 0.20;

/// A zero-jitter latency model so calibration fits exact parameters.
fn exact(base_rtt: Duration, per_row: Duration) -> LatencyModel {
    LatencyModel {
        base_rtt,
        per_row,
        per_row_scanned: Duration::ZERO,
        jitter: 0.0,
        seed: 0,
    }
}

/// The replica-tradeoff dataset: both replicas hold every activity.
/// "thin" wins the fixed heuristic (scored at a nominal 100 rows);
/// "fat" is truly cheaper for any scan beyond ~110 rows.
fn tradeoff_dataset(bundle: &SyntheticBundle) -> Dataset {
    let overlay = OverlayBuilder::new(&bundle.tree, &bundle.index)
        .build(&bundle.proteins, &bundle.ligands, &[])
        .expect("synthetic inputs are resolvable");
    let mut registry = SourceRegistry::new();
    let caps = SourceCapabilities::full();
    registry
        .register(Arc::new(
            assay_source(
                "assay-thin",
                &bundle.activities,
                caps,
                exact(Duration::from_millis(15), Duration::from_millis(1)),
            )
            .expect("valid records"),
        ))
        .expect("unique");
    registry
        .register(Arc::new(
            assay_source(
                "assay-fat",
                &bundle.activities,
                caps,
                exact(Duration::from_millis(120), Duration::from_micros(10)),
            )
            .expect("valid records"),
        ))
        .expect("unique");
    registry
        .declare_replicas(vec!["assay-thin".into(), "assay-fat".into()])
        .expect("members registered");
    let tree = bundle.tree.clone();
    let index = TreeIndex::build(&tree);
    Dataset::new(tree, index, overlay, registry, VirtualClock::new()).expect("dataset assembles")
}

/// Run E12.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, ligands, per_class) = if config.quick {
        (96, 32, 8)
    } else {
        (256, 64, 40)
    };
    let mut spec = WorkloadSpec::default()
        .leaves(leaves)
        .ligands(ligands)
        .seed(1212);
    // Dense overlay: the thin-vs-fat tradeoff only bites past the
    // ~106-row crossover, so large scans must ship hundreds of rows.
    spec.assay.hit_density = 3.0;
    spec.assay.off_target_rate = 0.05;
    let bundle = SyntheticBundle::generate(&spec);

    let stream = |class: QueryClass, len: usize, seed: u64| {
        class_stream(
            class,
            &bundle.tree,
            &bundle.index,
            &bundle.ligands,
            &QueryWorkloadConfig {
                len,
                seed,
                scope_theta: 0.8,
            },
        )
    };

    // --- Estimate error, before vs after calibration -----------------
    let system = DrugTree::builder()
        .dataset(tradeoff_dataset(&bundle))
        .with_cost_based_planner()
        .build()
        .expect("system builds");
    let warmup = stream(QueryClass::SubtreeListing, per_class * 2, 3);
    let probe = stream(QueryClass::SubtreeListing, per_class, 7);

    // Phase A: learning frozen — every estimate is priced off the
    // generic prior, so the accumulated error is the uncalibrated one.
    system.executor().cost_model().set_learning(false);
    for q in &warmup {
        system.executor().invalidate();
        system.execute(q).expect("query executes");
    }
    let err_before = system.calibration().mean_rel_error;

    // Phase B: learn from the same traffic, then measure the error of
    // fresh queries under the fitted per-source parameters.
    system.executor().cost_model().set_learning(true);
    for q in &warmup {
        system.executor().invalidate();
        system.execute(q).expect("query executes");
    }
    system.executor().cost_model().reset_errors();
    for q in &probe {
        system.executor().invalidate();
        system.execute(q).expect("query executes");
    }
    let after = system.calibration();
    let err_after = after.mean_rel_error;

    // --- Plan-choice wins: fixed order vs calibrated cost model ------
    let fixed = DrugTree::builder()
        .dataset(tradeoff_dataset(&bundle))
        .optimizer(OptimizerConfig::full())
        .build()
        .expect("system builds");

    let mut table = ExperimentTable::new(
        "E12",
        format!("cost-model calibration, {leaves} leaves, thin-vs-fat replica tradeoff"),
        vec!["metric", "fixed", "cost-based", "factor"],
    );
    table.row(vec![
        "mean relative estimate error (uncalibrated / calibrated)".into(),
        format!("{err_before:.3}"),
        format!("{err_after:.3}"),
        format!("{:.1}x", err_before / err_after.max(1e-9)),
    ]);

    for class in QueryClass::ALL {
        let queries = stream(class, per_class, 11);
        let charged = |s: &DrugTree| -> Duration {
            let latencies: Vec<Duration> = queries
                .iter()
                .map(|q| {
                    s.executor().invalidate();
                    s.execute(q).expect("query executes").metrics.charged_cost
                })
                .collect();
            mean(&latencies)
        };
        let fixed_mean = charged(&fixed);
        let cost_mean = charged(&system);
        table.row(vec![
            format!("{} mean charged latency", class.label()),
            fmt_ms(fixed_mean),
            fmt_ms(cost_mean),
            format!(
                "{:.2}x",
                fixed_mean.as_secs_f64() / cost_mean.as_secs_f64().max(1e-9)
            ),
        ]);
    }

    table.note(format!(
        "{} activity records; {} calibration observations; \
         thin replica 15ms RTT + 1ms/row, fat replica 120ms RTT + 10us/row; \
         fixed heuristic scores replicas at a nominal 100 rows",
        bundle.activities.len(),
        after.observations,
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles as the CI calibration-regression check: estimate error
    /// after calibration must stay under [`CALIBRATED_ERROR_CEILING`]
    /// and improve at least 2x over the uncalibrated prior, and the
    /// cost-based planner must win at least one query class outright.
    #[test]
    fn calibration_cuts_error_and_wins_a_class() {
        let t = run(RunConfig { quick: true });
        let err_row = t
            .rows
            .iter()
            .find(|r| r[0].contains("estimate error"))
            .expect("error row present");
        let before: f64 = err_row[1].parse().expect("parses");
        let after: f64 = err_row[2].parse().expect("parses");
        assert!(
            after < CALIBRATED_ERROR_CEILING,
            "calibrated error regressed: {after} >= {CALIBRATED_ERROR_CEILING}"
        );
        assert!(
            before >= 2.0 * after.max(1e-9),
            "calibration should cut error >=2x: before {before}, after {after}"
        );

        let wins = t
            .rows
            .iter()
            .filter(|r| r[0].contains("charged latency"))
            .filter(|r| {
                let factor: f64 = r[3].trim_end_matches('x').parse().expect("parses");
                factor > 1.0
            })
            .count();
        assert!(wins >= 1, "cost-based planner should win a class\n{t:?}");

        // Regression pin for the affinity-filter class. Before the
        // optimizer priced pushed conjuncts with their local column
        // forms, the `p_activity` bound (translated to `value_nm` for
        // the wire) missed the overlay histogram, the row estimate
        // defaulted to the 0.5 guess, and the cost-based planner routed
        // affinity scans to the thin replica — a 0.80x loss to the
        // fixed order. With histogram selectivity it must at least
        // match the fixed pipeline.
        let affinity = t
            .rows
            .iter()
            .find(|r| r[0].starts_with("affinity_filter"))
            .expect("affinity row present");
        let factor: f64 = affinity[3].trim_end_matches('x').parse().expect("parses");
        assert!(
            factor >= 1.0,
            "cost-based must not lose the affinity class: {factor}x\n{t:?}"
        );
    }
}
