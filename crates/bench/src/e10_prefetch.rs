//! E10 (extension): predictive prefetching by session pattern.
//!
//! Not part of the reconstructed poster evaluation; this measures the
//! repository's forward-looking feature. The honest finding (kept in
//! EXPERIMENTS.md): prefetching **helps lateral browsing** (paging
//! through sibling clades — the next expansion is never covered by a
//! containment hit) and is **neutral-to-harmful for drill-down**
//! sessions (children are already covered by the just-fetched parent,
//! so speculation only churns the cache). The session API therefore
//! leaves it opt-in.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_mobile::gestures::lateral_script;
use drugtree_mobile::prefetch::Prefetcher;
use drugtree_mobile::Gesture;
use drugtree_query::cache::CacheConfig;
use std::time::Duration;

/// Run E10.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, gestures) = if config.quick { (64, 60) } else { (512, 300) };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 8)
            .seed(1010),
    );
    let scripts: Vec<(&str, Vec<Gesture>)> = vec![
        (
            "drill-down",
            drill_down_script(
                &bundle.tree,
                &bundle.index,
                &GestureConfig {
                    len: gestures,
                    seed: 17,
                    zipf_theta: 0.6,
                    revisit_prob: 0.2,
                },
            ),
        ),
        (
            "lateral",
            lateral_script(
                &bundle.tree,
                &bundle.index,
                &GestureConfig {
                    len: gestures,
                    seed: 17,
                    zipf_theta: 0.0,
                    revisit_prob: 0.0,
                },
            ),
        ),
    ];

    let mut table = ExperimentTable::new(
        "E10 (extension)",
        format!("predictive prefetching by session pattern, {gestures} gestures"),
        vec![
            "script",
            "prefetch",
            "hit rate",
            "mean query latency",
            "source reqs",
        ],
    );

    for (name, script) in &scripts {
        for prefetch in [false, true] {
            let system = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(OptimizerConfig::full())
                // Single shard so the tight entry budget is not split.
                .cache(CacheConfig {
                    max_entries: 24,
                    max_rows: bundle.activities.len() / 2,
                    shards: 1,
                })
                .build()
                .expect("system builds");
            let mut session = system.mobile_session(NetworkProfile::CELL_4G);
            if prefetch {
                session.enable_prefetch(Prefetcher {
                    fan_out: 2,
                    ..Prefetcher::default()
                });
            }
            let mut latencies: Vec<Duration> = Vec::new();
            let mut hits = 0usize;
            let mut queries = 0usize;
            for g in script {
                let r = session.apply(g).expect("gesture applies");
                if let Some(hit) = r.cache_hit {
                    queries += 1;
                    latencies.push(r.query_latency);
                    hits += usize::from(hit);
                }
            }
            let requests: u64 = system
                .dataset()
                .registry
                .all()
                .iter()
                .map(|s| s.metrics().requests)
                .sum();
            table.row(vec![
                name.to_string(),
                prefetch.to_string(),
                format!("{:.0}%", 100.0 * hits as f64 / queries.max(1) as f64),
                fmt_ms(mean(&latencies)),
                requests.to_string(),
            ]);
        }
    }
    table.note("fan-out 2, clades <= 64 leaves; prefetch pays speculative source requests");
    table.note("finding: helps lateral browsing; neutral/harmful for drill-down (kept honest)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_helps_lateral_sessions() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 4);
        let rate =
            |row: &Vec<String>| -> f64 { row[2].trim_end_matches('%').parse().expect("parses") };
        let lateral_off = t
            .rows
            .iter()
            .find(|r| r[0] == "lateral" && r[1] == "false")
            .unwrap();
        let lateral_on = t
            .rows
            .iter()
            .find(|r| r[0] == "lateral" && r[1] == "true")
            .unwrap();
        assert!(
            rate(lateral_on) > rate(lateral_off) + 10.0,
            "lateral sessions must benefit: {}% -> {}%",
            rate(lateral_off),
            rate(lateral_on)
        );
        // Speculation costs extra source traffic.
        let reqs_off: u64 = lateral_off[4].parse().unwrap();
        let reqs_on: u64 = lateral_on[4].parse().unwrap();
        assert!(reqs_on > reqs_off);
    }
}
