//! E13: query-path observability — per-class latency breakdown from
//! the [`MetricsRegistry`] observer, and the null-observer overhead
//! check.
//!
//! The same E1 traffic runs twice per class: once with a
//! `MetricsRegistry` installed through `with_observer` (every query
//! folds a trace into lock-free counters/histograms) and once with no
//! observer (the executor's null-observer fast path, which builds no
//! spans at all). Latencies are virtual-clock measurements and tracing
//! never charges the clock, so the observed/baseline ratio must be
//! exactly 1.0 — the quick run doubles as the CI overhead assertion.
//!
//! A third observed run per class has the columnar activity mirror
//! built (`with_columnar`): the breakdown then shifts from fetch-
//! dominated to [`Stage::Compute`]-dominated, and the `local mean` /
//! `compute share` columns quantify the local-compute path the
//! federated columns cannot show (design decision D12).

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_query::{MetricsRegistry, Stage};
use drugtree_workload::queries::{class_stream, QueryClass, QueryWorkloadConfig};
use std::sync::Arc;
use std::time::Duration;

/// CI ceiling on observer overhead: mean latency with the registry
/// installed may differ from the null-observer baseline by at most 2%.
/// (On the virtual clock the difference is exactly zero; the slack
/// only exists so a future wall-clock port of this check stays sane.)
pub const NULL_OBSERVER_OVERHEAD_CEILING: f64 = 0.02;

/// Run E13.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, ligands, per_class) = if config.quick {
        (64, 16, 8)
    } else {
        (512, 64, 50)
    };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(ligands)
            .seed(101),
    );

    let mut table = ExperimentTable::new(
        "E13",
        format!("query-path latency breakdown, {leaves} leaves, {per_class} queries/class"),
        vec![
            "class",
            "mean latency",
            "fetch share",
            "hit rate",
            "rows/query",
            "reqs/query",
            "local mean",
            "compute share",
            "obs/null ratio",
        ],
    );

    for class in QueryClass::ALL {
        let queries = class_stream(
            class,
            &bundle.tree,
            &bundle.index,
            &bundle.ligands,
            &QueryWorkloadConfig {
                len: per_class,
                seed: 61,
                scope_theta: 0.8,
            },
        );

        let run_stream = |observer: Option<Arc<MetricsRegistry>>, columnar: bool| -> Duration {
            let mut builder = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(OptimizerConfig::full());
            if let Some(registry) = observer {
                builder = builder.with_observer(registry);
            }
            if columnar {
                builder = builder.with_columnar();
            }
            let system = builder.build().expect("system builds");
            let latencies: Vec<Duration> = queries
                .iter()
                .map(|q| {
                    system
                        .execute(q)
                        .expect("query executes")
                        .metrics
                        .virtual_cost
                })
                .collect();
            mean(&latencies)
        };

        let registry = Arc::new(MetricsRegistry::new());
        let observed_mean = run_stream(Some(Arc::clone(&registry)), false);
        let baseline_mean = run_stream(None, false);
        let ratio = observed_mean.as_secs_f64() / baseline_mean.as_secs_f64().max(1e-12);

        // Same traffic with the columnar mirror built: the trace's
        // cost mass moves from the fetch stages to Stage::Compute.
        let local_registry = Arc::new(MetricsRegistry::new());
        let local_mean = run_stream(Some(Arc::clone(&local_registry)), true);
        let local_query_ns = local_registry.stage_nanos(Stage::Query).max(1);
        let compute_ns = local_registry.stage_nanos(Stage::Compute);

        let n = registry.queries.get().max(1);
        let query_ns = registry.stage_nanos(Stage::Query).max(1);
        let fetch_ns = registry.stage_nanos(Stage::Fetch) + registry.stage_nanos(Stage::Coalesce);
        table.row(vec![
            class.label().to_string(),
            fmt_ms(observed_mean),
            format!("{:.0}%", 100.0 * fetch_ns as f64 / query_ns as f64),
            registry
                .hit_rate()
                .map_or_else(|| "-".to_string(), |rate| format!("{rate:.2}")),
            format!("{:.1}", registry.rows_fetched.get() as f64 / n as f64),
            format!("{:.2}", registry.source_requests.get() as f64 / n as f64),
            fmt_ms(local_mean),
            format!("{:.0}%", 100.0 * compute_ns as f64 / local_query_ns as f64),
            format!("{ratio:.4}"),
        ]);
    }

    // Per-gesture network-vs-compute: one 4G browsing session with the
    // registry installed; the session fires `Observer::on_gesture`.
    let registry = Arc::new(MetricsRegistry::new());
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .with_observer(registry.clone() as Arc<dyn drugtree_query::Observer>)
        .build()
        .expect("system builds");
    let script = drill_down_script(
        &bundle.tree,
        &bundle.index,
        &GestureConfig {
            len: per_class * 4,
            seed: 3,
            zipf_theta: 1.0,
            revisit_prob: 0.35,
        },
    );
    let mut session = system.mobile_session(NetworkProfile::CELL_4G);
    for gesture in &script {
        session.apply(gesture).expect("gesture applies");
    }
    let compute = registry.gesture_compute.snapshot();
    let network = registry.gesture_network.snapshot();

    table.note(format!(
        "{} activity records; web-API latency model; 4G session of {} gestures: \
         mean compute {} vs mean network {} per gesture",
        bundle.activities.len(),
        registry.gestures.get(),
        fmt_ms(Duration::from_nanos(compute.mean() as u64)),
        fmt_ms(Duration::from_nanos(network.mean() as u64)),
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles as the CI null-observer overhead assertion: installing
    /// the metrics registry must not change query latency by more than
    /// [`NULL_OBSERVER_OVERHEAD_CEILING`] for any class (on the
    /// virtual clock the ratio is exactly 1).
    #[test]
    fn observer_adds_no_measurable_latency() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let ratio: f64 = row[8].parse().expect("ratio parses");
            assert!(
                (ratio - 1.0).abs() < NULL_OBSERVER_OVERHEAD_CEILING,
                "{} observer overhead out of bounds: {row:?}",
                row[0]
            );
            let share: f64 = row[2].trim_end_matches('%').parse().expect("share parses");
            assert!(
                (0.0..=100.0).contains(&share),
                "{} fetch share implausible: {row:?}",
                row[0]
            );
        }
    }

    /// With the columnar mirror built the breakdown must show actual
    /// local compute: a nonzero `compute share` and a `local mean`
    /// below the federated mean for every class.
    #[test]
    fn columnar_run_shows_local_compute_share() {
        let t = run(RunConfig { quick: true });
        for row in &t.rows {
            let compute: f64 = row[7].trim_end_matches('%').parse().expect("share parses");
            assert!(
                compute > 0.0 && compute <= 100.0,
                "{} compute share not in (0, 100]: {row:?}",
                row[0]
            );
            let federated: f64 = row[1].trim_end_matches("ms").parse().expect("parses");
            let local: f64 = row[6].trim_end_matches("ms").parse().expect("parses");
            assert!(
                local < federated,
                "{} local compute not faster than federated: {row:?}",
                row[0]
            );
        }
    }
}
