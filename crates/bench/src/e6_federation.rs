//! E6 (Fig 4): federation cost vs number of sources, batching on/off.
//!
//! Paper-shape expectation: unbatched latency scales with
//! `sources × leaves` round-trips (and sequential source dispatch adds
//! them up); batched + concurrent dispatch pays roughly one RTT per
//! query regardless of the federation width.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_workload::queries::{class_stream, QueryClass, QueryWorkloadConfig};
use std::time::Duration;

/// Run E6.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, n_queries) = if config.quick { (64, 8) } else { (256, 30) };
    let source_counts: Vec<usize> = if config.quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    };

    let mut table = ExperimentTable::new(
        "E6 (Fig 4)",
        format!("federation cost vs source count, {leaves} leaves"),
        vec!["sources", "unbatched mean", "batched mean", "ratio"],
    );

    for &n_sources in &source_counts {
        let bundle = SyntheticBundle::generate(
            &WorkloadSpec::default()
                .leaves(leaves)
                .ligands(leaves / 8)
                .seed(707)
                .assay_sources(n_sources),
        );
        let queries = class_stream(
            QueryClass::SubtreeListing,
            &bundle.tree,
            &bundle.index,
            &bundle.ligands,
            &QueryWorkloadConfig {
                len: n_queries,
                seed: 55,
                scope_theta: 0.5,
            },
        );
        let measure = |cfg: OptimizerConfig| -> Duration {
            let system = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(cfg)
                .build()
                .expect("builds");
            let latencies: Vec<Duration> = queries
                .iter()
                .map(|q| system.execute(q).expect("executes").metrics.virtual_cost)
                .collect();
            mean(&latencies)
        };
        // "Unbatched" isolates the fetch shape: cache and pruning off
        // too, matching the naive per-leaf access pattern.
        let unbatched = measure(OptimizerConfig::naive());
        // "Batched" enables only the fetch-side rules so the cache
        // cannot mask the effect.
        let mut batched_cfg = OptimizerConfig::naive();
        batched_cfg.batching = true;
        batched_cfg.concurrent_dispatch = true;
        let batched = measure(batched_cfg);
        table.row(vec![
            n_sources.to_string(),
            fmt_ms(unbatched),
            fmt_ms(batched),
            format!(
                "{:.1}x",
                unbatched.as_secs_f64() / batched.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.note("batched = batching + concurrent dispatch only (cache/pruning disabled)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbatched_scales_with_sources_batched_stays_flat() {
        let t = run(RunConfig { quick: true });
        let ms = |cell: &str| -> f64 {
            if let Some(stripped) = cell.strip_suffix("ms") {
                stripped.parse().expect("ms parses")
            } else {
                cell.trim_end_matches('s').parse::<f64>().expect("s parses") * 1e3
            }
        };
        let first = &t.rows[0];
        let last = t.rows.last().expect("rows");
        // Unbatched grows substantially with federation width.
        assert!(
            ms(&last[1]) > ms(&first[1]) * 2.0,
            "unbatched did not scale: {t:?}"
        );
        // Batched grows far slower than proportionally.
        assert!(
            ms(&last[2]) < ms(&first[2]) * 3.0,
            "batched scaled too fast: {t:?}"
        );
    }
}
