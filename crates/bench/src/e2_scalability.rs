//! E2 (Fig 1): query latency vs tree size.
//!
//! Paper-shape expectation: naive latency grows roughly linearly in
//! the number of leaves (one round-trip per leaf), while the optimized
//! path stays near-flat until result size dominates transfer.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_workload::queries::{class_stream, QueryClass, QueryWorkloadConfig};
use std::time::Duration;

/// Run E2.
pub fn run(config: RunConfig) -> ExperimentTable {
    let sizes: Vec<usize> = if config.quick {
        vec![32, 64, 128]
    } else {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    };
    let per_size = if config.quick { 6 } else { 25 };

    let mut table = ExperimentTable::new(
        "E2 (Fig 1)",
        "subtree-listing latency vs tree size (series: naive, optimized)",
        vec!["leaves", "naive mean", "optimized mean", "ratio"],
    );

    let mut naive_series: Vec<(usize, Duration)> = Vec::new();
    for &leaves in &sizes {
        let bundle = SyntheticBundle::generate(
            &WorkloadSpec::default()
                .leaves(leaves)
                .ligands((leaves / 8).max(8))
                .seed(202),
        );
        let queries = class_stream(
            QueryClass::SubtreeListing,
            &bundle.tree,
            &bundle.index,
            &bundle.ligands,
            &QueryWorkloadConfig {
                len: per_size,
                seed: 71,
                scope_theta: 0.5,
            },
        );
        let measure = |cfg: OptimizerConfig| {
            let system = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(cfg)
                .build()
                .expect("system builds");
            let latencies: Vec<Duration> = queries
                .iter()
                .map(|q| system.execute(q).expect("executes").metrics.virtual_cost)
                .collect();
            mean(&latencies)
        };
        let naive = measure(OptimizerConfig::naive());
        let optimized = measure(OptimizerConfig::full());
        naive_series.push((leaves, naive));
        table.row(vec![
            leaves.to_string(),
            fmt_ms(naive),
            fmt_ms(optimized),
            format!(
                "{:.1}x",
                naive.as_secs_f64() / optimized.as_secs_f64().max(1e-9)
            ),
        ]);
    }

    // Quantify the naive growth for the note.
    if let (Some(first), Some(last)) = (naive_series.first(), naive_series.last()) {
        let growth = last.1.as_secs_f64() / first.1.as_secs_f64().max(1e-9);
        let size_growth = last.0 as f64 / first.0 as f64;
        table.note(format!(
            "naive latency grew {growth:.1}x over a {size_growth:.0}x size increase"
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_grows_with_size_optimized_grows_slower() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 3);
        let ratios: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].trim_end_matches('x').parse().expect("parses"))
            .collect();
        // The advantage widens (or at least holds) as the tree grows.
        assert!(
            ratios.last().unwrap() >= ratios.first().unwrap(),
            "ratios {ratios:?}"
        );
        assert!(ratios.iter().all(|&r| r > 1.0));
    }
}
