//! E2 (Fig 1): query latency vs tree size.
//!
//! Paper-shape expectation: naive latency grows roughly linearly in
//! the number of leaves (one round-trip per leaf), while the optimized
//! path stays near-flat until result size dominates transfer. The
//! third series is the columnar local-compute path (design decision
//! D12): with the activity mirror built, interval scopes never leave
//! the process, so latency is pure kernel time — it must stay
//! sub-millisecond even at a million leaves, which is why the size
//! sweep extends far past the point where per-leaf round-trips are
//! even simulable.
//!
//! Federated series stop at [`MAX_FEDERATED_LEAVES`] (simulating one
//! round-trip per leaf across millions of leaves is wall-clock
//! prohibitive and adds nothing to the curve); the local-compute
//! series continues to 1,048,576 leaves with ~1 activity record per
//! leaf. Cells that a series does not cover hold `-`.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_workload::assays::AssaySpec;
use drugtree_workload::queries::{class_stream, QueryClass, QueryWorkloadConfig};
use std::time::Duration;

/// Largest tree the naive/optimized federated series run at; beyond
/// this only the local-compute series is measured.
pub const MAX_FEDERATED_LEAVES: usize = 4096;

/// The full-mode local-compute sweep must stay under this mean at its
/// largest size — the paper's "sub-millisecond local compute" claim.
pub const LOCAL_COMPUTE_CEILING: Duration = Duration::from_millis(1);

/// Spec for one E2 size point: past [`MAX_FEDERATED_LEAVES`] the
/// ligand count is capped (assay generation is O(ligands × leaves))
/// and the off-target rate tuned so the record count stays ~1/leaf.
fn spec_for(leaves: usize, seed: u64) -> WorkloadSpec {
    let ligands = (leaves / 8).clamp(8, 64);
    let mut spec = WorkloadSpec::default()
        .leaves(leaves)
        .ligands(ligands)
        .seed(seed);
    if leaves > MAX_FEDERATED_LEAVES {
        // ~1 record/leaf in expectation: ligands × (1 - empty) × rate.
        spec.assay = AssaySpec {
            hit_density: 0.9,
            off_target_rate: 1.0 / (ligands as f64 * 0.75),
            empty_leaf_fraction: 0.25,
            seed: 11,
        };
    }
    spec
}

/// Run E2.
pub fn run(config: RunConfig) -> ExperimentTable {
    let sizes: Vec<usize> = if config.quick {
        vec![32, 64, 128]
    } else {
        vec![64, 256, 1024, 4096, 65_536, 262_144, 1_048_576]
    };
    let per_size = if config.quick { 6 } else { 25 };

    let mut table = ExperimentTable::new(
        "E2 (Fig 1)",
        "subtree-listing latency vs tree size (series: naive, optimized, local compute)",
        vec![
            "leaves",
            "naive mean",
            "optimized mean",
            "local compute mean",
            "naive/opt ratio",
        ],
    );

    let mut naive_series: Vec<(usize, Duration)> = Vec::new();
    let mut local_series: Vec<(usize, Duration, usize)> = Vec::new();
    for &leaves in &sizes {
        let bundle = SyntheticBundle::generate(&spec_for(leaves, 202));
        let queries = class_stream(
            QueryClass::SubtreeListing,
            &bundle.tree,
            &bundle.index,
            &bundle.ligands,
            &QueryWorkloadConfig {
                len: per_size,
                seed: 71,
                scope_theta: 0.5,
            },
        );
        let measure = |cfg: OptimizerConfig, columnar: bool| {
            let mut builder = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(cfg);
            if columnar {
                builder = builder.with_columnar();
            }
            let system = builder.build().expect("system builds");
            let latencies: Vec<Duration> = queries
                .iter()
                .map(|q| system.execute(q).expect("executes").metrics.virtual_cost)
                .collect();
            mean(&latencies)
        };
        let federated = leaves <= MAX_FEDERATED_LEAVES;
        let naive = federated.then(|| measure(OptimizerConfig::naive(), false));
        let optimized = federated.then(|| measure(OptimizerConfig::full(), false));
        let local = measure(OptimizerConfig::full(), true);
        if let Some(n) = naive {
            naive_series.push((leaves, n));
        }
        local_series.push((leaves, local, bundle.activities.len()));
        let dash = || "-".to_string();
        table.row(vec![
            leaves.to_string(),
            naive.map_or_else(dash, fmt_ms),
            optimized.map_or_else(dash, fmt_ms),
            fmt_ms(local),
            match (naive, optimized) {
                (Some(n), Some(o)) => {
                    format!("{:.1}x", n.as_secs_f64() / o.as_secs_f64().max(1e-9))
                }
                _ => dash(),
            },
        ]);
    }

    // Quantify the naive growth for the note.
    if let (Some(first), Some(last)) = (naive_series.first(), naive_series.last()) {
        let growth = last.1.as_secs_f64() / first.1.as_secs_f64().max(1e-9);
        let size_growth = last.0 as f64 / first.0 as f64;
        table.note(format!(
            "naive latency grew {growth:.1}x over a {size_growth:.0}x size increase"
        ));
    }
    if let Some((leaves, local, records)) = local_series.last() {
        table.note(format!(
            "local compute at {leaves} leaves ({records} activity records): \
             {:.3}ms mean — {} the 1ms ceiling",
            local.as_secs_f64() * 1e3,
            if *local < LOCAL_COMPUTE_CEILING {
                "under"
            } else {
                "OVER"
            },
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_grows_with_size_optimized_grows_slower() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 3);
        let ratios: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[4].trim_end_matches('x').parse().expect("parses"))
            .collect();
        // The advantage widens (or at least holds) as the tree grows.
        assert!(
            ratios.last().unwrap() >= ratios.first().unwrap(),
            "ratios {ratios:?}"
        );
        assert!(ratios.iter().all(|&r| r > 1.0));
    }

    #[test]
    fn local_compute_stays_sub_millisecond() {
        let t = run(RunConfig { quick: true });
        for row in &t.rows {
            let local: f64 = row[3].trim_end_matches("ms").parse().expect("parses");
            assert!(
                local < 1.0,
                "local compute {local}ms at {} leaves breaks the sub-ms budget",
                row[0]
            );
            // Local compute must also beat the federated optimized path.
            let optimized: f64 = row[2].trim_end_matches("ms").parse().expect("parses");
            assert!(local < optimized, "row {row:?}");
        }
    }
}
