//! E11 (extension): concurrent serving — throughput and per-query
//! cost as the session count grows, now at fleet scale.
//!
//! The poster's system served one mobile client; a deployed server
//! faces thousands at once, clustered on the same hot protein
//! families. The experiment has four sections, all on Zipf-correlated
//! session fleets:
//!
//! 1. **Serving modes** (small fleets) — *naive* per-session systems
//!    (per-leaf singleton round-trips, no cache), *per-session-opt*
//!    (full optimizer, private caches: M sessions pay for the same hot
//!    clades M times), and *fleet* (one [`FleetBuilder`] run over one
//!    shared executor: sharded semantic cache, virtual-time flight
//!    coalescing — one session's miss warms every session).
//! 2. **Fleet scale** — the shared scheduler alone from 64 up to
//!    16,384 sessions; the event-driven design keeps the worker pool
//!    fixed while the fleet grows.
//! 3. **Shard sweep** — cache shard counts at a fixed fleet, the
//!    contention knob [`FleetBuilder::with_shards`] exposes.
//! 4. **Failure scenarios** — an *sla* row (deadlines + admission
//!    control + hedging) and a *storm* row (scripted
//!    [`FlakySource`] outage
//!    windows, served through as graceful partial results). The
//!    `degraded` column reads `shed/deadline/hedged/outage`.
//!
//! All numbers are **virtual-clock** and deterministic — the scheduler
//! replays a fleet byte-identically regardless of worker count (the
//! full run proves it by replaying the 4,096-session cell twice).
//! Throughput is gestures per virtual second of makespan; wall-clock
//! CPU is measured separately by Criterion (E9).

use crate::table::ExperimentTable;
use crate::{fmt_ms, percentile, RunConfig};
use drugtree::prelude::*;
use drugtree_sources::flaky::{FlakySource, OutageWindow};
use drugtree_sources::SourceRegistry;
use std::sync::Arc;
use std::time::Duration;

/// The serving modes of the small-fleet comparison.
const MODES: [&str; 3] = ["naive", "per-session-opt", "fleet"];

/// What one (sessions, mode) cell measured.
struct CellOutcome {
    /// Charged latency of every query-bearing interaction.
    latencies: Vec<Duration>,
    /// Virtual makespan: the slowest session's total charged time.
    makespan: Duration,
    /// Upstream source requests issued by the whole fleet.
    requests: u64,
    /// Query-bearing gestures replayed by the whole fleet.
    queries: usize,
    /// `shed/deadline/hedged/outage` counters, `-` for isolated modes.
    degraded: String,
}

impl CellOutcome {
    fn throughput(&self, gestures: usize) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs > 0.0 {
            gestures as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    fn rt_per_query(&self) -> f64 {
        self.requests as f64 / self.queries.max(1) as f64
    }

    fn row(&self, sessions: usize, mode: &str, gestures: usize) -> Vec<String> {
        vec![
            sessions.to_string(),
            mode.to_string(),
            format!("{:.1}", self.throughput(gestures)),
            fmt_ms(percentile(&self.latencies, 0.50)),
            fmt_ms(percentile(&self.latencies, 0.95)),
            fmt_ms(percentile(&self.latencies, 0.99)),
            format!("{:.2}", self.rt_per_query()),
            self.requests.to_string(),
            self.degraded.clone(),
        ]
    }
}

/// Gestures that run a query (mode-independent: derived from the
/// script, not from any executor's plan shape).
fn is_query(g: &Gesture) -> bool {
    matches!(
        g,
        Gesture::Expand { .. } | Gesture::InspectViewport | Gesture::RunQuery(_)
    )
}

fn count_queries(workloads: &[SessionWorkload]) -> usize {
    workloads
        .iter()
        .flat_map(|w| &w.script)
        .filter(|g| is_query(g))
        .count()
}

/// Replay each session against its own private system (naive or
/// optimized): no sharing anywhere, the M-copies baseline.
fn run_isolated(
    bundle: &SyntheticBundle,
    optimizer: OptimizerConfig,
    workloads: &[SessionWorkload],
) -> CellOutcome {
    let mut latencies = Vec::new();
    let mut makespan = Duration::ZERO;
    let mut requests = 0u64;
    let mut queries = 0usize;
    for w in workloads {
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(optimizer)
            .build()
            .expect("system builds");
        let mut session = system.mobile_session(w.network);
        let mut total = Duration::ZERO;
        for g in &w.script {
            let r = session.apply(g).expect("gesture applies");
            total += r.charged_latency;
            if is_query(g) {
                queries += 1;
                latencies.push(r.charged_latency);
            }
        }
        makespan = makespan.max(total);
        requests += system
            .dataset()
            .registry
            .all()
            .iter()
            .map(|s| s.metrics().requests)
            .sum::<u64>();
    }
    CellOutcome {
        latencies,
        makespan,
        requests,
        queries,
        degraded: "-".to_string(),
    }
}

/// The knobs a shared-scheduler cell can turn.
#[derive(Default)]
struct FleetScenario {
    shards: Option<usize>,
    deadline: Option<DeadlinePolicy>,
    admission: Option<AdmissionControl>,
    hedging: Option<HedgePolicy>,
    storm: bool,
}

/// Replay the whole fleet through the event-driven scheduler.
fn run_fleet_cell(
    bundle: &SyntheticBundle,
    workloads: &[SessionWorkload],
    scenario: &FleetScenario,
) -> CellOutcome {
    let mut fleet = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .expect("system builds")
        .fleet();
    if scenario.storm {
        // Scripted outage storms: every source flickers off for the
        // first 100ms of every 250ms of virtual time, starting
        // mid-storm at t=0 so the cold-cache fetch burst lands in an
        // outage. Affected queries degrade to partial results; the
        // fleet rides through and the gaps let the cache warm.
        let clock = Arc::clone(&fleet.dataset().clock);
        let windows: Vec<OutageWindow> = (0..64)
            .map(|k| OutageWindow::at(Duration::from_millis(250 * k), Duration::from_millis(100)))
            .collect();
        let mut stormy = SourceRegistry::new();
        for source in fleet.dataset().registry.all().to_vec() {
            stormy
                .register(Arc::new(
                    FlakySource::new(source, 0.0, Duration::ZERO, 1101)
                        .with_storms(Arc::clone(&clock), windows.clone()),
                ))
                .expect("unique source names");
        }
        fleet.dataset_mut().registry = stormy;
    }
    // The sources survive the run via these handles: the builder is
    // consumed by `run`, the metrics live in the shared `Arc`s.
    let sources = fleet.dataset().registry.all().to_vec();
    let mut builder = fleet.with_sessions(workloads.to_vec());
    if let Some(shards) = scenario.shards {
        builder = builder.with_shards(shards);
    }
    if let Some(deadline) = scenario.deadline {
        builder = builder.with_deadline_policy(deadline);
    }
    if let Some(admission) = scenario.admission {
        builder = builder.with_admission_control(admission);
    }
    if let Some(hedging) = scenario.hedging {
        builder = builder.with_hedging(hedging);
    }
    let report = builder.run().expect("fleet serves");
    let requests = sources.iter().map(|s| s.metrics().requests).sum();
    CellOutcome {
        degraded: format!(
            "{}/{}/{}/{}",
            report.total_shed(),
            report.total_deadline_missed(),
            report.total_hedged(),
            report.total_outages()
        ),
        makespan: report.virtual_makespan(),
        latencies: report.latencies,
        requests,
        queries: count_queries(workloads),
    }
}

/// Run E11.
pub fn run(config: RunConfig) -> ExperimentTable {
    // Small-fleet mode comparison (isolated baselines are M full
    // systems each — keep M modest) and large-fleet scheduler scale.
    let (leaves, len, mode_counts, fleet_counts): (usize, usize, Vec<usize>, Vec<usize>) =
        if config.quick {
            (64, 12, vec![1, 4, 8], vec![64, 256, 1024])
        } else {
            // 64 sessions already appear in the mode comparison.
            (256, 12, vec![1, 8, 64], vec![1024, 4096, 16384])
        };
    let sweep_sessions = if config.quick { 256 } else { 1024 };
    let shard_sweep: &[usize] = if config.quick {
        &[1, 8, 32]
    } else {
        &[1, 4, 16, 64]
    };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 4)
            .seed(1101),
    );
    let gesture_config = GestureConfig {
        len,
        seed: 1101,
        zipf_theta: 1.0,
        revisit_prob: 0.3,
    };
    let fleet_for = |sessions: usize| -> Vec<SessionWorkload> {
        zipf_sessions(&bundle.tree, &bundle.index, sessions, &gesture_config)
    };

    let mut table = ExperimentTable::new(
        "E11 (extension)",
        format!("fleet serving: Zipf session fleets, {len} gestures/session, {leaves} leaves"),
        vec![
            "sessions",
            "mode",
            "gestures/s",
            "p50",
            "p95",
            "p99",
            "RT/query",
            "source reqs",
            "degraded",
        ],
    );

    // 1. Serving modes, small fleets.
    for &sessions in &mode_counts {
        let workloads = fleet_for(sessions);
        let gestures: usize = workloads.iter().map(|w| w.script.len()).sum();
        for mode in MODES {
            let outcome = match mode {
                "naive" => run_isolated(&bundle, OptimizerConfig::naive(), &workloads),
                "per-session-opt" => run_isolated(&bundle, OptimizerConfig::full(), &workloads),
                _ => run_fleet_cell(&bundle, &workloads, &FleetScenario::default()),
            };
            table.row(outcome.row(sessions, mode, gestures));
        }
    }

    // 2. Fleet scale: the scheduler alone, 64 → 16k sessions.
    for &sessions in &fleet_counts {
        let workloads = fleet_for(sessions);
        let gestures: usize = workloads.iter().map(|w| w.script.len()).sum();
        let outcome = run_fleet_cell(&bundle, &workloads, &FleetScenario::default());
        table.row(outcome.row(sessions, "fleet", gestures));
    }

    // 3. Cache shard sweep at a fixed fleet.
    let sweep_workloads = fleet_for(sweep_sessions);
    let sweep_gestures: usize = sweep_workloads.iter().map(|w| w.script.len()).sum();
    for &shards in shard_sweep {
        let outcome = run_fleet_cell(
            &bundle,
            &sweep_workloads,
            &FleetScenario {
                shards: Some(shards),
                ..Default::default()
            },
        );
        table.row(outcome.row(sweep_sessions, &format!("shards={shards}"), sweep_gestures));
    }

    // 4. Failure scenarios at the same fixed fleet.
    let sla = run_fleet_cell(
        &bundle,
        &sweep_workloads,
        &FleetScenario {
            deadline: Some(DeadlinePolicy::uniform(Duration::from_millis(150))),
            admission: Some(AdmissionControl::max_open(32)),
            hedging: Some(HedgePolicy {
                enabled: true,
                quantile: 0.95,
                warmup: 16,
            }),
            ..Default::default()
        },
    );
    table.row(sla.row(sweep_sessions, "sla", sweep_gestures));
    let storm = run_fleet_cell(
        &bundle,
        &sweep_workloads,
        &FleetScenario {
            storm: true,
            ..Default::default()
        },
    );
    table.row(storm.row(sweep_sessions, "storm", sweep_gestures));

    // 5. Full mode only: replay the 4,096-session cell and check the
    // two runs render identically (wall-clock never enters the table).
    if !config.quick {
        let workloads = fleet_for(4096);
        let gestures: usize = workloads.iter().map(|w| w.script.len()).sum();
        let a = run_fleet_cell(&bundle, &workloads, &FleetScenario::default());
        let b = run_fleet_cell(&bundle, &workloads, &FleetScenario::default());
        let replayed = a.row(4096, "fleet", gestures) == b.row(4096, "fleet", gestures);
        table.note(if replayed {
            "4096-session replay check: byte-identical across two runs"
        } else {
            "4096-session replay check: MISMATCH (nondeterminism regression!)"
        });
    }
    table.note("latencies are charged per interaction (a query's share of coalesced work)");
    table.note("sessions overlap in virtual time; makespan = slowest session's total");
    table.note("degraded column reads shed/deadline/hedged/outage");
    table.note("sla = 150ms deadlines + 32-flight admission + p95 hedging; storm = 100ms source outages every 250ms");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(t: &'a ExperimentTable, sessions: &str, mode: &str) -> &'a Vec<String> {
        t.rows
            .iter()
            .find(|r| r[0] == sessions && r[1] == mode)
            .expect("cell present")
    }

    fn degraded(row: &[String]) -> Vec<u64> {
        row[8].split('/').map(|v| v.parse().unwrap()).collect()
    }

    #[test]
    fn shared_serving_wins_at_scale() {
        let t = run(RunConfig { quick: true });
        let rt = |sessions: &str, mode: &str| -> f64 {
            cell(&t, sessions, mode)[6].parse().expect("RT parses")
        };
        let tput = |sessions: &str, mode: &str| -> f64 {
            cell(&t, sessions, mode)[2]
                .parse()
                .expect("throughput parses")
        };
        // Optimization already beats naive per session.
        assert!(rt("8", "per-session-opt") < rt("8", "naive"));
        // The acceptance bar: at 8 sessions, the shared fleet issues
        // strictly fewer round-trips per query than per-session
        // optimization (one session's miss warms every session)...
        assert!(
            rt("8", "fleet") < rt("8", "per-session-opt"),
            "fleet {} vs per-session {}",
            rt("8", "fleet"),
            rt("8", "per-session-opt")
        );
        // ...and throughput grows at least 3x from 1 to 8 sessions.
        assert!(
            tput("8", "fleet") >= 3.0 * tput("1", "fleet"),
            "1 session: {}/s, 8 sessions: {}/s",
            tput("1", "fleet"),
            tput("8", "fleet")
        );
    }

    #[test]
    fn quick_mode_reaches_a_thousand_sessions() {
        let t = run(RunConfig { quick: true });
        let big = cell(&t, "1024", "fleet");
        let tput: f64 = big[2].parse().unwrap();
        assert!(tput > 0.0);
        // Shard sweep and failure scenarios are present.
        for shards in ["shards=1", "shards=8", "shards=32"] {
            cell(&t, "256", shards);
        }
        let storm = degraded(cell(&t, "256", "storm"));
        assert!(storm[3] > 0, "storm row must record outages: {storm:?}");
        let sla = degraded(cell(&t, "256", "sla"));
        assert!(
            sla.iter().sum::<u64>() > 0,
            "sla row must shed, miss, or hedge something: {sla:?}"
        );
    }

    #[test]
    fn fleet_replays_at_4096_are_byte_identical() {
        // The full run's acceptance check, at test-friendly scale
        // knobs: 4,096 sessions, short scripts, two replays, rendered
        // rows compared (wall-clock never enters a row).
        let bundle =
            SyntheticBundle::generate(&WorkloadSpec::default().leaves(64).ligands(16).seed(1101));
        let workloads = zipf_sessions(
            &bundle.tree,
            &bundle.index,
            4096,
            &GestureConfig {
                len: 4,
                seed: 1101,
                zipf_theta: 1.0,
                revisit_prob: 0.3,
            },
        );
        let gestures: usize = workloads.iter().map(|w| w.script.len()).sum();
        let run_once = || {
            run_fleet_cell(&bundle, &workloads, &FleetScenario::default())
                .row(4096, "fleet", gestures)
        };
        assert_eq!(run_once(), run_once(), "4096-session replay must match");
    }
}
