//! E11 (extension): concurrent serving — throughput and per-query
//! cost as the session count grows.
//!
//! The poster's system served one mobile client; a deployed server
//! faces M of them at once, clustered on the same hot protein
//! families. This experiment drives Zipf-correlated session fleets
//! (1 → 64 concurrent sessions) in three serving modes:
//!
//! * **naive** — per-session system, unoptimized plans (per-leaf
//!   singleton round-trips, no cache);
//! * **per-session-opt** — per-session system with the full optimizer:
//!   every session owns a private semantic cache, so M sessions pay
//!   for the same hot clades M times;
//! * **shared-serving** — one [`ServerHandle`] over one shared
//!   executor: sharded semantic cache, single-flight, cross-session
//!   batch coalescing. One session's miss warms every session.
//!
//! All numbers are **virtual-clock** (deterministic in the isolated
//! modes; shared-mode coalescing varies slightly with OS scheduling):
//! a session's timeline is the sum of its interactions' *charged*
//! latencies, sessions overlap, and the fleet's makespan is the
//! slowest session. Throughput is gestures per virtual second of
//! makespan; wall-clock CPU is measured separately by Criterion (E9).

use crate::table::ExperimentTable;
use crate::{fmt_ms, percentile, RunConfig};
use drugtree::prelude::*;
use std::time::Duration;

/// The three serving modes.
const MODES: [&str; 3] = ["naive", "per-session-opt", "shared-serving"];

/// What one (sessions, mode) cell measured.
struct CellOutcome {
    /// Charged latency of every query-bearing interaction.
    latencies: Vec<Duration>,
    /// Virtual makespan: the slowest session's total charged time.
    makespan: Duration,
    /// Upstream source requests issued by the whole fleet.
    requests: u64,
    /// Query-bearing gestures replayed by the whole fleet.
    queries: usize,
}

impl CellOutcome {
    fn throughput(&self, gestures: usize) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs > 0.0 {
            gestures as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    fn rt_per_query(&self) -> f64 {
        self.requests as f64 / self.queries.max(1) as f64
    }
}

/// Gestures that run a query (mode-independent: derived from the
/// script, not from any executor's plan shape).
fn is_query(g: &Gesture) -> bool {
    matches!(
        g,
        Gesture::Expand { .. } | Gesture::InspectViewport | Gesture::RunQuery(_)
    )
}

/// Replay each session against its own private system (naive or
/// optimized): no sharing anywhere, the M-copies baseline.
fn run_isolated(
    bundle: &SyntheticBundle,
    optimizer: OptimizerConfig,
    workloads: &[SessionWorkload],
) -> CellOutcome {
    let mut latencies = Vec::new();
    let mut makespan = Duration::ZERO;
    let mut requests = 0u64;
    let mut queries = 0usize;
    for w in workloads {
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(optimizer)
            .build()
            .expect("system builds");
        let mut session = system.mobile_session(w.network);
        let mut total = Duration::ZERO;
        for g in &w.script {
            let r = session.apply(g).expect("gesture applies");
            total += r.charged_latency;
            if is_query(g) {
                queries += 1;
                latencies.push(r.charged_latency);
            }
        }
        makespan = makespan.max(total);
        requests += system
            .dataset()
            .registry
            .all()
            .iter()
            .map(|s| s.metrics().requests)
            .sum::<u64>();
    }
    CellOutcome {
        latencies,
        makespan,
        requests,
        queries,
    }
}

/// Replay the whole fleet against one shared serving executor, one OS
/// thread per session.
fn run_shared(bundle: &SyntheticBundle, workloads: &[SessionWorkload]) -> CellOutcome {
    let server = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .expect("system builds")
        .into_server(ServeConfig::default());
    let report = server.run(workloads).expect("fleet serves");
    let requests = server
        .dataset()
        .registry
        .all()
        .iter()
        .map(|s| s.metrics().requests)
        .sum::<u64>();
    let queries = workloads
        .iter()
        .flat_map(|w| &w.script)
        .filter(|g| is_query(g))
        .count();
    let makespan = report.virtual_makespan();
    CellOutcome {
        latencies: report.latencies,
        makespan,
        requests,
        queries,
    }
}

/// Run E11.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, len, session_counts): (usize, usize, Vec<usize>) = if config.quick {
        (64, 40, vec![1, 4, 8])
    } else {
        (256, 60, vec![1, 2, 4, 8, 16, 32, 64])
    };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 4)
            .seed(1101),
    );
    let gesture_config = GestureConfig {
        len,
        seed: 1101,
        zipf_theta: 1.0,
        revisit_prob: 0.3,
    };

    let mut table = ExperimentTable::new(
        "E11 (extension)",
        format!("concurrent serving: Zipf session fleets, {len} gestures/session, {leaves} leaves"),
        vec![
            "sessions",
            "mode",
            "gestures/s",
            "p50",
            "p95",
            "p99",
            "RT/query",
            "source reqs",
        ],
    );

    for &sessions in &session_counts {
        let workloads = zipf_sessions(&bundle.tree, &bundle.index, sessions, &gesture_config);
        let gestures: usize = workloads.iter().map(|w| w.script.len()).sum();
        for mode in MODES {
            let outcome = match mode {
                "naive" => run_isolated(&bundle, OptimizerConfig::naive(), &workloads),
                "per-session-opt" => run_isolated(&bundle, OptimizerConfig::full(), &workloads),
                _ => run_shared(&bundle, &workloads),
            };
            table.row(vec![
                sessions.to_string(),
                mode.to_string(),
                format!("{:.1}", outcome.throughput(gestures)),
                fmt_ms(percentile(&outcome.latencies, 0.50)),
                fmt_ms(percentile(&outcome.latencies, 0.95)),
                fmt_ms(percentile(&outcome.latencies, 0.99)),
                format!("{:.2}", outcome.rt_per_query()),
                outcome.requests.to_string(),
            ]);
        }
    }
    table.note("latencies are charged per interaction (a query's share of coalesced work)");
    table.note("sessions overlap in virtual time; makespan = slowest session's total");
    table.note("shared-serving scaling beyond Mx comes from cross-session cache reuse");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(t: &'a ExperimentTable, sessions: &str, mode: &str) -> &'a Vec<String> {
        t.rows
            .iter()
            .find(|r| r[0] == sessions && r[1] == mode)
            .expect("cell present")
    }

    #[test]
    fn shared_serving_wins_at_scale() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 9);
        let rt = |sessions: &str, mode: &str| -> f64 {
            cell(&t, sessions, mode)[6].parse().expect("RT parses")
        };
        let tput = |sessions: &str, mode: &str| -> f64 {
            cell(&t, sessions, mode)[2]
                .parse()
                .expect("throughput parses")
        };
        // Optimization already beats naive per session.
        assert!(rt("8", "per-session-opt") < rt("8", "naive"));
        // The acceptance bar: at 8 sessions, shared serving issues
        // strictly fewer round-trips per query than per-session
        // optimization (one session's miss warms every session)...
        assert!(
            rt("8", "shared-serving") < rt("8", "per-session-opt"),
            "shared {} vs per-session {}",
            rt("8", "shared-serving"),
            rt("8", "per-session-opt")
        );
        // ...and throughput grows at least 3x from 1 to 8 sessions.
        assert!(
            tput("8", "shared-serving") >= 3.0 * tput("1", "shared-serving"),
            "1 session: {}/s, 8 sessions: {}/s",
            tput("1", "shared-serving"),
            tput("8", "shared-serving")
        );
    }
}
