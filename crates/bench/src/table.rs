//! Plain-text table rendering for the experiment harness.

use serde::Serialize;

/// One experiment's output table.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentTable {
    /// Experiment id ("E1 (Table 1)").
    pub id: String,
    /// Title line.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes (workload parameters, observations).
    pub notes: Vec<String>,
}

impl ExperimentTable {
    /// Build a table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: Vec<&str>,
    ) -> ExperimentTable {
        ExperimentTable {
            id: id.into(),
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; arity must match the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("== {}: {}\n", self.id, self.title);
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ExperimentTable::new("E0", "demo", vec!["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "222".into()]);
        t.note("a note");
        let text = t.render();
        assert!(text.contains("== E0: demo"));
        assert!(text.contains("longer-name"));
        assert!(text.contains("note: a note"));
        // Aligned: both value cells end at the same column.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExperimentTable::new("E0", "demo", vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
