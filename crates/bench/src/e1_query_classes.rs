//! E1 (Table 1): end-to-end query latency by class, naive vs optimized.
//!
//! Paper-shape expectation: the optimized configuration wins every
//! class, with the largest factor on subtree listings (batching +
//! caching dominate the per-leaf round-trips).

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_workload::queries::{class_stream, QueryClass, QueryWorkloadConfig};
use std::time::Duration;

/// Run E1.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, ligands, per_class) = if config.quick {
        (64, 16, 8)
    } else {
        (512, 64, 50)
    };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(ligands)
            .seed(101),
    );

    let mut table = ExperimentTable::new(
        "E1 (Table 1)",
        format!("query latency by class, {leaves} leaves, {per_class} queries/class"),
        vec![
            "class",
            "naive mean",
            "naive reqs",
            "opt mean",
            "opt reqs",
            "speedup",
        ],
    );

    for class in QueryClass::ALL {
        let queries = class_stream(
            class,
            &bundle.tree,
            &bundle.index,
            &bundle.ligands,
            &QueryWorkloadConfig {
                len: per_class,
                seed: 61,
                scope_theta: 0.8,
            },
        );

        let measure = |cfg: OptimizerConfig| -> (Duration, f64) {
            let system = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(cfg)
                .build()
                .expect("system builds");
            let mut latencies = Vec::with_capacity(queries.len());
            let mut requests = 0usize;
            for q in &queries {
                let r = system.execute(q).expect("query executes");
                latencies.push(r.metrics.virtual_cost);
                requests += r.metrics.source_requests;
            }
            (mean(&latencies), requests as f64 / queries.len() as f64)
        };

        let (naive_mean, naive_reqs) = measure(OptimizerConfig::naive());
        let (opt_mean, opt_reqs) = measure(OptimizerConfig::full());
        let speedup = naive_mean.as_secs_f64() / opt_mean.as_secs_f64().max(1e-9);
        table.row(vec![
            class.label().to_string(),
            fmt_ms(naive_mean),
            format!("{naive_reqs:.1}"),
            fmt_ms(opt_mean),
            format!("{opt_reqs:.2}"),
            format!("{speedup:.1}x"),
        ]);
    }
    table.note(format!(
        "{} activity records; Zipf(0.8) scope skew; web-API latency model (~120ms RTT)",
        bundle.activities.len()
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_speedups_everywhere() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let speedup: f64 = row[5]
                .trim_end_matches('x')
                .parse()
                .expect("speedup parses");
            assert!(speedup > 1.0, "{} not sped up: {row:?}", row[0]);
        }
    }
}
