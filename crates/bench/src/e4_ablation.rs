//! E4 (Table 2): optimizer rule ablation.
//!
//! Paper-shape expectation: every rule contributes; batching and the
//! semantic cache dominate on fetch-heavy federated workloads.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_query::optimizer::OptimizerConfig as OC;
use drugtree_workload::queries::{mixed_stream, QueryWorkloadConfig};
use std::time::Duration;

/// Run E4.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, n_queries) = if config.quick { (64, 16) } else { (512, 120) };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 8)
            .seed(505)
            .assay_sources(2),
    );
    let queries = mixed_stream(
        &bundle.tree,
        &bundle.index,
        &bundle.ligands,
        &QueryWorkloadConfig {
            len: n_queries,
            seed: 77,
            scope_theta: 1.0,
        },
    );

    let measure = |cfg: OC| -> (Duration, f64) {
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(cfg)
            .with_matview()
            .build()
            .expect("system builds");
        let mut latencies = Vec::with_capacity(queries.len());
        let mut requests = 0usize;
        for q in &queries {
            let r = system.execute(q).expect("executes");
            latencies.push(r.metrics.virtual_cost);
            requests += r.metrics.source_requests;
        }
        (mean(&latencies), requests as f64 / queries.len() as f64)
    };

    let mut table = ExperimentTable::new(
        "E4 (Table 2)",
        format!("rule ablation over a {n_queries}-query mixed workload, 2 sources"),
        vec![
            "configuration",
            "mean latency",
            "reqs/query",
            "slowdown vs full",
        ],
    );

    let (full_latency, full_reqs) = measure(OC::full());
    table.row(vec![
        "full".into(),
        fmt_ms(full_latency),
        format!("{full_reqs:.2}"),
        "1.0x".into(),
    ]);
    for rule in drugtree_query::phases::ablatable_rules() {
        let rule = rule.name;
        let (latency, reqs) = measure(OC::ablate(rule).expect("known rule"));
        table.row(vec![
            format!("full - {rule}"),
            fmt_ms(latency),
            format!("{reqs:.2}"),
            format!(
                "{:.1}x",
                latency.as_secs_f64() / full_latency.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    let (naive_latency, naive_reqs) = measure(OC::naive());
    table.row(vec![
        "naive (all off)".into(),
        fmt_ms(naive_latency),
        format!("{naive_reqs:.2}"),
        format!(
            "{:.1}x",
            naive_latency.as_secs_f64() / full_latency.as_secs_f64().max(1e-9)
        ),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_worst_full_is_best() {
        let t = run(RunConfig { quick: true });
        let slowdown =
            |row: &Vec<String>| -> f64 { row[3].trim_end_matches('x').parse().expect("parses") };
        let full = slowdown(&t.rows[0]);
        let naive = slowdown(t.rows.last().expect("naive row"));
        assert_eq!(full, 1.0);
        assert!(naive > 2.0, "naive should be much slower: {naive}");
        // Every ablation is at least as slow as full.
        for row in &t.rows[1..t.rows.len() - 1] {
            assert!(slowdown(row) >= 0.9, "{row:?}");
        }
    }
}
