//! E7 (Table 3): materialized aggregate view — build cost vs query
//! speedup, and staleness handling under source refresh.
//!
//! Paper-shape expectation: the view answers per-clade aggregates with
//! zero source work, so its build cost amortizes after a handful of
//! aggregate queries; after new remote depositions it is detected
//! stale and a rebuild restores service.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_sources::assay_db::assay_row;
use drugtree_sources::source::SourceKind;
use drugtree_workload::queries::{class_stream, QueryClass, QueryWorkloadConfig};
use std::time::Duration;

/// Run E7.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, n_queries) = if config.quick { (64, 10) } else { (512, 60) };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 8)
            .seed(808),
    );
    let queries = class_stream(
        QueryClass::Aggregate,
        &bundle.tree,
        &bundle.index,
        &bundle.ligands,
        &QueryWorkloadConfig {
            len: n_queries,
            seed: 88,
            scope_theta: 0.8,
        },
    );

    let measure = |with_view: bool| -> (Duration, Duration) {
        let mut builder = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(if with_view {
                OptimizerConfig::full()
            } else {
                OptimizerConfig::ablate("use_matview").expect("known rule")
            });
        if with_view {
            builder = builder.with_matview();
        }
        let system = builder.build().expect("builds");
        let start = system.dataset().clock.now();
        let latencies: Vec<Duration> = queries
            .iter()
            .map(|q| system.execute(q).expect("executes").metrics.virtual_cost)
            .collect();
        let _ = start;
        (mean(&latencies), latencies.iter().sum())
    };

    let (without_mean, without_total) = measure(false);
    let (with_mean, with_total) = measure(true);

    // Build cost measured directly.
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .expect("builds");
    let view = drugtree_query::matview::MaterializedAggregates::build(system.dataset())
        .expect("view builds");
    let build_cost = view.build_cost;
    let fresh_before = view.is_fresh(system.dataset());

    // Simulate a remote deposition: the view must detect staleness.
    let assay = &system.dataset().registry.by_kind(SourceKind::Assay)[0];
    let new_record = drugtree_chem::affinity::ActivityRecord {
        protein_accession: "P0000".into(),
        ligand_id: "L0000".into(),
        activity_type: drugtree_chem::ActivityType::Ki,
        value_nm: 77.0,
        source: "late-deposition".into(),
        year: 2013,
    };
    assay
        .ingest(assay_row(&new_record))
        .expect("source accepts ingest");
    let fresh_after = view.is_fresh(system.dataset());

    let mut table = ExperimentTable::new(
        "E7 (Table 3)",
        format!("materialized aggregate view, {n_queries} aggregate queries"),
        vec!["metric", "value"],
    );
    table.row(vec!["view build cost".into(), fmt_ms(build_cost)]);
    table.row(vec![
        "mean aggregate latency without view".into(),
        fmt_ms(without_mean),
    ]);
    table.row(vec![
        "mean aggregate latency with view".into(),
        fmt_ms(with_mean),
    ]);
    let speedup = without_mean.as_secs_f64() / with_mean.as_secs_f64().max(1e-9);
    table.row(vec![
        "speedup".into(),
        if speedup > 1000.0 {
            ">1000x".into()
        } else {
            format!("{speedup:.0}x")
        },
    ]);
    let breakeven = (build_cost.as_secs_f64()
        / (without_mean.as_secs_f64() - with_mean.as_secs_f64()).max(1e-12))
    .ceil();
    table.row(vec![
        "break-even query count".into(),
        format!("{breakeven:.0}"),
    ]);
    table.row(vec![
        format!("workload total without/with view"),
        format!("{} / {}", fmt_ms(without_total), fmt_ms(with_total)),
    ]);
    table.row(vec![
        "fresh before remote deposition".into(),
        fresh_before.to_string(),
    ]);
    table.row(vec![
        "fresh after remote deposition".into(),
        fresh_after.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_wins_and_staleness_detected() {
        let t = run(RunConfig { quick: true });
        let find = |name: &str| -> String {
            t.rows
                .iter()
                .find(|r| r[0].contains(name))
                .unwrap_or_else(|| panic!("row {name} missing"))[1]
                .clone()
        };
        let speedup = find("speedup");
        let speedup: f64 = speedup
            .trim_start_matches('>')
            .trim_end_matches('x')
            .parse()
            .expect("parses");
        assert!(speedup > 5.0, "view speedup too small: {speedup}");
        assert_eq!(find("fresh before"), "true");
        assert_eq!(find("fresh after"), "false");
        let breakeven: f64 = find("break-even").parse().expect("parses");
        assert!((1.0..100.0).contains(&breakeven), "break-even {breakeven}");
    }
}
