//! E3 (Fig 2): semantic-cache effectiveness in interactive sessions.
//!
//! Paper-shape expectation: hit rate rises with session locality
//! (Zipf θ), and cache hits cost ~zero source latency, so the mean
//! per-query latency drops with it.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_query::cache::CacheConfig;
use std::time::Duration;

/// Run E3.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, gestures) = if config.quick { (64, 60) } else { (512, 400) };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 8)
            .seed(303),
    );

    let mut table = ExperimentTable::new(
        "E3 (Fig 2)",
        format!("cache effectiveness vs session locality, {gestures}-gesture sessions"),
        vec![
            "zipf theta",
            "queries",
            "hit rate",
            "mean query latency",
            "miss latency",
        ],
    );

    for theta in [0.0, 0.5, 1.0, 2.0] {
        let script = drill_down_script(
            &bundle.tree,
            &bundle.index,
            &GestureConfig {
                len: gestures,
                seed: 404,
                zipf_theta: theta,
                revisit_prob: 0.4,
            },
        );
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full())
            // Cache sized below the full dataset so eviction matters.
            // Single shard: this experiment measures the cache policy
            // under pressure, and splitting a 12-entry budget across
            // shards would change what it measures.
            .cache(CacheConfig {
                max_entries: 12,
                max_rows: bundle.activities.len() / 2,
                shards: 1,
            })
            .build()
            .expect("system builds");
        let mut session = system.mobile_session(NetworkProfile::WIFI);

        let mut all: Vec<Duration> = Vec::new();
        let mut misses: Vec<Duration> = Vec::new();
        let mut hits = 0usize;
        let mut queries = 0usize;
        for g in &script {
            let r = session.apply(g).expect("gesture applies");
            if let Some(hit) = r.cache_hit {
                queries += 1;
                all.push(r.query_latency);
                if hit {
                    hits += 1;
                } else {
                    misses.push(r.query_latency);
                }
            }
        }
        table.row(vec![
            format!("{theta:.1}"),
            queries.to_string(),
            format!("{:.0}%", 100.0 * hits as f64 / queries.max(1) as f64),
            fmt_ms(mean(&all)),
            fmt_ms(mean(&misses)),
        ]);
    }
    table.note(format!(
        "cache limited to 12 entries / {} rows (half the dataset); hits cost zero source latency",
        bundle.activities.len() / 2
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_occur_and_high_theta_is_at_least_as_good() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 4);
        let rate = |row: &Vec<String>| -> f64 {
            row[2].trim_end_matches('%').parse().expect("rate parses")
        };
        assert!(t.rows.iter().any(|r| rate(r) > 0.0), "no hits at all");
        // The most local session should not be worse than the uniform
        // one.
        assert!(rate(&t.rows[3]) + 10.0 >= rate(&t.rows[0]), "{t:?}");
    }
}
