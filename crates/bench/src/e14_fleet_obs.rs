//! E14: fleet observability — windowed SLO tracking over the E11
//! shared-serving fleet.
//!
//! A [`FleetObserver`] rides along with the E11 Zipf fleet: every
//! query folds into per-class rolling windows on the virtual clock,
//! every gesture folds its charged latency into that session's window,
//! the slow-query log keeps the top-K plan shapes by charged latency,
//! and the trace export streams one JSONL event per query and per
//! window rollover. The table reports per-class tail latency and SLO
//! breach counts from the observer's own accumulators; the notes show
//! the slow-log's worst plan fingerprints and the export volume.
//!
//! Two properties double as CI assertions here: installing the
//! observer must not move virtual latency (the clock never charges for
//! tracing), and a single-session export replayed on a fresh system
//! must be byte-for-byte identical.

use crate::table::ExperimentTable;
use crate::{fmt_ms, RunConfig};
use drugtree::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// CI ceiling on the fleet observer's latency overhead: mean charged
/// latency with the full observer (windows + slow log + export)
/// installed may differ from the no-observer baseline by at most 2%.
pub const FLEET_OBSERVER_OVERHEAD_CEILING: f64 = 0.02;

fn observer(sink: Option<Arc<VecSink>>) -> Arc<FleetObserver> {
    let mut obs = FleetObserver::with_windows(
        Duration::from_secs(2),
        16,
        SloPolicy::default().with_session_target(Duration::from_millis(100)),
    )
    .with_slowlog(8);
    if let Some(sink) = sink {
        obs = obs.with_export(sink as Arc<dyn Sink>);
    }
    Arc::new(obs)
}

/// Explicit search-box queries spliced into every session so the fleet
/// exercises all six query classes (browsing gestures alone are
/// subtree listings). Constants repeat so the slow log's fingerprint
/// dedup has shapes to fold.
const QUERY_POOL: [&str; 5] = [
    "activities in tree where p_activity >= 6",
    "activities similar to 'CCO' >= 0.6",
    "activities in tree top 5 by p_activity",
    "aggregate max_p_activity in tree",
    "count per leaf in tree",
];

/// Replace every 4th gesture with a `RunQuery` cycling through
/// [`QUERY_POOL`], staggered by session id (deterministic).
fn with_query_mix(mut workloads: Vec<SessionWorkload>) -> Vec<SessionWorkload> {
    for w in &mut workloads {
        let mut next = w.session;
        for (i, gesture) in w.script.iter_mut().enumerate() {
            if i % 4 == 3 {
                let text = QUERY_POOL[next % QUERY_POOL.len()];
                next += 1;
                *gesture =
                    Gesture::RunQuery(Box::new(Query::parse(text).expect("pool query parses")));
            }
        }
    }
    workloads
}

/// Run E14.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, sessions, len) = if config.quick {
        (64, 8, 40)
    } else {
        (256, 64, 60)
    };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 4)
            .seed(1101),
    );
    let workloads = with_query_mix(zipf_sessions(
        &bundle.tree,
        &bundle.index,
        sessions,
        &GestureConfig {
            len,
            seed: 1101,
            zipf_theta: 1.0,
            revisit_prob: 0.3,
        },
    ));

    let sink = Arc::new(VecSink::new());
    let obs = observer(Some(Arc::clone(&sink)));
    let report = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .with_observer(Arc::clone(&obs) as Arc<dyn Observer>)
        .build()
        .expect("system builds")
        .fleet()
        .with_sessions(workloads)
        .run()
        .expect("fleet serves");

    let mut table = ExperimentTable::new(
        "E14 (extension)",
        format!(
            "fleet observability: {sessions} Zipf sessions x {len} gestures, {leaves} leaves, \
             2s windows"
        ),
        vec![
            "class", "queries", "p50", "p95", "p99", "max", "breach", "windows",
        ],
    );

    let windows = obs.windows();
    for class in QueryClass::ALL {
        let snapshot = obs.class_snapshot(class);
        let q = |p: f64| fmt_ms(Duration::from_nanos(snapshot.quantile(p).round() as u64));
        table.row(vec![
            class.label().to_string(),
            snapshot.count.to_string(),
            q(0.50),
            q(0.95),
            q(0.99),
            fmt_ms(Duration::from_nanos(snapshot.max)),
            windows.class_breaches(class).to_string(),
            windows.class_summaries(class).len().to_string(),
        ]);
    }

    let session_ids = windows.session_ids();
    let breaching = session_ids
        .iter()
        .filter(|&&id| windows.session_breaches(id) > 0)
        .count();
    table.note(format!(
        "{} gestures over {} sessions ({} with session-window SLO breaches); fleet makespan {}",
        report.gestures,
        session_ids.len(),
        breaching,
        fmt_ms(report.virtual_makespan()),
    ));
    if let Some(slowlog) = obs.slowlog() {
        let entries = slowlog.entries();
        let shown: Vec<String> = entries
            .iter()
            .take(3)
            .map(|e| format!("{:016x} x{} {}", e.fingerprint, e.count, fmt_ms(e.charged)))
            .collect();
        table.note(format!(
            "slow-log top shapes (fingerprint, occurrences, worst charged): {}",
            shown.join("; "),
        ));
    }
    table.note(format!(
        "trace export: {} JSONL events ({} bytes)",
        sink.lines().len(),
        sink.lines().iter().map(|l| l.len() + 1).sum::<usize>(),
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_mobile::gestures::drill_down_script;

    fn bundle() -> SyntheticBundle {
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(48).ligands(12).seed(7))
    }

    fn script(bundle: &SyntheticBundle) -> Vec<Gesture> {
        drill_down_script(
            &bundle.tree,
            &bundle.index,
            &GestureConfig {
                len: 30,
                seed: 5,
                zipf_theta: 1.0,
                revisit_prob: 0.3,
            },
        )
    }

    /// Replay one session; returns the summed charged latency and, if
    /// an export sink was attached, its lines.
    fn replay(bundle: &SyntheticBundle, obs: Option<Arc<FleetObserver>>) -> Duration {
        let mut builder = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full());
        if let Some(obs) = obs {
            builder = builder.with_observer(obs as Arc<dyn Observer>);
        }
        let system = builder.build().expect("system builds");
        let mut session = system.mobile_session(NetworkProfile::CELL_4G);
        let mut total = Duration::ZERO;
        for gesture in &script(bundle) {
            total += session
                .apply(gesture)
                .expect("gesture applies")
                .charged_latency;
        }
        total
    }

    #[test]
    fn windowed_slo_tracking_over_the_fleet() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 6, "one row per query class");
        let total: u64 = t.rows.iter().map(|r| r[1].parse::<u64>().unwrap()).sum();
        assert!(total > 0, "fleet ran queries: {t:?}");
        for row in &t.rows {
            let _breaches: u64 = row[6].parse().expect("breach column parses");
        }
        assert!(
            t.notes.iter().any(|n| n.contains("slow-log top shapes")),
            "slow-log note present: {:?}",
            t.notes
        );
        assert!(t.notes.iter().any(|n| n.contains("trace export")));
    }

    /// The acceptance bar: the full observer (windows + slow log +
    /// export) must not move charged latency — tracing never charges
    /// the virtual clock, so the ratio is exactly 1.
    #[test]
    fn fleet_observer_adds_no_measurable_latency() {
        let bundle = bundle();
        let observed = replay(&bundle, Some(observer(Some(Arc::new(VecSink::new())))));
        let baseline = replay(&bundle, None);
        let ratio = observed.as_secs_f64() / baseline.as_secs_f64().max(1e-12);
        assert!(
            (ratio - 1.0).abs() < FLEET_OBSERVER_OVERHEAD_CEILING,
            "observer overhead out of bounds: {observed:?} vs {baseline:?}"
        );
    }

    /// The acceptance bar: replaying the same single-session workload
    /// on a fresh system produces a byte-identical JSONL export.
    #[test]
    fn export_is_byte_identical_across_replays() {
        let bundle = bundle();
        let runs: Vec<Vec<String>> = (0..2)
            .map(|_| {
                let sink = Arc::new(VecSink::new());
                replay(&bundle, Some(observer(Some(Arc::clone(&sink)))));
                sink.lines()
            })
            .collect();
        assert!(!runs[0].is_empty());
        assert_eq!(runs[0], runs[1], "export differs between replays");
    }
}
