//! E15: vectorized kernel throughput vs row-at-a-time scanning.
//!
//! The store-level microbenchmark behind the columnar engine (design
//! decision D12): the same filtered aggregate — select rows by
//! predicate, then `sum`/`count` the `p_activity` column — runs once
//! through the typed bitmap kernels over a [`ColumnarTable`] and once
//! as a `Predicate::matches` scan over materialized `Vec<Value>` rows.
//! Both paths visit rows in ascending index order, so their float sums
//! are bitwise identical — checked on every measurement, making this a
//! throughput *and* equivalence harness.
//!
//! Unlike the other experiments these are **wall-clock** measurements
//! (via the declared [`wall_now`] shim — kernel CPU cost is exactly
//! what the virtual clock cannot tell us), so the wall columns use
//! benchdiff-neutral headers: the committed baseline gates coverage
//! and the deterministic row counts, not machine-dependent timings.
//! The acceptance target lives in the full run: a ≥10x kernel
//! advantage on a million-row filtered aggregate; the quick run
//! asserts a conservative ≥[`QUICK_MIN_SPEEDUP`]x so CI stays robust
//! to noisy shared runners.

use crate::table::ExperimentTable;
use crate::RunConfig;
use drugtree_sources::clock::wall_now;
use drugtree_store::columnar::ColumnarTable;
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::kernel;
use drugtree_store::schema::{Column, Schema};
use drugtree_store::value::{Value, ValueType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Quick-mode CI floor on the kernel/row-scan speedup. The full-mode
/// target is 10x; the quick gate is deliberately loose because CI
/// runners are shared and the quick table is small.
pub const QUICK_MIN_SPEEDUP: f64 = 3.0;

/// A synthetic activity table in the activity-half layout, plus the
/// same data as materialized rows for the baseline scan.
fn synthetic_table(rows: usize, seed: u64) -> (ColumnarTable, Vec<Vec<Value>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows);
    for rank in 0..rows {
        let p_activity = rng.gen_range(3.5..9.5);
        let value_nm = 10f64.powf(9.0 - p_activity);
        data.push(vec![
            Value::Int(rank as i64),
            Value::from(format!("P{:07}", rank)),
            Value::from(format!("L{:03}", rng.gen_range(0..64))),
            Value::from(match rng.gen_range(0..4) {
                0 => "Ki",
                1 => "Kd",
                2 => "IC50",
                _ => "EC50",
            }),
            Value::Float(value_nm),
            Value::Float(p_activity),
            Value::from("synthetic-assays"),
            Value::Int(rng.gen_range(1995..=2013)),
        ]);
    }
    let schema = Schema::new(vec![
        Column::required("leaf_rank", ValueType::Int),
        Column::required("protein_accession", ValueType::Text),
        Column::required("ligand_id", ValueType::Text),
        Column::required("activity_type", ValueType::Text),
        Column::required("value_nm", ValueType::Float),
        Column::required("p_activity", ValueType::Float),
        Column::required("source", ValueType::Text),
        Column::required("year", ValueType::Int),
    ]);
    let table =
        ColumnarTable::from_rows("e15", schema, data.clone()).expect("synthetic rows fit schema");
    (table, data)
}

/// Best-of-`reps` wall time of `f` (after one untimed warm-up), with
/// the result of the last run.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut last = f();
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = wall_now();
        last = f();
        best = best.min(wall_now().duration_since(t));
    }
    (best, last)
}

/// Run E15.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (rows, reps) = if config.quick {
        (131_072, 3)
    } else {
        (1_048_576, 5)
    };
    let (table_cols, table_rows) = synthetic_table(rows, 0xE15);
    let schema = table_cols.schema().clone();
    let p_col = table_cols.column(5);

    let predicates: Vec<(&str, Predicate)> = vec![
        (
            "p_activity >= 7.5",
            Predicate::cmp("p_activity", CompareOp::Ge, 7.5),
        ),
        (
            "6.0 <= p_activity < 8.0 AND year >= 2008",
            Predicate::between("p_activity", 6.0, 8.0).and(Predicate::cmp(
                "year",
                CompareOp::Ge,
                2008i64,
            )),
        ),
        ("activity_type = 'Ki'", Predicate::eq("activity_type", "Ki")),
    ];

    let mut out = ExperimentTable::new(
        "E15",
        format!("filtered-aggregate kernel throughput, {rows} rows, best of {reps}"),
        vec![
            "predicate",
            "rows",
            "selected",
            "kernel wall",
            "row-scan wall",
            "ratio vs row-scan",
        ],
    );

    let mut worst_speedup = f64::INFINITY;
    for (label, pred) in &predicates {
        let bound = pred.bind(&schema).expect("columns exist");

        let (kernel_wall, (kernel_count, kernel_sum)) = best_of(reps, || {
            let selection = table_cols.eval(&bound, 0..rows);
            (
                kernel::count(&selection),
                kernel::sum_f64(p_col, &selection),
            )
        });

        let (scan_wall, (scan_count, scan_sum)) = best_of(reps, || {
            let mut n = 0usize;
            let mut sum = 0.0f64;
            for row in &table_rows {
                if bound.matches(row) {
                    n += 1;
                    if let Value::Float(p) = row[5] {
                        sum += p;
                    }
                }
            }
            (n, sum)
        });

        // Equivalence is part of the measurement: identical visit order
        // makes even the float sums bitwise equal.
        assert_eq!(kernel_count, scan_count, "{label}: selection diverged");
        assert_eq!(
            kernel_sum.to_bits(),
            scan_sum.to_bits(),
            "{label}: kernel sum {kernel_sum} != scan sum {scan_sum}"
        );

        let speedup = scan_wall.as_secs_f64() / kernel_wall.as_secs_f64().max(1e-12);
        worst_speedup = worst_speedup.min(speedup);
        out.row(vec![
            (*label).to_string(),
            rows.to_string(),
            kernel_count.to_string(),
            format!("{:.3}ms", kernel_wall.as_secs_f64() * 1e3),
            format!("{:.3}ms", scan_wall.as_secs_f64() * 1e3),
            format!("{speedup:.1}x"),
        ]);
    }

    out.note(format!(
        "worst-case kernel speedup {worst_speedup:.1}x (target: >= 10x full, \
         >= {QUICK_MIN_SPEEDUP:.0}x quick); sums bitwise-equal across paths"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI smoke: the kernels must beat the row scan by the quick floor
    /// on every predicate shape (equivalence asserts live inside
    /// `run`). The speedup floor only holds for optimized builds —
    /// unoptimized bitmap words are slower than the interpreter-ish
    /// row scan — so it is release-gated; CI runs this test under
    /// `--release` in the E15 smoke step. The full-mode 10x target is
    /// checked offline via `experiments e15`.
    #[test]
    fn kernels_beat_row_scan() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let speedup: f64 = row[5].trim_end_matches('x').parse().expect("parses");
            #[cfg(not(debug_assertions))]
            assert!(
                speedup >= QUICK_MIN_SPEEDUP,
                "{}: kernel speedup {speedup:.1}x under the {QUICK_MIN_SPEEDUP}x floor",
                row[0]
            );
            #[cfg(debug_assertions)]
            assert!(speedup > 0.0, "{}: speedup not positive: {row:?}", row[0]);
        }
    }
}
