#![warn(missing_docs)]
// Experiment-harness crate: every run is over self-generated synthetic
// data, so `expect` marks harness bugs, not recoverable conditions.
// The workspace-wide unwrap/expect denial is relaxed for this crate.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Experiment harness reproducing the evaluation (DESIGN.md §5).
//!
//! Each `eN` module regenerates one reconstructed table/figure. All
//! latencies are **virtual-clock** measurements (deterministic,
//! machine-independent); wall-clock CPU costs of the kernels are
//! measured separately by the Criterion benches (E9).

pub mod e10_prefetch;
pub mod e11_serving;
pub mod e12_calibration;
pub mod e13_observability;
pub mod e14_fleet_obs;
pub mod e15_kernels;
pub mod e16_phases;
pub mod e17_adaptive;
pub mod e1_query_classes;
pub mod e2_scalability;
pub mod e3_cache;
pub mod e4_ablation;
pub mod e5_network;
pub mod e6_federation;
pub mod e7_matview;
pub mod e8_lod;
pub mod table;

use std::time::Duration;

/// Mean of a duration sample.
pub fn mean(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.iter().sum::<Duration>() / samples.len() as u32
}

/// Percentile (0.0–1.0) of a sample; sorts a copy.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Render a duration compactly for tables.
pub fn fmt_ms(d: Duration) -> String {
    if d >= Duration::from_secs(10) {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

/// `quick = true` shrinks every experiment for CI/tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Reduced sizes for tests.
    pub quick: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        let xs = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        assert_eq!(mean(&xs), Duration::from_millis(20));
        assert_eq!(percentile(&xs, 0.0), Duration::from_millis(10));
        assert_eq!(percentile(&xs, 1.0), Duration::from_millis(30));
        assert_eq!(percentile(&xs, 0.5), Duration::from_millis(20));
        assert_eq!(mean(&[]), Duration::ZERO);
        assert_eq!(percentile(&[], 0.9), Duration::ZERO);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ms(Duration::from_millis(1500)), "1500.0ms");
        assert_eq!(fmt_ms(Duration::from_secs(12)), "12.0s");
    }
}
