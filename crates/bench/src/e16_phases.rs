//! E16: phased-rewrite ablation sweep — every registered rule (and
//! every phase's rule group) toggled off against a mixed query corpus,
//! reporting result equivalence, charged latency, and planning time.
//!
//! This is the registry-driven successor of E4: configurations are
//! derived from [`drugtree_query::phases`] instead of a hand-kept
//! list, so a newly registered rule shows up in the sweep (and in the
//! committed benchdiff baseline) automatically. Every configuration's
//! results are checked against the full planner's — the "match" column
//! is a miniature differential oracle, and any value other than n/n is
//! a correctness bug, not a performance finding.
//!
//! Charged latency runs on the virtual clock and is deterministic;
//! planning time is wall-clock (the planner is pure CPU), so that
//! column uses a benchdiff-neutral header and the committed baseline
//! gates coverage and the deterministic columns only.

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_query::phases::{self, PHASE_ORDER};
use drugtree_query::stats::OverlayStats;
use drugtree_sources::clock::wall_now;
use drugtree_workload::queries::{mixed_stream, QueryWorkloadConfig};
use std::time::Duration;

/// One planner configuration in the sweep.
struct Mode {
    label: String,
    config: OptimizerConfig,
    rules_off: usize,
}

/// Full, each phase's ablatable rules off as a group, each ablatable
/// rule off alone, and naive — all derived from the registry.
fn sweep_modes() -> Vec<Mode> {
    let mut modes = vec![Mode {
        label: "full".into(),
        config: OptimizerConfig::full(),
        rules_off: 0,
    }];
    for phase in PHASE_ORDER {
        let rules: Vec<_> = phases::rules_in(phase).filter(|r| r.ablatable()).collect();
        if rules.is_empty() {
            continue;
        }
        let mut config = OptimizerConfig::full();
        for rule in &rules {
            (rule.toggle.expect("ablatable"))(&mut config, false);
        }
        modes.push(Mode {
            label: format!("no-{}", phase.label()),
            config,
            rules_off: rules.len(),
        });
    }
    for rule in phases::ablatable_rules() {
        modes.push(Mode {
            label: format!("no-{}", rule.name),
            config: OptimizerConfig::ablate(rule.name).expect("registered rule"),
            rules_off: 1,
        });
    }
    modes.push(Mode {
        label: "naive".into(),
        config: OptimizerConfig::naive(),
        rules_off: phases::ablatable_rules().count(),
    });
    modes
}

/// Order-free row comparison with float rounding, as the differential
/// oracle normalizes.
fn normalized(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Float(f) => Value::Float((f * 1e9).round() / 1e9),
                    other => other.clone(),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

/// Best-of-`reps` wall time of `f` (one untimed warm-up).
fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = wall_now();
        f();
        best = best.min(wall_now().duration_since(t));
    }
    best
}

/// Run E16.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, ligands, corpus_len, reps) = if config.quick {
        (96, 32, 32, 3)
    } else {
        (256, 64, 160, 5)
    };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(ligands)
            .seed(1616),
    );
    let corpus = mixed_stream(
        &bundle.tree,
        &bundle.index,
        &bundle.ligands,
        &QueryWorkloadConfig {
            len: corpus_len,
            seed: 16,
            scope_theta: 0.8,
        },
    );

    // Planning-time inputs shared by every mode: planning mutates
    // nothing, so one dataset and one stats collection serve all.
    let plan_dataset = bundle.build_dataset();
    let stats = OverlayStats::collect(&plan_dataset).expect("stats collect");

    let mut table = ExperimentTable::new(
        "E16",
        format!(
            "phased-rewrite ablation sweep, {leaves} leaves, {} queries, best of {reps}",
            corpus.len()
        ),
        vec!["mode", "rules off", "match", "mean charged", "plan wall"],
    );

    let mut baseline: Option<Vec<Vec<Vec<Value>>>> = None;
    for mode in sweep_modes() {
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(mode.config)
            .with_matview()
            .build()
            .expect("system builds");
        let mut charged = Vec::with_capacity(corpus.len());
        let mut results = Vec::with_capacity(corpus.len());
        for q in &corpus {
            system.executor().invalidate();
            let r = system.execute(q).expect("query executes");
            charged.push(r.metrics.charged_cost);
            results.push(normalized(&r.rows));
        }
        let matched = match &baseline {
            None => {
                baseline = Some(results);
                corpus.len()
            }
            Some(full) => results.iter().zip(full).filter(|(a, b)| a == b).count(),
        };

        let optimizer = Optimizer::new(mode.config);
        let plan_wall = best_of(reps, || {
            for q in &corpus {
                let _ = optimizer
                    .plan(&plan_dataset, Some(&stats), None, q)
                    .expect("query plans");
            }
        });

        table.row(vec![
            mode.label,
            mode.rules_off.to_string(),
            format!("{matched}/{}", corpus.len()),
            fmt_ms(mean(&charged)),
            format!("{plan_wall:.2?}"),
        ]);
    }

    table.note(format!(
        "{} registered rules across {} phases ({} ablatable); \
         match compares order-normalized rows against the full planner; \
         plan wall is wall-clock over the whole corpus (benchdiff-neutral)",
        phases::REGISTRY.len(),
        PHASE_ORDER.len(),
        phases::ablatable_rules().count(),
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI smoke: every ablation (rule-level and phase-level) must
    /// return exactly the full planner's results on the whole corpus,
    /// and the sweep must cover every ablatable rule plus the
    /// phase-group and endpoint modes.
    #[test]
    fn every_ablation_matches_full_results() {
        let t = run(RunConfig { quick: true });
        let phase_groups = PHASE_ORDER
            .iter()
            .filter(|&&p| phases::rules_in(p).any(drugtree_query::RuleDef::ablatable))
            .count();
        assert_eq!(
            t.rows.len(),
            phases::ablatable_rules().count() + phase_groups + 2,
            "sweep should cover full, per-phase, per-rule, naive\n{t:?}"
        );
        for row in &t.rows {
            let (matched, total) = row[2].split_once('/').expect("match column is n/m");
            assert_eq!(
                matched, total,
                "mode {} diverged from the full planner\n{t:?}",
                row[0]
            );
        }
    }

    #[test]
    fn phase_groups_exist_for_canonicalize_optimize_lower() {
        let labels: Vec<String> = sweep_modes().into_iter().map(|m| m.label).collect();
        for needed in ["no-canonicalize", "no-optimize", "no-lower"] {
            assert!(
                labels.iter().any(|l| l == needed),
                "{needed} missing: {labels:?}"
            );
        }
        assert!(
            !labels.iter().any(|l| l == "no-analyze"),
            "analyze has no ablatable rules: {labels:?}"
        );
    }

    /// `RewritePhase` is re-exported where the sweep needs it.
    #[test]
    fn phase_order_is_complete() {
        use drugtree_query::phases::RewritePhase;
        assert_eq!(PHASE_ORDER.len(), 4);
        assert_eq!(PHASE_ORDER[0], RewritePhase::Analyze);
        assert_eq!(PHASE_ORDER[3], RewritePhase::Lower);
    }
}
