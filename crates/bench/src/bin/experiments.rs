//! The experiment harness binary.
//!
//! ```sh
//! cargo run --release -p drugtree-bench --bin experiments          # all
//! cargo run --release -p drugtree-bench --bin experiments e3 e5   # subset
//! cargo run --release -p drugtree-bench --bin experiments -- --quick all
//! ```
//!
//! Prints each reconstructed table/figure series (DESIGN.md §5) and
//! writes the machine-readable results to `bench_results/<id>.json`
//! (`--out <dir>` redirects them, e.g. for the CI `benchdiff` gate).

use drugtree_bench::table::ExperimentTable;
use drugtree_bench::RunConfig;

/// One experiment: id + runner.
type Experiment = (&'static str, fn(RunConfig) -> ExperimentTable);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out_dir = std::path::PathBuf::from("bench_results");
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {}
            "--out" => match iter.next() {
                Some(dir) => out_dir = std::path::PathBuf::from(dir),
                None => {
                    eprintln!("error: --out needs a directory");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                std::process::exit(2);
            }
            other => selected.push(other),
        }
    }
    let all = selected.is_empty() || selected.contains(&"all");
    let config = RunConfig { quick };

    let experiments: Vec<Experiment> = vec![
        ("e1", drugtree_bench::e1_query_classes::run),
        ("e2", drugtree_bench::e2_scalability::run),
        ("e3", drugtree_bench::e3_cache::run),
        ("e4", drugtree_bench::e4_ablation::run),
        ("e5", drugtree_bench::e5_network::run),
        ("e6", drugtree_bench::e6_federation::run),
        ("e7", drugtree_bench::e7_matview::run),
        ("e8", drugtree_bench::e8_lod::run),
        ("e10", drugtree_bench::e10_prefetch::run),
        ("e11", drugtree_bench::e11_serving::run),
        ("e12", drugtree_bench::e12_calibration::run),
        ("e13", drugtree_bench::e13_observability::run),
        ("e14", drugtree_bench::e14_fleet_obs::run),
        ("e15", drugtree_bench::e15_kernels::run),
        ("e16", drugtree_bench::e16_phases::run),
        ("e17", drugtree_bench::e17_adaptive::run),
    ];

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
    }

    for (name, runner) in experiments {
        if !(all || selected.contains(&name)) {
            continue;
        }
        let started = drugtree_sources::clock::wall_now();
        let table = runner(config);
        println!("{}", table.render());
        println!("(harness wall time: {:?})\n", started.elapsed());
        match serde_json::to_string_pretty(&table) {
            Ok(json) => {
                let path = out_dir.join(format!("{name}.json"));
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
        }
    }
}
