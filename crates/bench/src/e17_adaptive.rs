//! E17: closing the telemetry → optimizer feedback loop.
//!
//! One deployment runs three phases against the same adaptive runtime
//! — an aggregate stream that heats the auto-materialization advisor,
//! an E12-style affinity-filter stream that trains the learned
//! cardinality statistics, and a mixed mobile fleet (Zipf drill-down
//! scripts + lateral scripts) whose sessions classify their own
//! gesture pattern and switch prefetch policy per session. The sweep
//! compares three modes:
//!
//! - **off**: no adaptive runtime; nominal statistics, no auto
//!   materialization, prefetch unconditionally on (the pre-adaptive
//!   opt-in posture).
//! - **frozen**: the runtime is installed but frozen — it observes
//!   nothing and applies nothing, so planning stays nominal and
//!   prefetch stays at its default-off policy. The E17 control arm.
//! - **on**: all three loops live, guarded by the regret tracker.
//!
//! Paper-shape expectation: the loop closes — at least one aggregate
//! shape is auto-materialized past break-even, mean estimate error
//! under learned statistics lands strictly below nominal, sessions
//! diverge on prefetch policy by classified pattern, and steady state
//! shows zero regret reverts. The whole sweep is virtual-clock
//! deterministic: a double run renders byte-identically, adapt-event
//! stream included (pinned by the `adapt digest` column).

use crate::table::ExperimentTable;
use crate::{fmt_ms, mean, RunConfig};
use drugtree::prelude::*;
use drugtree_mobile::gestures::lateral_script;
use drugtree_mobile::pattern::SessionPattern;
use drugtree_mobile::prefetch::Prefetcher;
use drugtree_query::parser::parse_query;
use drugtree_query::{AdaptiveConfig, AdaptiveRuntime};
use std::sync::Arc;
use std::time::Duration;

/// The three sweep arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    Frozen,
    On,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Off, Mode::Frozen, Mode::On];

    fn label(self) -> &'static str {
        match self {
            Mode::Off => "adaptation off",
            Mode::Frozen => "adaptation frozen",
            Mode::On => "adaptation on",
        }
    }
}

/// FNV-1a over the exported adapt-event stream: one hex cell pins the
/// whole decision log, so the benchdiff baseline (and the double-run
/// test) catches any drift in what the loops decided.
fn digest(lines: &[String]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.as_bytes().iter().chain(b"\n") {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Mean and p95 of relative cardinality-estimate error over a probe
/// stream: |estimated − actual| / max(actual, 1).
fn estimate_error(system: &DrugTree, probes: &[Query]) -> (f64, f64) {
    let mut errs: Vec<f64> = Vec::with_capacity(probes.len());
    for q in probes {
        system.executor().invalidate();
        let est = system
            .executor()
            .estimate(system.dataset(), q)
            .expect("plan estimates");
        let actual = system.execute(q).expect("query executes").rows.len();
        errs.push((est.rows as f64 - actual as f64).abs() / (actual as f64).max(1.0));
    }
    let p95 = {
        let mut sorted = errs.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[((sorted.len() - 1) as f64 * 0.95).round() as usize]
    };
    (errs.iter().sum::<f64>() / errs.len().max(1) as f64, p95)
}

/// Run E17.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, stream_len, agg_n, gestures) = if config.quick {
        (96, 24, 24, 40)
    } else {
        (256, 60, 60, 150)
    };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 4)
            .seed(1717),
    );
    let filters = drugtree_workload::queries::class_stream(
        drugtree_workload::queries::QueryClass::AffinityFilter,
        &bundle.tree,
        &bundle.index,
        &bundle.ligands,
        &drugtree_workload::queries::QueryWorkloadConfig {
            len: stream_len,
            seed: 5,
            scope_theta: 0.8,
        },
    );
    let aggregate = parse_query("aggregate count in tree").expect("parses");
    let scripts: Vec<(bool, Vec<Gesture>)> = (0..8)
        .map(|i| {
            let lateral = i % 2 == 1;
            let gc = GestureConfig {
                len: gestures,
                seed: 17 + i,
                zipf_theta: if lateral { 0.0 } else { 0.6 },
                revisit_prob: if lateral { 0.0 } else { 0.2 },
            };
            let script = if lateral {
                lateral_script(&bundle.tree, &bundle.index, &gc)
            } else {
                drill_down_script(&bundle.tree, &bundle.index, &gc)
            };
            (lateral, script)
        })
        .collect();

    let mut table = ExperimentTable::new(
        "E17",
        format!("telemetry-to-optimizer feedback loops, {leaves} leaves, adaptation sweep"),
        vec![
            "mode",
            "est mean err",
            "est p95 err",
            "auto-built",
            "agg mean latency",
            "prefetching sessions",
            "fleet hit rate",
            "prefetch source reqs",
            "reverts",
            "adapt digest",
        ],
    );

    for mode in Mode::ALL {
        let sink = Arc::new(VecSink::new());
        let runtime = match mode {
            Mode::Off => None,
            Mode::Frozen | Mode::On => Some(Arc::new(
                AdaptiveRuntime::new(AdaptiveConfig {
                    frozen: mode == Mode::Frozen,
                    ..AdaptiveConfig::default()
                })
                .with_export(Arc::clone(&sink) as Arc<dyn Sink>),
            )),
        };
        let mut builder = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full());
        if let Some(rt) = &runtime {
            builder = builder.with_adaptive(Arc::clone(rt));
        }
        let system = builder.build().expect("system builds");

        // Phase 1 — aggregate stream: repeated whole-tree aggregates
        // (cache invalidated between, as a refreshing deployment sees
        // them) accumulate foregone cost in the advisor; in `on` mode
        // it crosses break-even mid-stream and later queries are
        // served from the auto-built view.
        let mut agg_latencies: Vec<Duration> = Vec::with_capacity(agg_n);
        for _ in 0..agg_n {
            system.executor().invalidate();
            let r = system.execute(&aggregate).expect("aggregate executes");
            agg_latencies.push(r.metrics.charged_cost);
        }

        // Phase 2 — learned statistics: two training passes over the
        // E12-style affinity-filter stream (control points need two
        // observations to become servable), then a probe pass
        // measuring estimate error against true row counts.
        for _ in 0..2 {
            for q in &filters {
                system.executor().invalidate();
                system.execute(q).expect("filter executes");
            }
        }
        let (mean_err, p95_err) = estimate_error(&system, &filters);

        // Phase 3 — mobile fleet: alternating Zipf drill-down and
        // lateral sessions. off = prefetch unconditionally on;
        // frozen = default-off policy (the frozen layer never switches
        // it); on = per-session classification gates it.
        let reqs_before: u64 = source_requests(&system);
        let mut fleet_hits = 0usize;
        let mut fleet_queries = 0usize;
        let mut prefetching = 0usize;
        for (id, (_, script)) in scripts.iter().enumerate() {
            let mut session = system.mobile_session(NetworkProfile::CELL_4G);
            session.set_session_id(id as u32);
            match mode {
                Mode::Off => session.enable_prefetch(Prefetcher {
                    fan_out: 2,
                    ..Prefetcher::default()
                }),
                Mode::Frozen => {}
                Mode::On => session.enable_adaptive_prefetch(Prefetcher {
                    fan_out: 2,
                    ..Prefetcher::default()
                }),
            }
            for g in script {
                let r = session.apply(g).expect("gesture applies");
                if let Some(hit) = r.cache_hit {
                    fleet_queries += 1;
                    fleet_hits += usize::from(hit);
                }
            }
            let on = match mode {
                Mode::Off => true,
                Mode::Frozen => false,
                Mode::On => session.prefetch_pattern() == Some(SessionPattern::Lateral),
            };
            prefetching += usize::from(on);
        }
        let fleet_reqs = source_requests(&system) - reqs_before;

        let snapshot = runtime.as_ref().map(|rt| rt.snapshot());
        let built = snapshot
            .as_ref()
            .map_or(0, |s| s.advisor.evictions + u64::from(s.advisor.built));
        table.row(vec![
            mode.label().into(),
            format!("{mean_err:.3}"),
            format!("{p95_err:.3}"),
            built.to_string(),
            fmt_ms(mean(&agg_latencies)),
            prefetching.to_string(),
            format!(
                "{:.0}%",
                100.0 * fleet_hits as f64 / fleet_queries.max(1) as f64
            ),
            fleet_reqs.to_string(),
            snapshot
                .as_ref()
                .map_or("-".into(), |s| s.reverts.to_string()),
            if runtime.is_some() {
                digest(&sink.lines())
            } else {
                "-".into()
            },
        ]);
    }

    table.note(format!(
        "{} aggregates then 2x{} affinity-filter training passes then 8 sessions x {} gestures; \
         break-even proxy = statistics collection cost; regret guardrail at default thresholds",
        agg_n, stream_len, gestures,
    ));
    table.note(
        "agg latency spans pre- and post-materialization queries; the adapt digest pins the \
         exported decision stream byte-for-byte",
    );
    table
}

/// Total requests across every registered source.
fn source_requests(system: &DrugTree) -> u64 {
    system
        .dataset()
        .registry
        .all()
        .iter()
        .map(|s| s.metrics().requests)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'t>(t: &'t ExperimentTable, mode: &str, col: &str) -> &'t str {
        let ci = t.headers.iter().position(|h| h == col).expect("column");
        let row = t.rows.iter().find(|r| r[0] == mode).expect("row");
        &row[ci]
    }

    /// The acceptance sweep: the loop visibly closes in `on` mode and
    /// the control arms stay inert. Doubles as the CI regression pin
    /// that learned-statistics estimate error never exceeds nominal on
    /// the E12-style affinity workload.
    #[test]
    fn feedback_loops_close_and_controls_stay_inert() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 3);

        // Learned statistics: strictly below nominal, and the frozen
        // control plans exactly like `off`.
        let err = |mode: &str| -> f64 { cell(&t, mode, "est mean err").parse().expect("parses") };
        assert!(
            err("adaptation on") < err("adaptation off"),
            "learned estimates must beat nominal: on {} vs off {}",
            err("adaptation on"),
            err("adaptation off"),
        );
        assert_eq!(
            cell(&t, "adaptation frozen", "est mean err"),
            cell(&t, "adaptation off", "est mean err"),
            "a frozen runtime must plan nominally"
        );

        // Auto-materialization: at least one shape built in `on`,
        // none anywhere else.
        let built: u64 = cell(&t, "adaptation on", "auto-built")
            .parse()
            .expect("parses");
        assert!(built >= 1, "advisor must auto-materialize: {t:?}");
        assert_eq!(cell(&t, "adaptation frozen", "auto-built"), "0");

        // Per-session prefetch divergence: some but not all sessions
        // end up prefetching under classification.
        let prefetching: usize = cell(&t, "adaptation on", "prefetching sessions")
            .parse()
            .expect("parses");
        assert!(
            prefetching > 0 && prefetching < 8,
            "sessions must diverge by pattern: {prefetching}/8"
        );
        assert_eq!(cell(&t, "adaptation off", "prefetching sessions"), "8");
        assert_eq!(cell(&t, "adaptation frozen", "prefetching sessions"), "0");

        // Guardrail steady state: zero regret reverts.
        assert_eq!(cell(&t, "adaptation on", "reverts"), "0");
        assert_eq!(cell(&t, "adaptation frozen", "reverts"), "0");
    }

    /// The whole sweep is virtual-clock deterministic: two runs render
    /// byte-identically, adapt-event digests included.
    #[test]
    fn double_run_is_byte_identical() {
        let a = run(RunConfig { quick: true }).render();
        let b = run(RunConfig { quick: true }).render();
        assert_eq!(a, b, "E17 must replay byte-identically");
    }
}
