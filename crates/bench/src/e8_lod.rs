//! E8 (Fig 5): level-of-detail rendering — payload bytes and items vs
//! zoom depth.
//!
//! Paper-shape expectation: without LOD the payload grows with the
//! number of visible leaves; with LOD it stays bounded by what a phone
//! screen can resolve, independent of how much tree is in view.

use crate::table::ExperimentTable;
use crate::RunConfig;
use drugtree::prelude::*;
use drugtree_mobile::lod::render_visible;
use drugtree_mobile::viewport::Viewport;
use drugtree_phylo::index::LeafInterval;

/// Run E8.
pub fn run(config: RunConfig) -> ExperimentTable {
    let leaves: u32 = if config.quick { 1024 } else { 8192 };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves as usize)
            .ligands(16)
            .seed(909),
    );
    let layout = drugtree_mobile::layout::TreeLayout::compute(&bundle.tree, &bundle.index);

    let mut table = ExperimentTable::new(
        "E8 (Fig 5)",
        format!("LOD rendering vs zoom depth, {leaves}-leaf tree, 320x480 screen"),
        vec![
            "zoom",
            "visible leaves",
            "drawn leaves",
            "collapsed glyphs",
            "LOD payload",
            "full payload",
        ],
    );

    let mut zoom = 0u32;
    loop {
        let span = (leaves >> zoom).max(1);
        let mut viewport = Viewport::fullscreen(&layout);
        viewport.focus_interval(LeafInterval { lo: 0, hi: span });
        let render = render_visible(&bundle.tree, &bundle.index, &viewport, &layout);
        // "Full payload": what shipping every visible leaf as an
        // individually drawn item would cost (24 bytes + label).
        let full_payload: usize = (0..span)
            .map(|r| {
                let leaf = bundle.index.leaf_at(r).expect("rank valid");
                24 + bundle
                    .tree
                    .node_unchecked(leaf)
                    .label
                    .as_deref()
                    .map_or(0, str::len)
            })
            .sum();
        let glyphs = render
            .items
            .iter()
            .filter(|i| matches!(i, drugtree_mobile::lod::RenderItem::Collapsed { .. }))
            .count();
        table.row(vec![
            format!("1/{}", 1u32 << zoom),
            span.to_string(),
            render.visible_leaves.to_string(),
            glyphs.to_string(),
            format!("{} B", render.payload_bytes),
            format!("{full_payload} B"),
        ]);
        if span == 1 {
            break;
        }
        zoom += 1;
        if zoom > 14 {
            break;
        }
    }
    table.note("LOD collapses clades under 12px; full payload assumes no collapsing");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lod_caps_payload_at_low_zoom() {
        let t = run(RunConfig { quick: true });
        let bytes =
            |cell: &str| -> usize { cell.trim_end_matches(" B").parse().expect("bytes parse") };
        // Fully zoomed out: LOD payload must be a small fraction of the
        // full payload.
        let first = &t.rows[0];
        assert!(
            bytes(&first[4]) * 5 < bytes(&first[5]),
            "LOD not effective at zoom 1/1: {first:?}"
        );
        // Fully zoomed in: LOD and full converge (everything drawn).
        let last = t.rows.last().expect("rows");
        assert_eq!(last[1], "1");
        assert_eq!(last[2], "1");
    }
}
