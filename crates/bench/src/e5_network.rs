//! E5 (Fig 3): mobile network profiles, blocking vs progressive
//! delivery.
//!
//! Paper-shape expectation: blocking full-result latency degrades
//! roughly with link bandwidth; progressive first-usable latency stays
//! nearly RTT-bound across profiles.

use crate::table::ExperimentTable;
use crate::{fmt_ms, percentile, RunConfig};
use drugtree::prelude::*;
use std::time::Duration;

/// Run E5.
pub fn run(config: RunConfig) -> ExperimentTable {
    let (leaves, gestures) = if config.quick { (64, 40) } else { (512, 200) };
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(leaves)
            .ligands(leaves / 8)
            .seed(606),
    );
    let script = drill_down_script(
        &bundle.tree,
        &bundle.index,
        &GestureConfig {
            len: gestures,
            seed: 66,
            zipf_theta: 1.0,
            revisit_prob: 0.3,
        },
    );

    let mut table = ExperimentTable::new(
        "E5 (Fig 3)",
        "interaction latency by network profile (series: blocking, progressive)",
        vec![
            "network",
            "blocking p50 first",
            "blocking p95 first",
            "progressive p50 first",
            "progressive p95 first",
            "p95 complete",
        ],
    );

    for profile in NetworkProfile::ALL {
        let run_mode = |progressive: bool| -> (Duration, Duration, Duration) {
            let system = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(OptimizerConfig::full())
                .build()
                .expect("system builds");
            let mut session = system.mobile_session(profile);
            session.set_progressive(progressive);
            let mut first = Vec::new();
            let mut complete = Vec::new();
            for g in &script {
                let r = session.apply(g).expect("applies");
                if r.cache_hit.is_some() {
                    first.push(r.first_usable);
                    complete.push(r.complete);
                }
            }
            (
                percentile(&first, 0.5),
                percentile(&first, 0.95),
                percentile(&complete, 0.95),
            )
        };
        let (b50, b95, _) = run_mode(false);
        let (p50, p95, complete95) = run_mode(true);
        table.row(vec![
            profile.name.to_string(),
            fmt_ms(b50),
            fmt_ms(b95),
            fmt_ms(p50),
            fmt_ms(p95),
            fmt_ms(complete95),
        ]);
    }
    table.note("first = first-usable-content latency; queries only (pan/zoom excluded)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progressive_first_usable_never_worse() {
        let t = run(RunConfig { quick: true });
        assert_eq!(t.rows.len(), 4);
        let ms = |cell: &str| -> f64 {
            cell.trim_end_matches("ms")
                .trim_end_matches('s')
                .parse()
                .expect("duration parses")
        };
        for row in &t.rows {
            assert!(
                ms(&row[4]) <= ms(&row[2]) + 1e-9,
                "progressive p95 worse than blocking: {row:?}"
            );
        }
    }
}
