//! The source registry the mediator resolves sources from.

use crate::source::{DataSource, SourceKind};
use crate::{Result, SourceError};
use std::sync::Arc;

/// A named collection of registered sources.
#[derive(Default, Clone)]
pub struct SourceRegistry {
    sources: Vec<Arc<dyn DataSource>>,
    /// Groups of source names that hold the *same* data (replicas);
    /// the optimizer may serve a query from any one member.
    replica_groups: Vec<Vec<String>>,
}

impl SourceRegistry {
    /// An empty registry.
    pub fn new() -> SourceRegistry {
        SourceRegistry::default()
    }

    /// Register a source; names must be unique.
    pub fn register(&mut self, source: Arc<dyn DataSource>) -> Result<()> {
        if self.sources.iter().any(|s| s.name() == source.name()) {
            return Err(SourceError::DuplicateSource(source.name().to_string()));
        }
        self.sources.push(source);
        Ok(())
    }

    /// Look up a source by name.
    pub fn by_name(&self, name: &str) -> Result<Arc<dyn DataSource>> {
        self.sources
            .iter()
            .find(|s| s.name() == name)
            .cloned()
            .ok_or_else(|| SourceError::UnknownSource(name.to_string()))
    }

    /// All sources of a kind, in registration order.
    pub fn by_kind(&self, kind: SourceKind) -> Vec<Arc<dyn DataSource>> {
        self.sources
            .iter()
            .filter(|s| s.kind() == kind)
            .cloned()
            .collect()
    }

    /// The single source of a kind, when exactly one is registered.
    pub fn single(&self, kind: SourceKind) -> Result<Arc<dyn DataSource>> {
        let mut matches = self.by_kind(kind);
        match (matches.pop(), matches.len()) {
            (Some(only), 0) => Ok(only),
            (None, _) => Err(SourceError::UnknownSource(format!("{kind:?}"))),
            (Some(_), rest) => Err(SourceError::UnknownSource(format!(
                "{kind:?} is ambiguous ({} registered)",
                rest + 1
            ))),
        }
    }

    /// All sources.
    pub fn all(&self) -> &[Arc<dyn DataSource>] {
        &self.sources
    }

    /// Declare that the named sources are replicas of each other
    /// (every member serves the full record set). Unknown names are
    /// rejected; groups of fewer than two members are pointless and
    /// rejected too.
    pub fn declare_replicas(&mut self, names: Vec<String>) -> Result<()> {
        if names.len() < 2 {
            return Err(SourceError::UnknownSource(
                "replica group needs at least two members".into(),
            ));
        }
        for name in &names {
            self.by_name(name)?;
        }
        self.replica_groups.push(names);
        Ok(())
    }

    /// Sources of a kind with replica groups collapsed to one member
    /// each (the cheapest by nominal RTT) — the set a whole-dataset
    /// scan (statistics, view builds) should touch to see every record
    /// exactly once.
    pub fn distinct_by_kind(&self, kind: SourceKind) -> Vec<Arc<dyn DataSource>> {
        let mut out: Vec<Arc<dyn DataSource>> = Vec::new();
        let mut handled: Vec<&[String]> = Vec::new();
        for s in self.sources.iter().filter(|s| s.kind() == kind) {
            match self.replica_group_of(s.name()) {
                None => out.push(s.clone()),
                Some(group) => {
                    if handled.contains(&group) {
                        continue;
                    }
                    handled.push(group);
                    // `declare_replicas` verified every member is
                    // registered; fall back to `s` if that ever breaks.
                    let cheapest = self
                        .sources
                        .iter()
                        .filter(|c| group.iter().any(|n| n == c.name()))
                        .min_by_key(|c| c.latency_model().base_rtt)
                        .unwrap_or(s);
                    out.push(cheapest.clone());
                }
            }
        }
        out
    }

    /// The replica group containing `name`, if any.
    pub fn replica_group_of(&self, name: &str) -> Option<&[String]> {
        self.replica_groups
            .iter()
            .find(|g| g.iter().any(|n| n == name))
            .map(Vec::as_slice)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

impl std::fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.sources.iter().map(|s| (s.name(), s.kind())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::protein_db::{protein_source, ProteinRecord};
    use crate::source::SourceCapabilities;

    fn protein(name: &str) -> Arc<dyn DataSource> {
        Arc::new(
            protein_source(
                name,
                &[ProteinRecord {
                    accession: "P1".into(),
                    name: "x".into(),
                    organism: "o".into(),
                    sequence: "MK".into(),
                    gene: None,
                }],
                SourceCapabilities::full(),
                LatencyModel::free(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn register_and_resolve() {
        let mut reg = SourceRegistry::new();
        reg.register(protein("a")).unwrap();
        reg.register(protein("b")).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.by_name("a").unwrap().name(), "a");
        assert!(reg.by_name("zz").is_err());
        assert_eq!(reg.by_kind(SourceKind::Protein).len(), 2);
        assert!(reg.by_kind(SourceKind::Assay).is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = SourceRegistry::new();
        reg.register(protein("a")).unwrap();
        assert!(matches!(
            reg.register(protein("a")),
            Err(SourceError::DuplicateSource(_))
        ));
    }

    #[test]
    fn replica_groups() {
        let mut reg = SourceRegistry::new();
        reg.register(protein("a")).unwrap();
        reg.register(protein("b")).unwrap();
        assert!(reg.declare_replicas(vec!["a".into()]).is_err(), "too small");
        assert!(
            reg.declare_replicas(vec!["a".into(), "zz".into()]).is_err(),
            "unknown member"
        );
        reg.declare_replicas(vec!["a".into(), "b".into()]).unwrap();
        assert_eq!(reg.replica_group_of("a").unwrap(), ["a", "b"]);
        assert_eq!(reg.replica_group_of("b").unwrap(), ["a", "b"]);
        assert!(reg.replica_group_of("c").is_none());
    }

    #[test]
    fn single_resolution() {
        let mut reg = SourceRegistry::new();
        assert!(reg.single(SourceKind::Protein).is_err());
        reg.register(protein("a")).unwrap();
        assert!(reg.single(SourceKind::Protein).is_ok());
        reg.register(protein("b")).unwrap();
        assert!(reg.single(SourceKind::Protein).is_err(), "ambiguous");
    }
}
