//! Request batching and coalescing (design decision D3).
//!
//! The dominant "lag" the paper complains about comes from issuing one
//! round-trip per tree leaf. The batcher turns `k` key lookups into
//! `⌈k / max_batch⌉` requests, dedupes keys, and can model the batches
//! being dispatched concurrently (cost = max) or sequentially
//! (cost = sum).

use crate::clock::{parallel_cost, sequential_cost};
use crate::source::{DataSource, FetchRequest, FetchResponse};
use crate::{Result, SourceError};
use drugtree_store::expr::Predicate;
use drugtree_store::value::Value;
use std::time::Duration;

/// How transient failures of individual requests are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }
}

/// Issue one request, retrying transient failures per the policy.
/// Returns the response with the failed attempts' timeout + backoff
/// added to its cost, plus the number of retries performed.
pub fn fetch_with_retry(
    source: &dyn DataSource,
    request: &FetchRequest,
    retry: RetryPolicy,
) -> Result<(FetchResponse, u32)> {
    let mut wasted = Duration::ZERO;
    let mut attempt = 0u32;
    loop {
        match source.fetch(request) {
            Ok(mut resp) => {
                resp.cost += wasted;
                return Ok((resp, attempt));
            }
            Err(SourceError::Transient { cost, .. }) if attempt + 1 < retry.max_attempts.max(1) => {
                // The failed attempt's timeout, then exponential
                // backoff before trying again — both serial.
                wasted += cost + retry.base_backoff * 2u32.pow(attempt);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// How multiple batches are dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// One batch at a time; total cost is the sum.
    Sequential,
    /// All batches in flight together; total cost is the max.
    Concurrent,
}

/// The combined result of a batched fetch.
#[derive(Debug, Clone)]
pub struct BatchedResponse {
    /// Returned column names.
    pub columns: Vec<String>,
    /// All rows across batches.
    pub rows: Vec<Vec<Value>>,
    /// Number of successful round-trips issued.
    pub requests: usize,
    /// Transient failures retried along the way.
    pub retries: u32,
    /// Combined simulated cost under the chosen dispatch mode
    /// (including failed attempts' timeouts and backoffs).
    pub cost: Duration,
}

/// Fetch `keys` from `source`, batching up to the source's
/// `max_batch`, with an optional pushdown predicate applied to every
/// batch.
pub fn batched_lookup(
    source: &dyn DataSource,
    keys: &[Value],
    predicate: Option<&Predicate>,
    dispatch: Dispatch,
) -> Result<BatchedResponse> {
    batched_lookup_with_retry(source, keys, predicate, dispatch, RetryPolicy::none())
}

/// [`batched_lookup`] with per-request transient-failure retries.
pub fn batched_lookup_with_retry(
    source: &dyn DataSource,
    keys: &[Value],
    predicate: Option<&Predicate>,
    dispatch: Dispatch,
    retry: RetryPolicy,
) -> Result<BatchedResponse> {
    // Dedupe while preserving order (mobile drill-downs repeat keys).
    let mut seen = std::collections::HashSet::with_capacity(keys.len());
    let unique: Vec<Value> = keys
        .iter()
        .filter(|k| seen.insert((*k).clone()))
        .cloned()
        .collect();

    let max_batch = source.capabilities().max_batch.max(1);
    let mut responses: Vec<FetchResponse> = Vec::new();
    let mut retries = 0u32;
    for chunk in unique.chunks(max_batch) {
        let mut req = FetchRequest::lookup(chunk.to_vec());
        if let Some(p) = predicate {
            req = req.with_predicate(p.clone());
        }
        let (resp, r) = fetch_with_retry(source, &req, retry)?;
        retries += r;
        responses.push(resp);
    }

    let requests = responses.len();
    let cost = match dispatch {
        Dispatch::Sequential => sequential_cost(responses.iter().map(|r| r.cost)),
        Dispatch::Concurrent => parallel_cost(responses.iter().map(|r| r.cost)),
    };
    let columns = responses
        .first()
        .map(|r| r.columns.clone())
        .unwrap_or_default();
    let rows = responses.into_iter().flat_map(|r| r.rows).collect();
    Ok(BatchedResponse {
        columns,
        rows,
        requests,
        retries,
        cost,
    })
}

/// The naive access path the optimizer compares against: one request
/// per key, sequential. This is what an unoptimized DrugTree did and
/// why the tree "lagged".
pub fn singleton_lookups(
    source: &dyn DataSource,
    keys: &[Value],
    predicate: Option<&Predicate>,
) -> Result<BatchedResponse> {
    singleton_lookups_with_retry(source, keys, predicate, RetryPolicy::none())
}

/// [`singleton_lookups`] with per-request transient-failure retries.
pub fn singleton_lookups_with_retry(
    source: &dyn DataSource,
    keys: &[Value],
    predicate: Option<&Predicate>,
    retry: RetryPolicy,
) -> Result<BatchedResponse> {
    let mut rows = Vec::new();
    let mut columns = Vec::new();
    let mut cost = Duration::ZERO;
    let mut requests = 0;
    let mut retries = 0u32;
    for key in keys {
        let mut req = FetchRequest::lookup(vec![key.clone()]);
        if let Some(p) = predicate {
            req = req.with_predicate(p.clone());
        }
        let (resp, r) = fetch_with_retry(source, &req, retry)?;
        requests += 1;
        retries += r;
        cost += resp.cost;
        if columns.is_empty() {
            columns = resp.columns;
        }
        rows.extend(resp.rows);
    }
    Ok(BatchedResponse {
        columns,
        rows,
        requests,
        retries,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::source::{SimulatedSource, SourceCapabilities, SourceKind};
    use drugtree_store::schema::{Column, Schema};
    use drugtree_store::table::Table;
    use drugtree_store::value::ValueType;

    fn source(max_batch: usize, n_rows: i64) -> SimulatedSource {
        let schema = Schema::new(vec![
            Column::required("k", ValueType::Int),
            Column::required("v", ValueType::Int),
        ]);
        let mut t = Table::new("t", schema);
        for i in 0..n_rows {
            t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        SimulatedSource::new(
            "s",
            SourceKind::Assay,
            t,
            "k",
            SourceCapabilities {
                max_batch,
                ..SourceCapabilities::full()
            },
            LatencyModel {
                base_rtt: Duration::from_millis(100),
                per_row: Duration::from_millis(1),
                per_row_scanned: Duration::ZERO,
                jitter: 0.0,
                seed: 0,
            },
        )
        .unwrap()
    }

    fn keys(n: i64) -> Vec<Value> {
        (0..n).map(Value::Int).collect()
    }

    #[test]
    fn batching_reduces_round_trips() {
        let s = source(10, 30);
        let batched = batched_lookup(&s, &keys(30), None, Dispatch::Sequential).unwrap();
        assert_eq!(batched.requests, 3);
        assert_eq!(batched.rows.len(), 30);
        // 3 * (100ms + 10 rows * 1ms) = 330ms.
        assert_eq!(batched.cost, Duration::from_millis(330));

        let naive = singleton_lookups(&s, &keys(30), None).unwrap();
        assert_eq!(naive.requests, 30);
        // 30 * 101ms.
        assert_eq!(naive.cost, Duration::from_millis(3030));
        assert_eq!(naive.rows.len(), 30);
        assert!(batched.cost < naive.cost);
    }

    #[test]
    fn concurrent_dispatch_takes_max() {
        let s = source(10, 30);
        let resp = batched_lookup(&s, &keys(30), None, Dispatch::Concurrent).unwrap();
        assert_eq!(resp.requests, 3);
        // max over three equal-cost batches.
        assert_eq!(resp.cost, Duration::from_millis(110));
    }

    #[test]
    fn duplicate_keys_deduped() {
        let s = source(10, 5);
        let mut ks = keys(5);
        ks.extend(keys(5));
        let resp = batched_lookup(&s, &ks, None, Dispatch::Sequential).unwrap();
        assert_eq!(resp.requests, 1);
        assert_eq!(resp.rows.len(), 5);
    }

    #[test]
    fn empty_key_set_costs_nothing() {
        let s = source(10, 5);
        let resp = batched_lookup(&s, &[], None, Dispatch::Sequential).unwrap();
        assert_eq!(resp.requests, 0);
        assert_eq!(resp.cost, Duration::ZERO);
        assert!(resp.rows.is_empty());
    }

    #[test]
    fn predicate_applies_to_every_batch() {
        use drugtree_store::expr::CompareOp;
        let s = source(2, 10);
        let pred = Predicate::cmp("v", CompareOp::Ge, 50i64);
        let resp = batched_lookup(&s, &keys(10), Some(&pred), Dispatch::Sequential).unwrap();
        assert_eq!(resp.requests, 5);
        assert_eq!(resp.rows.len(), 5); // v = 50..90
        let naive = singleton_lookups(&s, &keys(10), Some(&pred)).unwrap();
        assert_eq!(naive.rows.len(), 5);
    }

    #[test]
    fn retry_recovers_and_charges_wasted_time() {
        use crate::flaky::FlakySource;
        use std::sync::Arc;
        // Fail roughly half the requests; retries must recover every
        // key and surface the wasted time in the cost.
        let flaky = Arc::new(FlakySource::new(
            Arc::new(source(10, 20)),
            0.5,
            Duration::from_millis(500),
            13,
        ));
        let retry = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
        };
        let resp =
            batched_lookup_with_retry(flaky.as_ref(), &keys(20), None, Dispatch::Sequential, retry)
                .unwrap();
        assert_eq!(resp.rows.len(), 20);
        assert!(resp.retries > 0, "some requests must have been retried");
        // Two clean batches would cost 2*(100 + 10*1) = 220ms; retries
        // add at least one 500ms timeout.
        assert!(
            resp.cost > Duration::from_millis(700),
            "cost {:?}",
            resp.cost
        );
        assert!(flaky.failures() as u32 == resp.retries);
    }

    #[test]
    fn retry_none_propagates_first_failure() {
        use crate::flaky::FlakySource;
        use std::sync::Arc;
        let flaky = Arc::new(FlakySource::new(
            Arc::new(source(10, 5)),
            1.0,
            Duration::from_millis(10),
            1,
        ));
        let err = singleton_lookups(flaky.as_ref(), &keys(5), None).unwrap_err();
        assert!(matches!(err, SourceError::Transient { .. }));
        assert_eq!(flaky.attempts(), 1, "no retries without a policy");
    }

    #[test]
    fn exhausted_retries_fail() {
        use crate::flaky::FlakySource;
        use std::sync::Arc;
        let flaky = Arc::new(FlakySource::new(
            Arc::new(source(10, 5)),
            1.0,
            Duration::from_millis(10),
            1,
        ));
        let retry = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
        };
        let err =
            fetch_with_retry(flaky.as_ref(), &FetchRequest::lookup(keys(1)), retry).unwrap_err();
        assert!(matches!(err, SourceError::Transient { .. }));
        assert_eq!(flaky.attempts(), 4);
    }

    #[test]
    fn respects_source_batch_limit() {
        let s = source(1, 4);
        let resp = batched_lookup(&s, &keys(4), None, Dispatch::Sequential).unwrap();
        assert_eq!(resp.requests, 4, "max_batch=1 degenerates to singletons");
    }
}
