//! Error type for the source layer.

use std::fmt;

/// Errors from source fetches and federation.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a
/// wildcard arm so new failure kinds can be added without a breaking
/// release. Wrapped lower-layer errors are reachable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SourceError {
    /// The source cannot evaluate the requested pushdown.
    UnsupportedPushdown {
        /// Source name.
        source: String,
        /// Rejected predicate rendering.
        reason: String,
    },
    /// A batch exceeded the source's maximum batch size.
    BatchTooLarge {
        /// Source name.
        source: String,
        /// Maximum accepted keys per request.
        max: usize,
        /// Keys supplied.
        got: usize,
    },
    /// No source with that name/kind is registered.
    UnknownSource(String),
    /// A source with the same name is already registered.
    DuplicateSource(String),
    /// Underlying store failure surfaced through the source.
    Store(drugtree_store::StoreError),
    /// A record offered to a source failed chemistry-level validation.
    Record(drugtree_chem::ChemError),
    /// A schema-mapping adapter wrapped around the source failed.
    Adapter(String),
    /// The cross-session serving layer detected an invariant violation
    /// or a malformed coalesced response.
    Serve(String),
    /// The source does not accept ingests (named source).
    IngestRejected(String),
    /// A transient failure (timeout/503): safe to retry. Carries the
    /// virtual cost the failed attempt burned.
    Transient {
        /// Source name.
        source: String,
        /// Virtual time the failed attempt cost.
        cost: std::time::Duration,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::UnsupportedPushdown { source, reason } => {
                write!(f, "source {source:?} cannot push down predicate: {reason}")
            }
            SourceError::BatchTooLarge { source, max, got } => {
                write!(f, "source {source:?} accepts batches of {max}, got {got}")
            }
            SourceError::UnknownSource(name) => write!(f, "unknown source {name:?}"),
            SourceError::DuplicateSource(name) => {
                write!(f, "source {name:?} already registered")
            }
            SourceError::Store(e) => write!(f, "store error: {e}"),
            SourceError::Record(e) => write!(f, "invalid record: {e}"),
            SourceError::Adapter(msg) => write!(f, "adapter error: {msg}"),
            SourceError::Serve(msg) => write!(f, "serving error: {msg}"),
            SourceError::IngestRejected(name) => {
                write!(f, "source {name:?} does not accept ingests")
            }
            SourceError::Transient { source, cost } => {
                write!(f, "transient failure at {source:?} after {cost:?}")
            }
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Store(e) => Some(e),
            SourceError::Record(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drugtree_store::StoreError> for SourceError {
    fn from(e: drugtree_store::StoreError) -> SourceError {
        SourceError::Store(e)
    }
}

impl From<drugtree_chem::ChemError> for SourceError {
    fn from(e: drugtree_chem::ChemError) -> SourceError {
        SourceError::Record(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SourceError::BatchTooLarge {
            source: "chembl".into(),
            max: 50,
            got: 80,
        };
        assert!(e.to_string().contains("50"));
        assert!(e.to_string().contains("80"));
    }
}
