//! Cross-session fetch coordination: single-flight deduplication and
//! batch coalescing across concurrently executing queries.
//!
//! With many mobile sessions sharing one executor, the federation sees
//! *redundant* traffic two ways:
//!
//! * **Identical fetches** — two sessions expand the same clade at the
//!   same moment. Both need the same `(source, keys, pushdown)`
//!   request; issuing it twice doubles the round-trips for zero new
//!   information. The *single-flight* table coalesces them: the first
//!   caller becomes the leader and actually talks to the source, every
//!   concurrent identical caller waits and receives a copy of the
//!   broadcast result, and the group is charged one round-trip.
//! * **Overlapping key sets** — two sessions expand *sibling* clades.
//!   The key sets differ, so single-flight cannot help, but both
//!   fetches target the same source under the same pushdown predicate
//!   and the source accepts up to `max_batch` keys per request. The
//!   *batch coalescer* holds the first fetch open for a bounded delay
//!   (a fixed number of scheduler yields, never a wall-clock sleep —
//!   the latency model is virtual, D5), merges every key set that
//!   arrives in the window into shared requests, and splits the
//!   virtual cost across the beneficiaries in proportion to the keys
//!   each contributed.
//!
//! Both layers preserve results exactly: a coalesced participant
//! receives precisely the rows a solo fetch of its own key set under
//! the same predicate would have returned. Two runtime invariants are
//! validated on every coalesced dispatch (see [`validate_coalesced`])
//! and mirrored into the query-layer plan validator's rule namespace:
//!
//! * [`RULE_COALESCE_BATCH`] — no merged request may exceed the
//!   source's `max_batch` capability.
//! * [`RULE_FLIGHT_PREDICATE`] — a shared request never mixes
//!   incompatible pushdown predicates (all participants fetched under
//!   the byte-identical predicate key).

use crate::batcher::{batched_lookup_with_retry, Dispatch, RetryPolicy};
use crate::source::DataSource;
use crate::sync::{Condvar, Mutex};
use crate::{Result, SourceError};
use drugtree_store::expr::Predicate;
use drugtree_store::value::Value;
use rustc_hash::FxHashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Rule name: a coalesced request never exceeds the source batch cap.
pub const RULE_COALESCE_BATCH: &str = "coalesce-batch-limit";
/// Rule name: a shared request never mixes incompatible predicates.
pub const RULE_FLIGHT_PREDICATE: &str = "flight-predicate-uniform";

/// One violated serving invariant (mirrors the plan validator's
/// structured-violation shape; the query layer adapts it into an
/// `InvariantViolation`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeViolation {
    /// The invariant's rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation of what is wrong.
    pub explanation: String,
}

/// Tuning for the coordination layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Coalesce concurrent identical fetches onto one request.
    pub single_flight: bool,
    /// Merge overlapping key sets into shared batches.
    pub coalesce: bool,
    /// Bounded accumulation delay for the batch coalescer, expressed
    /// in scheduler yields (not wall time: simulated latency lives on
    /// the virtual clock, so the only real time worth spending is a
    /// few context switches to let concurrent queries catch the bus).
    pub delay_yields: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            single_flight: true,
            coalesce: true,
            delay_yields: 64,
        }
    }
}

/// Snapshot of the coordinator's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Fetches that led an upstream request (flight leaders).
    pub flights_led: u64,
    /// Fetches that joined an identical in-flight request.
    pub flights_joined: u64,
    /// Coalesced batches dispatched.
    pub batches: u64,
    /// Fetches that rode another query's batch.
    pub batch_joins: u64,
    /// Keys shipped in coalesced batches.
    pub keys_coalesced: u64,
    /// Upstream requests actually issued.
    pub requests_issued: u64,
}

#[derive(Default)]
struct Counters {
    flights_led: AtomicU64,
    flights_joined: AtomicU64,
    batches: AtomicU64,
    batch_joins: AtomicU64,
    keys_coalesced: AtomicU64,
    requests_issued: AtomicU64,
}

/// What one coordinated fetch produced for its caller.
#[derive(Debug, Clone)]
pub struct CoordinatedFetch {
    /// Returned column names.
    pub columns: Vec<String>,
    /// Rows for *this caller's* keys only (a coalesced batch's rows
    /// are split back per participant).
    pub rows: Vec<Vec<Value>>,
    /// Upstream round-trips this call itself issued (0 for joiners).
    pub requests: usize,
    /// Transient failures retried along the way (leader only).
    pub retries: u32,
    /// Full virtual cost of the upstream request(s) this call rode on.
    pub cost: Duration,
    /// This caller's share of that cost: the full cost for a solo
    /// fetch, a keys-proportional share of a coalesced batch, or the
    /// leader's share when joining an identical flight.
    pub charged: Duration,
    /// True for exactly one beneficiary per upstream request: that
    /// caller advances the shared virtual clock by `cost`.
    pub advance: bool,
    /// This call joined an identical in-flight request.
    pub flight_joined: bool,
    /// Other concurrent queries sharing the coalesced batch.
    pub shared_with: usize,
}

/// Result broadcast to single-flight joiners.
#[derive(Debug, Clone)]
struct FlightResult {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    cost: Duration,
    charged: Duration,
    shared_with: usize,
}

struct FlightSlot {
    done: Mutex<Option<std::result::Result<FlightResult, SourceError>>>,
    cv: Condvar,
}

/// Identity of an in-flight fetch: same source, same key set, same
/// pushdown predicate (byte-identical rendering).
#[derive(Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    source: String,
    pred: String,
    keys: Vec<Value>,
}

#[derive(Debug)]
enum BatchPhase {
    /// Accepting participants.
    Forming,
    /// Dispatched (or failed); `outcome` is set.
    Done,
}

struct BatchState {
    phase: BatchPhase,
    /// Each participant's key set, leader first.
    participants: Vec<Vec<Value>>,
    outcome: Option<std::result::Result<BatchOutcome, SourceError>>,
}

struct BatchOutcome {
    columns: Vec<String>,
    /// Rows split back per participant, index-aligned with
    /// `BatchState::participants`.
    rows_by_participant: Vec<Vec<Vec<Value>>>,
    /// Keys-proportional cost shares, index-aligned.
    shares: Vec<Duration>,
    cost: Duration,
    participants: usize,
}

struct BatchSlot {
    state: Mutex<BatchState>,
    cv: Condvar,
}

/// Stable per-process identity of a pushdown predicate. Fetches only
/// share a request when their predicate keys are byte-identical —
/// sound (never mixes incompatible filters) and cheap, at the price of
/// missing semantically equal but differently shaped predicates.
pub fn pred_key(pushdown: Option<&Predicate>) -> String {
    match pushdown {
        None => "∅".to_string(),
        Some(p) => format!("{p:?}"),
    }
}

/// Check the serving invariants of one coalesced dispatch.
///
/// `participant_preds` are the predicate keys of every query merged
/// into the batch; `request_sizes` the key counts of the upstream
/// requests about to be issued; `max_batch` the source's live
/// capability.
pub fn validate_coalesced(
    participant_preds: &[String],
    request_sizes: &[usize],
    max_batch: usize,
) -> Vec<ServeViolation> {
    let mut out = Vec::new();
    if let Some(first) = participant_preds.first() {
        for (i, p) in participant_preds.iter().enumerate() {
            if p != first {
                out.push(ServeViolation {
                    rule: RULE_FLIGHT_PREDICATE,
                    explanation: format!(
                        "participant {i} fetched under predicate {p:?} but the \
                         batch was formed under {first:?}"
                    ),
                });
            }
        }
    }
    for (i, size) in request_sizes.iter().enumerate() {
        if *size > max_batch {
            out.push(ServeViolation {
                rule: RULE_COALESCE_BATCH,
                explanation: format!(
                    "coalesced request {i} carries {size} keys but the source \
                     accepts at most {max_batch}"
                ),
            });
        }
    }
    out
}

/// The cross-session fetch coordinator: single-flight table plus
/// per-(source, predicate) batch accumulators. One instance fronts
/// the federation for every session sharing an executor.
pub struct FetchCoordinator {
    config: ServeConfig,
    flights: Mutex<FxHashMap<FlightKey, Arc<FlightSlot>>>,
    batches: Mutex<FxHashMap<(String, String), Arc<BatchSlot>>>,
    counters: Counters,
    /// Keys per dispatched coalesced batch, recorded lock-free so the
    /// observability layer (D9) can report batch-shape distributions.
    batch_sizes: crate::telemetry::FixedHistogram,
}

impl FetchCoordinator {
    /// A coordinator with the given tuning.
    pub fn new(config: ServeConfig) -> FetchCoordinator {
        FetchCoordinator {
            config,
            flights: Mutex::new(FxHashMap::default()),
            batches: Mutex::new(FxHashMap::default()),
            counters: Counters::default(),
            batch_sizes: crate::telemetry::FixedHistogram::size_buckets(),
        }
    }

    /// Distribution of keys per dispatched coalesced batch.
    pub fn batch_size_histogram(&self) -> crate::telemetry::HistogramSnapshot {
        self.batch_sizes.snapshot()
    }

    /// The tuning in effect.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Cumulative counters (lock-free).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            flights_led: self.counters.flights_led.load(Ordering::Relaxed),
            flights_joined: self.counters.flights_joined.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batch_joins: self.counters.batch_joins.load(Ordering::Relaxed),
            keys_coalesced: self.counters.keys_coalesced.load(Ordering::Relaxed),
            requests_issued: self.counters.requests_issued.load(Ordering::Relaxed),
        }
    }

    /// Fetch `keys` from `source` under `pushdown`, riding or leading
    /// shared requests where concurrency allows. Returns exactly the
    /// rows a solo [`batched_lookup_with_retry`] of the same arguments
    /// would return.
    pub fn fetch(
        &self,
        source: &dyn DataSource,
        keys: &[Value],
        pushdown: Option<&Predicate>,
        dispatch: Dispatch,
        retry: RetryPolicy,
    ) -> Result<CoordinatedFetch> {
        if !self.config.single_flight {
            return self.coalesced_fetch(source, keys, pushdown, dispatch, retry);
        }
        let key = FlightKey {
            source: source.name().to_string(),
            pred: pred_key(pushdown),
            keys: keys.to_vec(),
        };
        let slot = {
            let mut flights = self.flights.lock();
            match flights.get(&key) {
                Some(slot) => Some(Arc::clone(slot)),
                None => {
                    flights.insert(
                        key.clone(),
                        Arc::new(FlightSlot {
                            done: Mutex::new(None),
                            cv: Condvar::new(),
                        }),
                    );
                    None
                }
            }
        };

        if let Some(slot) = slot {
            // Joiner: wait for the leader's broadcast.
            let mut done = slot.done.lock();
            while done.is_none() {
                slot.cv.wait(&mut done);
            }
            self.counters.flights_joined.fetch_add(1, Ordering::Relaxed);
            let shared = match done.as_ref() {
                Some(Ok(r)) => Ok(r.clone()),
                Some(Err(e)) => Err(e.clone()),
                None => unreachable!("loop exits only when set"),
            };
            return match shared {
                Ok(r) => Ok(CoordinatedFetch {
                    columns: r.columns,
                    rows: r.rows,
                    requests: 0,
                    retries: 0,
                    cost: r.cost,
                    charged: r.charged,
                    advance: false,
                    flight_joined: true,
                    shared_with: r.shared_with,
                }),
                Err(e) => Err(e),
            };
        }

        // Leader: do the (possibly coalesced) fetch, then broadcast.
        self.counters.flights_led.fetch_add(1, Ordering::Relaxed);
        let outcome = self.coalesced_fetch(source, keys, pushdown, dispatch, retry);
        let broadcast = match &outcome {
            Ok(cf) => Ok(FlightResult {
                columns: cf.columns.clone(),
                rows: cf.rows.clone(),
                cost: cf.cost,
                charged: cf.charged,
                shared_with: cf.shared_with,
            }),
            Err(e) => Err(e.clone()),
        };
        let slot = self.flights.lock().remove(&key);
        if let Some(slot) = slot {
            *slot.done.lock() = Some(broadcast);
            slot.cv.notify_all();
        }
        outcome
    }

    /// The coalescing layer: lead a new batch or ride a forming one.
    fn coalesced_fetch(
        &self,
        source: &dyn DataSource,
        keys: &[Value],
        pushdown: Option<&Predicate>,
        dispatch: Dispatch,
        retry: RetryPolicy,
    ) -> Result<CoordinatedFetch> {
        if !self.config.coalesce || keys.is_empty() {
            let resp = batched_lookup_with_retry(source, keys, pushdown, dispatch, retry)?;
            self.counters
                .requests_issued
                .fetch_add(resp.requests as u64, Ordering::Relaxed);
            return Ok(CoordinatedFetch {
                columns: resp.columns,
                rows: resp.rows,
                requests: resp.requests,
                retries: resp.retries,
                cost: resp.cost,
                charged: resp.cost,
                advance: true,
                flight_joined: false,
                shared_with: 0,
            });
        }

        let bkey = (source.name().to_string(), pred_key(pushdown));
        let (slot, my_index) = {
            let mut batches = self.batches.lock();
            match batches.get(&bkey) {
                Some(slot) => {
                    // The map only holds Forming slots (closing removes
                    // the entry under this same map lock), so joining
                    // cannot race a dispatch.
                    let slot = Arc::clone(slot);
                    let mut st = slot.state.lock();
                    debug_assert!(matches!(st.phase, BatchPhase::Forming));
                    st.participants.push(keys.to_vec());
                    let idx = st.participants.len() - 1;
                    drop(st);
                    (slot, idx)
                }
                None => {
                    let slot = Arc::new(BatchSlot {
                        state: Mutex::new(BatchState {
                            phase: BatchPhase::Forming,
                            participants: vec![keys.to_vec()],
                            outcome: None,
                        }),
                        cv: Condvar::new(),
                    });
                    batches.insert(bkey.clone(), Arc::clone(&slot));
                    (slot, 0)
                }
            }
        };

        if my_index > 0 {
            return self.await_batch(&slot, my_index);
        }
        self.lead_batch(&bkey, &slot, source, pushdown, dispatch, retry)
    }

    /// Wait for the batch leader's dispatch and take our split.
    fn await_batch(&self, slot: &BatchSlot, my_index: usize) -> Result<CoordinatedFetch> {
        let mut st = slot.state.lock();
        while st.outcome.is_none() {
            slot.cv.wait(&mut st);
        }
        self.counters.batch_joins.fetch_add(1, Ordering::Relaxed);
        match st.outcome.as_ref() {
            Some(Ok(o)) => Ok(CoordinatedFetch {
                columns: o.columns.clone(),
                rows: o.rows_by_participant[my_index].clone(),
                requests: 0,
                retries: 0,
                cost: o.cost,
                charged: o.shares[my_index],
                advance: false,
                flight_joined: false,
                shared_with: o.participants - 1,
            }),
            Some(Err(e)) => Err(e.clone()),
            None => unreachable!("loop exits only when set"),
        }
    }

    /// Hold the batch open for the bounded delay, then dispatch the
    /// merged key set and split rows and cost back per participant.
    fn lead_batch(
        &self,
        bkey: &(String, String),
        slot: &Arc<BatchSlot>,
        source: &dyn DataSource,
        pushdown: Option<&Predicate>,
        dispatch: Dispatch,
        retry: RetryPolicy,
    ) -> Result<CoordinatedFetch> {
        let max_batch = source.capabilities().max_batch.max(1);
        // Bounded accumulation window: yield the scheduler a fixed
        // number of times, closing early once the key budget is full.
        for _ in 0..self.config.delay_yields {
            std::thread::yield_now();
            let st = slot.state.lock();
            let pending: usize = st.participants.iter().map(Vec::len).sum();
            if pending >= max_batch {
                break;
            }
        }
        // Close the batch: remove it from the map (so later fetches
        // form a new one) while marking it dispatched, atomically with
        // respect to joiners (they hold the map lock while enrolling).
        let participants = {
            let mut batches = self.batches.lock();
            let mut st = slot.state.lock();
            st.phase = BatchPhase::Done;
            batches.remove(bkey);
            st.participants.clone()
        };

        let outcome = self.dispatch_batch(&participants, source, pushdown, dispatch, retry);
        let mine = match &outcome {
            Ok(o) => Ok(CoordinatedFetch {
                columns: o.columns.clone(),
                rows: o.rows_by_participant[0].clone(),
                requests: o.requests,
                retries: o.retries,
                cost: o.cost,
                charged: o.shares[0],
                advance: true,
                flight_joined: false,
                shared_with: o.participants - 1,
            }),
            Err(e) => Err(e.clone()),
        };
        {
            let mut st = slot.state.lock();
            st.outcome = Some(match outcome {
                Ok(o) => Ok(o.into_state()),
                Err(e) => Err(e),
            });
        }
        slot.cv.notify_all();
        mine
    }

    /// Issue the merged request(s) and split the result.
    fn dispatch_batch(
        &self,
        participants: &[Vec<Value>],
        source: &dyn DataSource,
        pushdown: Option<&Predicate>,
        dispatch: Dispatch,
        retry: RetryPolicy,
    ) -> std::result::Result<DispatchedBatch, SourceError> {
        // Union of all key sets, order-preserving dedupe.
        let mut seen: HashSet<&Value> = HashSet::new();
        let union: Vec<Value> = participants
            .iter()
            .flatten()
            .filter(|k| seen.insert(*k))
            .cloned()
            .collect();
        let max_batch = source.capabilities().max_batch.max(1);

        // Runtime invariants before anything goes on the wire.
        let preds: Vec<String> = participants.iter().map(|_| pred_key(pushdown)).collect();
        let sizes: Vec<usize> = union.chunks(max_batch).map(<[Value]>::len).collect();
        let violations = validate_coalesced(&preds, &sizes, source.capabilities().max_batch);
        if let Some(v) = violations.first() {
            return Err(SourceError::Serve(format!(
                "invariant violated: [{}] {}",
                v.rule, v.explanation
            )));
        }

        let resp = batched_lookup_with_retry(source, &union, pushdown, dispatch, retry)?;
        self.batch_sizes.record(union.len() as u64);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .keys_coalesced
            .fetch_add(union.len() as u64, Ordering::Relaxed);
        self.counters
            .requests_issued
            .fetch_add(resp.requests as u64, Ordering::Relaxed);

        // Split rows back per participant by key-column membership:
        // each participant receives exactly the rows a solo fetch of
        // its keys would have returned.
        let key_idx = resp
            .columns
            .iter()
            .position(|c| c == source.key_column())
            .ok_or_else(|| {
                SourceError::Serve(format!(
                    "source {:?} response lacks its key column {:?}",
                    source.name(),
                    source.key_column()
                ))
            })?;
        let rows_by_participant: Vec<Vec<Vec<Value>>> = participants
            .iter()
            .map(|keys| {
                let mine: HashSet<&Value> = keys.iter().collect();
                resp.rows
                    .iter()
                    .filter(|r| r.get(key_idx).is_some_and(|k| mine.contains(k)))
                    .cloned()
                    .collect()
            })
            .collect();

        // Virtual-time accounting: split the batch cost across the
        // beneficiaries in proportion to the (deduplicated) keys each
        // brought. The shared clock still advances by the full cost
        // exactly once — these shares are what each *query* is charged.
        let weights: Vec<usize> = participants
            .iter()
            .map(|keys| {
                let mut s: HashSet<&Value> = HashSet::new();
                keys.iter().filter(|k| s.insert(*k)).count()
            })
            .collect();
        let total: usize = weights.iter().sum::<usize>().max(1);
        let shares: Vec<Duration> = weights
            .iter()
            .map(|w| resp.cost.mul_f64(*w as f64 / total as f64))
            .collect();

        Ok(DispatchedBatch {
            columns: resp.columns,
            rows_by_participant,
            shares,
            cost: resp.cost,
            retries: resp.retries,
            requests: resp.requests,
            participants: participants.len(),
        })
    }
}

/// A dispatched batch before it is stored for waiting participants.
struct DispatchedBatch {
    columns: Vec<String>,
    rows_by_participant: Vec<Vec<Vec<Value>>>,
    shares: Vec<Duration>,
    cost: Duration,
    retries: u32,
    requests: usize,
    participants: usize,
}

impl DispatchedBatch {
    fn into_state(self) -> BatchOutcome {
        BatchOutcome {
            columns: self.columns,
            rows_by_participant: self.rows_by_participant,
            shares: self.shares,
            cost: self.cost,
            participants: self.participants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::source::{SimulatedSource, SourceCapabilities, SourceKind};
    use drugtree_store::schema::{Column, Schema};
    use drugtree_store::table::Table;
    use drugtree_store::value::ValueType;
    use std::sync::Barrier;

    fn source(max_batch: usize, n_rows: i64) -> SimulatedSource {
        let schema = Schema::new(vec![
            Column::required("k", ValueType::Int),
            Column::required("v", ValueType::Int),
        ]);
        let mut t = Table::new("t", schema);
        for i in 0..n_rows {
            t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        SimulatedSource::new(
            "s",
            SourceKind::Assay,
            t,
            "k",
            SourceCapabilities {
                max_batch,
                ..SourceCapabilities::full()
            },
            LatencyModel {
                base_rtt: Duration::from_millis(100),
                per_row: Duration::from_millis(1),
                per_row_scanned: Duration::ZERO,
                jitter: 0.0,
                seed: 0,
            },
        )
        .unwrap()
    }

    fn keys(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::Int).collect()
    }

    #[test]
    fn solo_fetch_matches_batched_lookup() {
        let s = source(10, 20);
        let c = FetchCoordinator::new(ServeConfig::default());
        let cf = c
            .fetch(
                &s,
                &keys(0..15),
                None,
                Dispatch::Sequential,
                RetryPolicy::none(),
            )
            .unwrap();
        let direct = batched_lookup_with_retry(
            &s,
            &keys(0..15),
            None,
            Dispatch::Sequential,
            RetryPolicy::none(),
        )
        .unwrap();
        assert_eq!(cf.rows, direct.rows);
        assert_eq!(cf.requests, direct.requests);
        assert_eq!(cf.cost, direct.cost);
        assert_eq!(cf.charged, direct.cost, "solo fetch bears the full cost");
        assert!(cf.advance);
    }

    #[test]
    fn concurrent_overlapping_fetches_share_requests() {
        let s = Arc::new(source(100, 40));
        let c = Arc::new(FetchCoordinator::new(ServeConfig {
            delay_yields: 5_000,
            ..ServeConfig::default()
        }));
        let n = 4;
        let barrier = Arc::new(Barrier::new(n));
        let results: Vec<CoordinatedFetch> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let s = Arc::clone(&s);
                    let c = Arc::clone(&c);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        // Overlapping but distinct windows.
                        let ks = keys(i as i64 * 5..i as i64 * 5 + 10);
                        c.fetch(&*s, &ks, None, Dispatch::Sequential, RetryPolicy::none())
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every participant got exactly its own rows.
        for (i, cf) in results.iter().enumerate() {
            assert_eq!(cf.rows.len(), 10, "participant {i}");
            for r in &cf.rows {
                let k = r[0].as_int().unwrap();
                assert!((i as i64 * 5..i as i64 * 5 + 10).contains(&k));
            }
        }
        // Exactly one beneficiary advances the shared clock per
        // dispatched batch.
        let advancers = results.iter().filter(|r| r.advance).count();
        let stats = c.stats();
        assert_eq!(advancers as u64, stats.batches);
        assert!(
            stats.requests_issued <= n as u64,
            "coalescing must not issue more requests than naive ({} > {n})",
            stats.requests_issued
        );
    }

    #[test]
    fn validate_coalesced_flags_mixed_predicates_and_oversized_requests() {
        let v = validate_coalesced(&["a".to_string(), "b".to_string()], &[5, 12], 10);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, RULE_FLIGHT_PREDICATE);
        assert_eq!(v[1].rule, RULE_COALESCE_BATCH);
        assert!(v[1].explanation.contains("12"));
        assert!(validate_coalesced(&vec!["a".to_string(); 3], &[10], 10).is_empty());
    }

    #[test]
    fn cost_shares_sum_to_batch_cost() {
        let s = source(100, 30);
        let c = FetchCoordinator::new(ServeConfig::default());
        let parts = vec![keys(0..10), keys(5..25)];
        let o = c
            .dispatch_batch(&parts, &s, None, Dispatch::Sequential, RetryPolicy::none())
            .unwrap();
        assert_eq!(o.participants, 2);
        // Weights 10 and 20: shares split 1:2.
        assert_eq!(o.shares[0], o.cost.mul_f64(10.0 / 30.0));
        assert_eq!(o.shares[1], o.cost.mul_f64(20.0 / 30.0));
        let sum: Duration = o.shares.iter().sum();
        let drift = o.cost.abs_diff(sum);
        assert!(drift < Duration::from_micros(1));
        // Rows split exactly per participant.
        assert_eq!(o.rows_by_participant[0].len(), 10);
        assert_eq!(o.rows_by_participant[1].len(), 20);
    }

    #[test]
    fn disabled_layers_degenerate_to_plain_batched_lookup() {
        let s = source(10, 20);
        let c = FetchCoordinator::new(ServeConfig {
            single_flight: false,
            coalesce: false,
            delay_yields: 0,
        });
        let cf = c
            .fetch(
                &s,
                &keys(0..20),
                None,
                Dispatch::Sequential,
                RetryPolicy::none(),
            )
            .unwrap();
        assert_eq!(cf.requests, 2);
        assert_eq!(cf.rows.len(), 20);
        assert_eq!(c.stats().batches, 0);
        assert_eq!(c.stats().flights_led, 0);
    }

    #[test]
    fn pred_keys_distinguish_predicates() {
        use drugtree_store::expr::CompareOp;
        let a = Predicate::cmp("v", CompareOp::Ge, 50i64);
        let b = Predicate::cmp("v", CompareOp::Ge, 60i64);
        assert_ne!(pred_key(Some(&a)), pred_key(Some(&b)));
        assert_eq!(pred_key(Some(&a)), pred_key(Some(&a.clone())));
        assert_ne!(pred_key(Some(&a)), pred_key(None));
    }
}
