//! The UniProt-like protein source.

use crate::latency::LatencyModel;
use crate::source::{SimulatedSource, SourceCapabilities, SourceKind};
use crate::Result;
use drugtree_store::schema::{Column, Schema};
use drugtree_store::table::Table;
use drugtree_store::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// One protein record as served by the source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProteinRecord {
    /// Primary accession (the federation key, e.g. "P00533").
    pub accession: String,
    /// Recommended protein name.
    pub name: String,
    /// Source organism.
    pub organism: String,
    /// Amino-acid sequence (one-letter codes).
    pub sequence: String,
    /// Gene symbol, when annotated.
    pub gene: Option<String>,
}

/// Schema of the protein source.
pub fn protein_schema() -> Schema {
    Schema::new(vec![
        Column::required("accession", ValueType::Text),
        Column::required("name", ValueType::Text),
        Column::required("organism", ValueType::Text),
        Column::required("sequence", ValueType::Text),
        Column::nullable("gene", ValueType::Text),
    ])
}

/// Convert a record to a row in [`protein_schema`] order.
pub fn protein_row(r: &ProteinRecord) -> Vec<Value> {
    vec![
        Value::from(r.accession.clone()),
        Value::from(r.name.clone()),
        Value::from(r.organism.clone()),
        Value::from(r.sequence.clone()),
        r.gene.clone().map_or(Value::Null, Value::from),
    ]
}

/// Parse a fetched row back into a record.
pub fn protein_from_row(row: &[Value]) -> Option<ProteinRecord> {
    Some(ProteinRecord {
        accession: row.first()?.as_text()?.to_string(),
        name: row.get(1)?.as_text()?.to_string(),
        organism: row.get(2)?.as_text()?.to_string(),
        sequence: row.get(3)?.as_text()?.to_string(),
        gene: row.get(4).and_then(|v| v.as_text()).map(str::to_string),
    })
}

/// Build a protein source from records.
pub fn protein_source(
    name: impl Into<String>,
    records: &[ProteinRecord],
    capabilities: SourceCapabilities,
    latency: LatencyModel,
) -> Result<SimulatedSource> {
    let mut table = Table::new("proteins", protein_schema());
    for r in records {
        table.insert(protein_row(r))?;
    }
    SimulatedSource::new(
        name,
        SourceKind::Protein,
        table,
        "accession",
        capabilities,
        latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{DataSource, FetchRequest};

    fn records() -> Vec<ProteinRecord> {
        vec![
            ProteinRecord {
                accession: "P01".into(),
                name: "Kinase A".into(),
                organism: "Homo sapiens".into(),
                sequence: "MKVLAT".into(),
                gene: Some("KINA".into()),
            },
            ProteinRecord {
                accession: "P02".into(),
                name: "Kinase B".into(),
                organism: "Mus musculus".into(),
                sequence: "MKVLGT".into(),
                gene: None,
            },
        ]
    }

    #[test]
    fn roundtrip_through_source() {
        let src = protein_source(
            "uniprot-sim",
            &records(),
            SourceCapabilities::full(),
            LatencyModel::free(),
        )
        .unwrap();
        assert_eq!(src.kind(), SourceKind::Protein);
        assert_eq!(src.key_column(), "accession");
        let resp = src
            .fetch(&FetchRequest::lookup(vec![Value::from("P02")]))
            .unwrap();
        assert_eq!(resp.rows.len(), 1);
        let rec = protein_from_row(&resp.rows[0]).unwrap();
        assert_eq!(rec, records()[1]);
        assert_eq!(rec.gene, None);
    }

    #[test]
    fn from_row_rejects_malformed() {
        assert!(protein_from_row(&[Value::Int(1)]).is_none());
        assert!(protein_from_row(&[]).is_none());
    }
}
