//! Deterministic virtual clock.
//!
//! All simulated latencies (source round-trips, mobile network
//! transfers) are *charged* to a shared virtual clock instead of being
//! slept. This keeps the whole benchmark suite deterministic and lets
//! wall-clock benchmarks (Criterion) measure pure CPU cost while the
//! experiment harness reports virtual end-to-end latency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point on the virtual timeline, in nanoseconds since session start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VirtualInstant(pub u64);

impl VirtualInstant {
    /// Duration elapsed since an earlier instant (saturating).
    pub fn since(self, earlier: VirtualInstant) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for VirtualInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:?}", Duration::from_nanos(self.0))
    }
}

/// A shared, thread-safe virtual clock.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at t=0, wrapped for sharing.
    pub fn new() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::default())
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualInstant {
        VirtualInstant(self.nanos.load(Ordering::SeqCst))
    }

    /// Advance the clock by a duration, returning the new time.
    pub fn advance(&self, d: Duration) -> VirtualInstant {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        VirtualInstant(self.nanos.fetch_add(nanos, Ordering::SeqCst) + nanos)
    }

    /// Advance the clock to at least `target` (no-op if already past).
    /// Returns the resulting time. Used when modeling parallel requests:
    /// each branch computes its own completion instant and the caller
    /// advances to the maximum.
    pub fn advance_to(&self, target: VirtualInstant) -> VirtualInstant {
        let mut current = self.nanos.load(Ordering::SeqCst);
        while current < target.0 {
            match self
                .nanos
                .compare_exchange(current, target.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return target,
                Err(actual) => current = actual,
            }
        }
        VirtualInstant(current)
    }
}

/// The one sanctioned wall-clock read in the workspace.
///
/// Everything latency-related must charge the [`VirtualClock`] so runs
/// stay deterministic; the only legitimate uses of real time are
/// harness-side progress reports (how long did the *harness* take).
/// Those call this instead of `Instant::now()` directly, and the
/// `tools/lint.rs` clock lint rejects raw `Instant::now()` /
/// `SystemTime::now()` anywhere outside this file.
pub fn wall_now() -> std::time::Instant {
    std::time::Instant::now()
}

/// Combine the costs of requests issued *concurrently*: completion is
/// the maximum individual cost (all start together), not the sum.
pub fn parallel_cost(costs: impl IntoIterator<Item = Duration>) -> Duration {
    costs.into_iter().max().unwrap_or(Duration::ZERO)
}

/// Combine the costs of requests issued *sequentially*.
pub fn sequential_cost(costs: impl IntoIterator<Item = Duration>) -> Duration {
    costs.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), VirtualInstant(0));
        clock.advance(Duration::from_millis(5));
        clock.advance(Duration::from_micros(1));
        assert_eq!(clock.now(), VirtualInstant(5_001_000));
    }

    #[test]
    fn since_saturates() {
        let a = VirtualInstant(100);
        let b = VirtualInstant(40);
        assert_eq!(a.since(b), Duration::from_nanos(60));
        assert_eq!(b.since(a), Duration::ZERO);
    }

    #[test]
    fn advance_to_is_monotone() {
        let clock = VirtualClock::new();
        clock.advance(Duration::from_nanos(100));
        // Going backwards is a no-op.
        assert_eq!(clock.advance_to(VirtualInstant(50)), VirtualInstant(100));
        assert_eq!(clock.now(), VirtualInstant(100));
        // Going forwards jumps.
        assert_eq!(clock.advance_to(VirtualInstant(500)), VirtualInstant(500));
        assert_eq!(clock.now(), VirtualInstant(500));
    }

    #[test]
    fn parallel_vs_sequential() {
        let costs = [
            Duration::from_millis(10),
            Duration::from_millis(30),
            Duration::from_millis(20),
        ];
        assert_eq!(parallel_cost(costs), Duration::from_millis(30));
        assert_eq!(sequential_cost(costs), Duration::from_millis(60));
        assert_eq!(parallel_cost([]), Duration::ZERO);
        assert_eq!(sequential_cost([]), Duration::ZERO);
    }

    #[test]
    fn concurrent_advance_is_consistent() {
        let clock = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let clock = &clock;
                s.spawn(move || {
                    for _ in 0..1000 {
                        clock.advance(Duration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(clock.now(), VirtualInstant(4000));
    }
}
