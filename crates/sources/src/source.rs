//! The data-source abstraction and the generic simulated source.

use crate::latency::{LatencyModel, RequestCounter};
use crate::{Result, SourceError};
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::schema::Schema;
use drugtree_store::table::{IndexKind, Table};
use drugtree_store::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What a source holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Protein/sequence records (UniProt-like).
    Protein,
    /// Ligand/compound records (ChEMBL-like).
    Ligand,
    /// Assay/activity records (BindingDB-like).
    Assay,
}

/// What query shapes a source can evaluate remotely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceCapabilities {
    /// Equality predicates (`col = v`, `col IN (…)`).
    pub eq_pushdown: bool,
    /// Range predicates (`col < v`, `BETWEEN`).
    pub range_pushdown: bool,
    /// Maximum number of keys per batched lookup request.
    pub max_batch: usize,
}

impl SourceCapabilities {
    /// A fully capable source.
    pub fn full() -> SourceCapabilities {
        SourceCapabilities {
            eq_pushdown: true,
            range_pushdown: true,
            max_batch: 100,
        }
    }

    /// A dump-only source: no remote filtering, singleton lookups.
    pub fn minimal() -> SourceCapabilities {
        SourceCapabilities {
            eq_pushdown: false,
            range_pushdown: false,
            max_batch: 1,
        }
    }

    /// Whether the whole predicate can be evaluated remotely.
    pub fn supports_predicate(&self, pred: &Predicate) -> bool {
        match pred {
            Predicate::True => true,
            Predicate::Compare { op, .. } => match op {
                CompareOp::Eq => self.eq_pushdown,
                CompareOp::Ne => self.eq_pushdown,
                _ => self.range_pushdown,
            },
            Predicate::Between { .. } => self.range_pushdown,
            Predicate::InSet { .. } => self.eq_pushdown,
            // Conservative: NULL tests and arbitrary boolean structure
            // stay client-side except conjunctions of supported parts.
            Predicate::IsNull { .. } => false,
            Predicate::And(ps) => ps.iter().all(|p| self.supports_predicate(p)),
            Predicate::Or(_) | Predicate::Not(_) => false,
        }
    }
}

/// A fetch request sent to one source.
#[derive(Debug, Clone, Default)]
pub struct FetchRequest {
    /// Key-column lookups (batched). `None` means scan.
    pub keys: Option<Vec<Value>>,
    /// Predicate evaluated *at the source* (must be supported).
    pub predicate: Option<Predicate>,
    /// Columns to return; `None` = all.
    pub projection: Option<Vec<String>>,
}

impl FetchRequest {
    /// A full-scan request.
    pub fn scan() -> FetchRequest {
        FetchRequest::default()
    }

    /// A batched key lookup.
    pub fn lookup(keys: Vec<Value>) -> FetchRequest {
        FetchRequest {
            keys: Some(keys),
            ..FetchRequest::default()
        }
    }

    /// Attach a pushdown predicate.
    pub fn with_predicate(mut self, pred: Predicate) -> FetchRequest {
        self.predicate = Some(pred);
        self
    }

    /// Attach a projection.
    pub fn with_projection(mut self, columns: Vec<String>) -> FetchRequest {
        self.projection = Some(columns);
        self
    }
}

/// The rows and simulated cost of one fetch.
#[derive(Debug, Clone)]
pub struct FetchResponse {
    /// Returned column names, in row order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows the source had to examine server-side.
    pub rows_scanned: usize,
    /// Simulated wall time of the request (charge to a clock).
    pub cost: Duration,
}

/// Cumulative per-source counters.
#[derive(Debug, Default)]
pub struct SourceMetrics {
    requests: AtomicU64,
    rows_returned: AtomicU64,
    busy_nanos: AtomicU64,
}

/// A snapshot of [`SourceMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests served.
    pub requests: u64,
    /// Total rows shipped.
    pub rows_returned: u64,
    /// Total simulated busy time.
    pub busy: Duration,
}

impl SourceMetrics {
    fn record(&self, rows: usize, cost: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.rows_returned.fetch_add(rows as u64, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Read the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rows_returned: self.rows_returned.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// A remote data source.
pub trait DataSource: Send + Sync {
    /// Unique source name.
    fn name(&self) -> &str;
    /// What the source holds.
    fn kind(&self) -> SourceKind;
    /// Record schema.
    fn schema(&self) -> &Schema;
    /// Name of the key column batched lookups address.
    fn key_column(&self) -> &str;
    /// Remote evaluation capabilities.
    fn capabilities(&self) -> SourceCapabilities;
    /// Execute one request.
    fn fetch(&self, request: &FetchRequest) -> Result<FetchResponse>;
    /// Cumulative counters.
    fn metrics(&self) -> MetricsSnapshot;
    /// Number of records currently held (used for planning statistics).
    fn record_count(&self) -> usize;
    /// The latency profile the mediator assumes for this source (a real
    /// deployment measures this; the simulation reports its model).
    fn latency_model(&self) -> LatencyModel;
    /// Append a record at the source (simulating the remote database
    /// receiving new depositions). Sources that cannot accept writes
    /// return an error; the default does.
    fn ingest(&self, _row: Vec<Value>) -> Result<()> {
        Err(SourceError::IngestRejected(self.name().to_string()))
    }
}

/// A table-backed simulated source with a latency model.
pub struct SimulatedSource {
    name: String,
    kind: SourceKind,
    table: parking_lot::RwLock<Table>,
    /// Copy of the table schema (immutable after construction), so
    /// `schema()` can hand out a reference without holding the lock.
    schema: Schema,
    key_column: String,
    capabilities: SourceCapabilities,
    latency: LatencyModel,
    counter: RequestCounter,
    metrics: SourceMetrics,
}

impl SimulatedSource {
    /// Build a source around a table. The key column gets a hash index
    /// so keyed lookups cost `O(matches)` server-side, mirroring a real
    /// service's primary-key access path.
    pub fn new(
        name: impl Into<String>,
        kind: SourceKind,
        mut table: Table,
        key_column: impl Into<String>,
        capabilities: SourceCapabilities,
        latency: LatencyModel,
    ) -> Result<SimulatedSource> {
        let key_column = key_column.into();
        // The schema must contain the key column.
        table.schema().column_index(&key_column)?;
        if !table.has_index(&key_column) {
            table.create_index(&key_column, IndexKind::Hash)?;
        }
        let schema = table.schema().clone();
        Ok(SimulatedSource {
            name: name.into(),
            kind,
            table: parking_lot::RwLock::new(table),
            schema,
            key_column,
            capabilities,
            latency,
            counter: RequestCounter::default(),
            metrics: SourceMetrics::default(),
        })
    }
}

impl DataSource for SimulatedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> SourceKind {
        self.kind
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn key_column(&self) -> &str {
        &self.key_column
    }

    fn capabilities(&self) -> SourceCapabilities {
        self.capabilities
    }

    fn fetch(&self, request: &FetchRequest) -> Result<FetchResponse> {
        let table = self.table.read();
        let schema = table.schema().clone();

        // Capability enforcement: a real service rejects filters it
        // cannot evaluate.
        if let Some(pred) = &request.predicate {
            if !self.capabilities.supports_predicate(pred) {
                return Err(SourceError::UnsupportedPushdown {
                    source: self.name.clone(),
                    reason: format!("{pred:?}"),
                });
            }
        }

        let bound = match &request.predicate {
            Some(p) => Some(p.bind(&schema)?),
            None => None,
        };

        let projection_idx: Option<Vec<usize>> = match &request.projection {
            Some(cols) => Some(
                cols.iter()
                    .map(|c| schema.column_index(c))
                    .collect::<std::result::Result<Vec<_>, _>>()?,
            ),
            None => None,
        };
        let columns: Vec<String> = match &request.projection {
            Some(cols) => cols.clone(),
            None => schema.columns().iter().map(|c| c.name.clone()).collect(),
        };

        let project = |row: &[Value]| match &projection_idx {
            Some(idx) => idx.iter().map(|&i| row[i].clone()).collect(),
            None => row.to_vec(),
        };

        let mut rows = Vec::new();
        let rows_scanned = match &request.keys {
            Some(keys) => {
                if keys.len() > self.capabilities.max_batch {
                    return Err(SourceError::BatchTooLarge {
                        source: self.name.clone(),
                        max: self.capabilities.max_batch,
                        got: keys.len(),
                    });
                }
                let mut matched = 0usize;
                for key in keys {
                    for id in table.lookup_eq(&self.key_column, key)? {
                        matched += 1;
                        let row = table.get(id)?;
                        if bound.as_ref().is_some_and(|p| !p.matches(row)) {
                            continue;
                        }
                        rows.push(project(row));
                    }
                }
                matched.max(keys.len())
            }
            None => {
                // Streamed full scan: no intermediate Vec<RowId>.
                let mut scanned = 0usize;
                for (_, row) in table.scan() {
                    scanned += 1;
                    if bound.as_ref().is_some_and(|p| !p.matches(row)) {
                        continue;
                    }
                    rows.push(project(row));
                }
                scanned
            }
        };

        let cost = self
            .latency
            .request_cost(rows_scanned, rows.len(), self.counter.next());
        self.metrics.record(rows.len(), cost);
        Ok(FetchResponse {
            columns,
            rows,
            rows_scanned,
            cost,
        })
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn record_count(&self) -> usize {
        self.table.read().len()
    }

    fn latency_model(&self) -> LatencyModel {
        self.latency.clone()
    }

    /// Appends a record (simulating a new remote deposition); used by
    /// the materialized-view staleness experiment.
    fn ingest(&self, row: Vec<Value>) -> Result<()> {
        self.table.write().insert(row)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_store::schema::Column;
    use drugtree_store::value::ValueType;

    fn sample_source(caps: SourceCapabilities) -> SimulatedSource {
        let schema = Schema::new(vec![
            Column::required("acc", ValueType::Text),
            Column::required("len", ValueType::Int),
        ]);
        let mut t = Table::new("proteins", schema);
        for (acc, len) in [("P1", 100i64), ("P2", 200), ("P3", 300)] {
            t.insert(vec![Value::from(acc), Value::Int(len)]).unwrap();
        }
        SimulatedSource::new(
            "uniprot-sim",
            SourceKind::Protein,
            t,
            "acc",
            caps,
            LatencyModel::free(),
        )
        .unwrap()
    }

    #[test]
    fn scan_returns_everything() {
        let s = sample_source(SourceCapabilities::full());
        let resp = s.fetch(&FetchRequest::scan()).unwrap();
        assert_eq!(resp.rows.len(), 3);
        assert_eq!(resp.rows_scanned, 3);
        assert_eq!(resp.columns, vec!["acc", "len"]);
        assert_eq!(s.record_count(), 3);
    }

    #[test]
    fn keyed_lookup() {
        let s = sample_source(SourceCapabilities::full());
        let resp = s
            .fetch(&FetchRequest::lookup(vec![
                Value::from("P2"),
                Value::from("P3"),
            ]))
            .unwrap();
        assert_eq!(resp.rows.len(), 2);
        // Keyed access examines only matches, not the whole table.
        assert_eq!(resp.rows_scanned, 2);
        // Missing keys return nothing but still count as probes.
        let resp = s
            .fetch(&FetchRequest::lookup(vec![Value::from("P9")]))
            .unwrap();
        assert!(resp.rows.is_empty());
        assert_eq!(resp.rows_scanned, 1);
    }

    #[test]
    fn pushdown_filters_remotely() {
        let s = sample_source(SourceCapabilities::full());
        let req = FetchRequest::scan().with_predicate(Predicate::cmp("len", CompareOp::Gt, 150i64));
        let resp = s.fetch(&req).unwrap();
        assert_eq!(resp.rows.len(), 2);
        assert_eq!(resp.rows_scanned, 3, "server still scanned everything");
    }

    #[test]
    fn pushdown_rejected_without_capability() {
        let s = sample_source(SourceCapabilities::minimal());
        let req = FetchRequest::scan().with_predicate(Predicate::eq("acc", "P1"));
        assert!(matches!(
            s.fetch(&req),
            Err(SourceError::UnsupportedPushdown { .. })
        ));
    }

    #[test]
    fn batch_limit_enforced() {
        let s = sample_source(SourceCapabilities {
            max_batch: 1,
            ..SourceCapabilities::full()
        });
        let err = s
            .fetch(&FetchRequest::lookup(vec![
                Value::from("P1"),
                Value::from("P2"),
            ]))
            .unwrap_err();
        assert!(matches!(
            err,
            SourceError::BatchTooLarge { max: 1, got: 2, .. }
        ));
    }

    #[test]
    fn projection() {
        let s = sample_source(SourceCapabilities::full());
        let resp = s
            .fetch(&FetchRequest::scan().with_projection(vec!["len".into()]))
            .unwrap();
        assert_eq!(resp.columns, vec!["len"]);
        assert!(resp.rows.iter().all(|r| r.len() == 1));
        let bad = s.fetch(&FetchRequest::scan().with_projection(vec!["bogus".into()]));
        assert!(bad.is_err());
    }

    #[test]
    fn metrics_accumulate() {
        let s = sample_source(SourceCapabilities::full());
        s.fetch(&FetchRequest::scan()).unwrap();
        s.fetch(&FetchRequest::lookup(vec![Value::from("P1")]))
            .unwrap();
        let m = s.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.rows_returned, 4);
    }

    #[test]
    fn capability_predicate_analysis() {
        let full = SourceCapabilities::full();
        let eq_only = SourceCapabilities {
            range_pushdown: false,
            ..SourceCapabilities::full()
        };
        let eq = Predicate::eq("a", 1i64);
        let range = Predicate::cmp("a", CompareOp::Lt, 1i64);
        let both = eq.clone().and(range.clone());
        assert!(full.supports_predicate(&both));
        assert!(eq_only.supports_predicate(&eq));
        assert!(!eq_only.supports_predicate(&range));
        assert!(!eq_only.supports_predicate(&both));
        assert!(!full.supports_predicate(&Predicate::Or(vec![eq.clone()])));
        assert!(!full.supports_predicate(&Predicate::IsNull { column: "a".into() }));
        assert!(full.supports_predicate(&Predicate::True));
    }

    #[test]
    fn ingest_visible_to_next_fetch() {
        let s = sample_source(SourceCapabilities::full());
        s.ingest(vec![Value::from("P4"), Value::Int(400)]).unwrap();
        let resp = s
            .fetch(&FetchRequest::lookup(vec![Value::from("P4")]))
            .unwrap();
        assert_eq!(resp.rows.len(), 1);
    }

    #[test]
    fn cost_charged_per_request() {
        let schema = Schema::new(vec![Column::required("k", ValueType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        let s = SimulatedSource::new(
            "slow",
            SourceKind::Assay,
            t,
            "k",
            SourceCapabilities::full(),
            LatencyModel {
                base_rtt: Duration::from_millis(10),
                per_row: Duration::from_millis(1),
                per_row_scanned: Duration::ZERO,
                jitter: 0.0,
                seed: 0,
            },
        )
        .unwrap();
        let resp = s.fetch(&FetchRequest::scan()).unwrap();
        assert_eq!(resp.cost, Duration::from_millis(20));
        assert_eq!(s.metrics().busy, Duration::from_millis(20));
    }
}
