#![warn(missing_docs)]

//! Simulated heterogeneous data sources for the DrugTree reproduction.
//!
//! The original system pulled protein, ligand, and assay records from
//! live web databases; reproducing that faithfully would make every
//! latency measurement non-deterministic. Instead (DESIGN.md §6), this
//! crate provides in-process sources that behave like remote services:
//!
//! * [`clock`] — a deterministic **virtual clock**; every simulated
//!   cost is charged here, never slept (design decision D5).
//! * [`latency`] — per-source latency models (RTT + per-row transfer +
//!   seeded jitter).
//! * [`source`] — the [`source::DataSource`] trait, fetch requests
//!   with capability-checked predicate pushdown, and the generic
//!   [`source::SimulatedSource`].
//! * [`protein_db`], [`ligand_db`], [`assay_db`] — the three concrete
//!   source shapes DrugTree federates (UniProt-, ChEMBL-, and
//!   BindingDB-like).
//! * [`batcher`] — request coalescing: k key lookups into ⌈k/B⌉
//!   round-trips (design decision D3).
//! * [`federation`] — the registry the mediator resolves sources from.
//! * [`serve`] — cross-session fetch coordination: single-flight
//!   deduplication of identical concurrent fetches plus bounded-delay
//!   batch coalescing across queries.
//! * [`flaky`] — failure injection: wrap any source to fail a
//!   deterministic fraction of requests transiently.
//! * [`sync`] — loom-swappable lock primitives for the serving stack
//!   (parking_lot normally, loom's instrumented types under
//!   `--cfg loom` for model checking).

pub mod assay_db;
pub mod batcher;
pub mod clock;
pub mod error;
pub mod federation;
pub mod flaky;
pub mod latency;
pub mod ligand_db;
pub mod protein_db;
pub mod sched;
pub mod serve;
pub mod source;
pub mod sync;
pub mod telemetry;

pub use clock::VirtualClock;
pub use error::SourceError;
pub use federation::SourceRegistry;
pub use latency::LatencyModel;
pub use sched::{EventQueue, EventQueueStats};
pub use source::{DataSource, FetchRequest, FetchResponse, SimulatedSource, SourceKind};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SourceError>;
