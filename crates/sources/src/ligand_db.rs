//! The ChEMBL-like ligand/compound source.

use crate::latency::LatencyModel;
use crate::source::{SimulatedSource, SourceCapabilities, SourceKind};
use crate::Result;
use drugtree_chem::descriptors::Descriptors;
use drugtree_chem::smiles::parse_smiles;
use drugtree_store::schema::{Column, Schema};
use drugtree_store::table::Table;
use drugtree_store::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// One ligand record as served by the source.
///
/// Descriptors are stored denormalized (as a compound database would),
/// so predicates like `mw < 500` can be pushed down without the client
/// re-deriving chemistry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LigandRecord {
    /// Compound identifier (the federation key, e.g. "CHEMBL25").
    pub ligand_id: String,
    /// Preferred name.
    pub name: String,
    /// Structure as SMILES.
    pub smiles: String,
    /// Molecular weight.
    pub molecular_weight: f64,
    /// Hydrogen-bond donors.
    pub hbd: u32,
    /// Hydrogen-bond acceptors.
    pub hba: u32,
    /// Ring count.
    pub rings: u32,
}

impl LigandRecord {
    /// Build a record from an identifier, name, and structure,
    /// computing the descriptor columns from the parsed molecule.
    pub fn from_smiles(
        ligand_id: impl Into<String>,
        name: impl Into<String>,
        smiles: impl Into<String>,
    ) -> drugtree_chem::Result<LigandRecord> {
        let smiles = smiles.into();
        let mol = parse_smiles(&smiles)?;
        let d = Descriptors::compute(&mol);
        Ok(LigandRecord {
            ligand_id: ligand_id.into(),
            name: name.into(),
            smiles,
            molecular_weight: d.molecular_weight,
            hbd: d.hbd,
            hba: d.hba,
            rings: d.rings,
        })
    }
}

/// Schema of the ligand source.
pub fn ligand_schema() -> Schema {
    Schema::new(vec![
        Column::required("ligand_id", ValueType::Text),
        Column::required("name", ValueType::Text),
        Column::required("smiles", ValueType::Text),
        Column::required("mw", ValueType::Float),
        Column::required("hbd", ValueType::Int),
        Column::required("hba", ValueType::Int),
        Column::required("rings", ValueType::Int),
    ])
}

/// Convert a record to a row in [`ligand_schema`] order.
pub fn ligand_row(r: &LigandRecord) -> Vec<Value> {
    vec![
        Value::from(r.ligand_id.clone()),
        Value::from(r.name.clone()),
        Value::from(r.smiles.clone()),
        Value::Float(r.molecular_weight),
        Value::from(r.hbd),
        Value::from(r.hba),
        Value::from(r.rings),
    ]
}

/// Parse a fetched row back into a record.
pub fn ligand_from_row(row: &[Value]) -> Option<LigandRecord> {
    Some(LigandRecord {
        ligand_id: row.first()?.as_text()?.to_string(),
        name: row.get(1)?.as_text()?.to_string(),
        smiles: row.get(2)?.as_text()?.to_string(),
        molecular_weight: row.get(3)?.as_f64()?,
        hbd: row.get(4)?.as_int()? as u32,
        hba: row.get(5)?.as_int()? as u32,
        rings: row.get(6)?.as_int()? as u32,
    })
}

/// Build a ligand source from records.
pub fn ligand_source(
    name: impl Into<String>,
    records: &[LigandRecord],
    capabilities: SourceCapabilities,
    latency: LatencyModel,
) -> Result<SimulatedSource> {
    let mut table = Table::new("ligands", ligand_schema());
    for r in records {
        table.insert(ligand_row(r))?;
    }
    SimulatedSource::new(
        name,
        SourceKind::Ligand,
        table,
        "ligand_id",
        capabilities,
        latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{DataSource, FetchRequest};
    use drugtree_store::expr::{CompareOp, Predicate};

    #[test]
    fn record_from_smiles_computes_descriptors() {
        let r = LigandRecord::from_smiles("L1", "aspirin", "CC(=O)Oc1ccccc1C(=O)O").unwrap();
        assert!((r.molecular_weight - 180.16).abs() < 0.2);
        assert_eq!(r.rings, 1);
        assert_eq!(r.hbd, 1);
        assert!(LigandRecord::from_smiles("L2", "bad", "C(((").is_err());
    }

    #[test]
    fn descriptor_pushdown() {
        let records = vec![
            LigandRecord::from_smiles("L1", "aspirin", "CC(=O)Oc1ccccc1C(=O)O").unwrap(),
            LigandRecord::from_smiles("L2", "methane", "C").unwrap(),
        ];
        let src = ligand_source(
            "chembl-sim",
            &records,
            SourceCapabilities::full(),
            LatencyModel::free(),
        )
        .unwrap();
        let resp = src
            .fetch(&FetchRequest::scan().with_predicate(Predicate::cmp("mw", CompareOp::Gt, 100.0)))
            .unwrap();
        assert_eq!(resp.rows.len(), 1);
        assert_eq!(ligand_from_row(&resp.rows[0]).unwrap().ligand_id, "L1");
    }

    #[test]
    fn row_roundtrip() {
        let r = LigandRecord::from_smiles("L1", "caffeine", "Cn1cnc2c1c(=O)n(C)c(=O)n2C").unwrap();
        assert_eq!(ligand_from_row(&ligand_row(&r)).unwrap(), r);
        assert!(ligand_from_row(&[Value::Null]).is_none());
    }
}
