//! Per-source latency models.
//!
//! Each simulated request costs one round-trip plus a per-row transfer
//! charge, with deterministic pseudo-random jitter. The model captures
//! exactly the quantities the DrugTree optimizations act on: *number of
//! round-trips* (batching, caching, pruning) and *rows shipped*
//! (pushdown, projection).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Latency parameters of one simulated source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed round-trip time charged per request.
    pub base_rtt: Duration,
    /// Transfer cost charged per returned row.
    pub per_row: Duration,
    /// Server-side evaluation cost charged per row *scanned* (cheaper
    /// than shipping, but not free — pushdown is not magic).
    pub per_row_scanned: Duration,
    /// Jitter amplitude as a fraction of the deterministic cost
    /// (0.0 = none, 0.2 = ±20%).
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl LatencyModel {
    /// A typical 2013-era public web API: ~120 ms RTT, 40 µs/row.
    pub fn web_api(seed: u64) -> LatencyModel {
        LatencyModel {
            base_rtt: Duration::from_millis(120),
            per_row: Duration::from_micros(40),
            per_row_scanned: Duration::from_micros(2),
            jitter: 0.15,
            seed,
        }
    }

    /// A fast intranet service: 5 ms RTT.
    pub fn intranet(seed: u64) -> LatencyModel {
        LatencyModel {
            base_rtt: Duration::from_millis(5),
            per_row: Duration::from_micros(10),
            per_row_scanned: Duration::from_micros(1),
            jitter: 0.05,
            seed,
        }
    }

    /// A zero-latency model (useful to isolate CPU costs in tests).
    pub fn free() -> LatencyModel {
        LatencyModel {
            base_rtt: Duration::ZERO,
            per_row: Duration::ZERO,
            per_row_scanned: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Cost of one request that scanned `rows_scanned` rows server-side
    /// and returned `rows_returned` of them. `request_index` drives the
    /// deterministic jitter stream (pass a per-source counter).
    pub fn request_cost(
        &self,
        rows_scanned: usize,
        rows_returned: usize,
        request_index: u64,
    ) -> Duration {
        let base = self.base_rtt
            + self.per_row * rows_returned as u32
            + self.per_row_scanned * rows_scanned as u32;
        if self.jitter == 0.0 {
            return base;
        }
        // splitmix64 over (seed, request_index) -> uniform in [-1, 1).
        let h = splitmix64(self.seed ^ request_index.wrapping_mul(0x9E3779B97F4A7C15));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        base.mul_f64(factor.max(0.0))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A per-source monotone request counter feeding the jitter stream.
#[derive(Debug, Default)]
pub struct RequestCounter(AtomicU64);

impl RequestCounter {
    /// Next request index.
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Requests issued so far.
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_components_add_up() {
        let m = LatencyModel {
            base_rtt: Duration::from_millis(100),
            per_row: Duration::from_millis(1),
            per_row_scanned: Duration::from_micros(100),
            jitter: 0.0,
            seed: 0,
        };
        // 100ms + 10*1ms + 50*0.1ms = 115ms.
        assert_eq!(m.request_cost(50, 10, 0), Duration::from_millis(115));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel::web_api(42);
        let a = m.request_cost(100, 20, 7);
        let b = m.request_cost(100, 20, 7);
        assert_eq!(a, b, "same request index -> same jitter");
        let c = m.request_cost(100, 20, 8);
        assert_ne!(a, c, "different request index -> different jitter");

        let base = LatencyModel {
            jitter: 0.0,
            ..m.clone()
        }
        .request_cost(100, 20, 7);
        for i in 0..200 {
            let jittered = m.request_cost(100, 20, i);
            let ratio = jittered.as_secs_f64() / base.as_secs_f64();
            assert!(
                (0.849..=1.151).contains(&ratio),
                "ratio {ratio} out of ±15%"
            );
        }
    }

    #[test]
    fn free_model_is_zero() {
        assert_eq!(
            LatencyModel::free().request_cost(1000, 1000, 3),
            Duration::ZERO
        );
    }

    #[test]
    fn fewer_round_trips_cheaper_than_many() {
        // The core economics of batching: 1 batched request for 50 keys
        // beats 50 singleton requests.
        let m = LatencyModel::web_api(1);
        let batched = m.request_cost(50, 50, 0);
        let singles: Duration = (0..50).map(|i| m.request_cost(1, 1, i)).sum();
        assert!(batched < singles / 10);
    }

    #[test]
    fn request_counter() {
        let c = RequestCounter::default();
        assert_eq!(c.next(), 0);
        assert_eq!(c.next(), 1);
        assert_eq!(c.count(), 2);
    }
}
