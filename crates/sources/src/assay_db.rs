//! The BindingDB-like assay/activity source.

use crate::latency::LatencyModel;
use crate::source::{SimulatedSource, SourceCapabilities, SourceKind};
use crate::Result;
use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_store::schema::{Column, Schema};
use drugtree_store::table::Table;
use drugtree_store::value::{Value, ValueType};

/// Schema of the assay source. The federation key is the protein
/// accession: DrugTree fetches "all activities measured against this
/// protein" for the leaves in view.
pub fn assay_schema() -> Schema {
    Schema::new(vec![
        Column::required("protein_accession", ValueType::Text),
        Column::required("ligand_id", ValueType::Text),
        Column::required("activity_type", ValueType::Text),
        Column::required("value_nm", ValueType::Float),
        Column::required("source", ValueType::Text),
        Column::required("year", ValueType::Int),
    ])
}

/// Convert a record to a row in [`assay_schema`] order.
pub fn assay_row(r: &ActivityRecord) -> Vec<Value> {
    vec![
        Value::from(r.protein_accession.clone()),
        Value::from(r.ligand_id.clone()),
        Value::from(r.activity_type.label()),
        Value::Float(r.value_nm),
        Value::from(r.source.clone()),
        Value::Int(r.year as i64),
    ]
}

/// Parse a fetched row back into a record.
pub fn assay_from_row(row: &[Value]) -> Option<ActivityRecord> {
    Some(ActivityRecord {
        protein_accession: row.first()?.as_text()?.to_string(),
        ligand_id: row.get(1)?.as_text()?.to_string(),
        activity_type: ActivityType::parse(row.get(2)?.as_text()?)?,
        value_nm: row.get(3)?.as_f64()?,
        source: row.get(4)?.as_text()?.to_string(),
        year: row.get(5)?.as_int()? as u16,
    })
}

/// Build an assay source from validated records.
pub fn assay_source(
    name: impl Into<String>,
    records: &[ActivityRecord],
    capabilities: SourceCapabilities,
    latency: LatencyModel,
) -> Result<SimulatedSource> {
    let mut table = Table::new("assays", assay_schema());
    for r in records {
        r.validate().map_err(crate::SourceError::Record)?;
        table.insert(assay_row(r))?;
    }
    SimulatedSource::new(
        name,
        SourceKind::Assay,
        table,
        "protein_accession",
        capabilities,
        latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{DataSource, FetchRequest};

    fn records() -> Vec<ActivityRecord> {
        vec![
            ActivityRecord {
                protein_accession: "P01".into(),
                ligand_id: "L1".into(),
                activity_type: ActivityType::Ki,
                value_nm: 12.0,
                source: "bindingdb-sim".into(),
                year: 2011,
            },
            ActivityRecord {
                protein_accession: "P01".into(),
                ligand_id: "L2".into(),
                activity_type: ActivityType::Ic50,
                value_nm: 450.0,
                source: "bindingdb-sim".into(),
                year: 2012,
            },
            ActivityRecord {
                protein_accession: "P02".into(),
                ligand_id: "L1".into(),
                activity_type: ActivityType::Kd,
                value_nm: 3.0,
                source: "bindingdb-sim".into(),
                year: 2010,
            },
        ]
    }

    #[test]
    fn keyed_by_protein() {
        let src = assay_source(
            "bindingdb-sim",
            &records(),
            SourceCapabilities::full(),
            LatencyModel::free(),
        )
        .unwrap();
        assert_eq!(src.kind(), SourceKind::Assay);
        let resp = src
            .fetch(&FetchRequest::lookup(vec![Value::from("P01")]))
            .unwrap();
        assert_eq!(resp.rows.len(), 2);
        let recs: Vec<ActivityRecord> = resp
            .rows
            .iter()
            .map(|r| assay_from_row(r).unwrap())
            .collect();
        assert!(recs.iter().all(|r| r.protein_accession == "P01"));
    }

    #[test]
    fn invalid_record_rejected_at_build() {
        let mut bad = records();
        bad[0].value_nm = -5.0;
        assert!(assay_source("x", &bad, SourceCapabilities::full(), LatencyModel::free()).is_err());
    }

    #[test]
    fn row_roundtrip() {
        for r in records() {
            assert_eq!(assay_from_row(&assay_row(&r)).unwrap(), r);
        }
        // Unknown activity type text fails closed.
        let mut row = assay_row(&records()[0]);
        row[2] = Value::from("Kq");
        assert!(assay_from_row(&row).is_none());
    }
}
