//! Failure injection: a decorator that makes any source transiently
//! unreliable.
//!
//! 2013-era public web databases failed *constantly* — timeouts, 503s,
//! rate-limit rejections. A mediator that cannot ride through them is
//! not usable from a phone. [`FlakySource`] wraps a real source and
//! fails a deterministic pseudo-random fraction of requests with
//! [`SourceError::Transient`], charging the timeout cost so retry
//! policies pay realistic virtual time.

use crate::clock::VirtualClock;
use crate::latency::LatencyModel;
use crate::source::{
    DataSource, FetchRequest, FetchResponse, MetricsSnapshot, SourceCapabilities, SourceKind,
};
use crate::{Result, SourceError};
use drugtree_store::schema::Schema;
use drugtree_store::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scripted outage on the virtual clock: every request that
/// arrives while `start <= clock.now() < end` fails, regardless of the
/// source's base failure rate. Offsets are from virtual time zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// Outage start (inclusive), virtual time.
    pub start: Duration,
    /// Outage end (exclusive), virtual time.
    pub end: Duration,
}

impl OutageWindow {
    /// A window covering `[start, start + length)`.
    pub fn at(start: Duration, length: Duration) -> OutageWindow {
        OutageWindow {
            start,
            end: start + length,
        }
    }

    fn covers(&self, now_ns: u64) -> bool {
        let start = u64::try_from(self.start.as_nanos()).unwrap_or(u64::MAX);
        let end = u64::try_from(self.end.as_nanos()).unwrap_or(u64::MAX);
        (start..end).contains(&now_ns)
    }
}

/// A source that transiently fails a fraction of its requests.
pub struct FlakySource {
    inner: Arc<dyn DataSource>,
    /// Probability a request fails, in `[0, 1]`.
    failure_rate: f64,
    /// Virtual cost of a failed request (the client's timeout).
    failure_cost: Duration,
    seed: u64,
    attempts: AtomicU64,
    failures: AtomicU64,
    /// Scripted outage storms: while the paired clock is inside any
    /// window, every request fails deterministically.
    storms: Option<(Arc<VirtualClock>, Vec<OutageWindow>)>,
    storm_failures: AtomicU64,
}

impl FlakySource {
    /// Wrap a source with a failure rate and a timeout cost.
    pub fn new(
        inner: Arc<dyn DataSource>,
        failure_rate: f64,
        failure_cost: Duration,
        seed: u64,
    ) -> FlakySource {
        FlakySource {
            inner,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            failure_cost,
            seed,
            attempts: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            storms: None,
            storm_failures: AtomicU64::new(0),
        }
    }

    /// Script outage storms on `clock`: any request arriving while the
    /// clock sits inside a window fails with the source's timeout
    /// cost. Deterministic for a deterministic clock schedule — the
    /// event-driven fleet scheduler replays storms byte-identically.
    pub fn with_storms(
        mut self,
        clock: Arc<VirtualClock>,
        mut windows: Vec<OutageWindow>,
    ) -> FlakySource {
        windows.sort_by_key(|w| w.start);
        self.storms = Some((clock, windows));
        self
    }

    /// Requests attempted (including failed ones).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Requests that were injected as failures.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Failures injected by an outage storm specifically.
    pub fn storm_failures(&self) -> u64 {
        self.storm_failures.load(Ordering::Relaxed)
    }

    fn in_storm(&self) -> bool {
        let Some((clock, windows)) = &self.storms else {
            return false;
        };
        let now = clock.now().0;
        windows.iter().any(|w| w.covers(now))
    }

    fn roll(&self, attempt: u64) -> bool {
        // splitmix64 → uniform in [0, 1).
        let mut x = self.seed ^ attempt.wrapping_mul(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.failure_rate
    }
}

impl DataSource for FlakySource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }

    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn key_column(&self) -> &str {
        self.inner.key_column()
    }

    fn capabilities(&self) -> SourceCapabilities {
        self.inner.capabilities()
    }

    fn fetch(&self, request: &FetchRequest) -> Result<FetchResponse> {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        if self.in_storm() {
            self.failures.fetch_add(1, Ordering::Relaxed);
            self.storm_failures.fetch_add(1, Ordering::Relaxed);
            return Err(SourceError::Transient {
                source: self.inner.name().to_string(),
                cost: self.failure_cost,
            });
        }
        if self.roll(attempt) {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(SourceError::Transient {
                source: self.inner.name().to_string(),
                cost: self.failure_cost,
            });
        }
        self.inner.fetch(request)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics()
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }

    fn latency_model(&self) -> LatencyModel {
        self.inner.latency_model()
    }

    fn ingest(&self, row: Vec<Value>) -> Result<()> {
        self.inner.ingest(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::protein_db::{protein_source, ProteinRecord};

    fn inner() -> Arc<dyn DataSource> {
        Arc::new(
            protein_source(
                "p",
                &[ProteinRecord {
                    accession: "P1".into(),
                    name: "x".into(),
                    organism: "o".into(),
                    sequence: "MK".into(),
                    gene: None,
                }],
                SourceCapabilities::full(),
                LatencyModel::free(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn zero_rate_never_fails() {
        let s = FlakySource::new(inner(), 0.0, Duration::from_secs(1), 7);
        for _ in 0..50 {
            s.fetch(&FetchRequest::scan()).unwrap();
        }
        assert_eq!(s.failures(), 0);
        assert_eq!(s.attempts(), 50);
    }

    #[test]
    fn full_rate_always_fails_with_cost() {
        let s = FlakySource::new(inner(), 1.0, Duration::from_secs(2), 7);
        match s.fetch(&FetchRequest::scan()) {
            Err(SourceError::Transient { source, cost }) => {
                assert_eq!(source, "p");
                assert_eq!(cost, Duration::from_secs(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn intermediate_rate_is_deterministic_and_close() {
        let run = || {
            let s = FlakySource::new(inner(), 0.3, Duration::from_millis(10), 42);
            let outcomes: Vec<bool> = (0..200)
                .map(|_| s.fetch(&FetchRequest::scan()).is_err())
                .collect();
            (outcomes, s.failures())
        };
        let (a, failures) = run();
        let (b, _) = run();
        assert_eq!(a, b, "failure pattern must be deterministic");
        let rate = failures as f64 / 200.0;
        assert!((0.2..0.4).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn storm_windows_fail_on_the_virtual_clock() {
        let clock = VirtualClock::new();
        let s = FlakySource::new(inner(), 0.0, Duration::from_secs(1), 7).with_storms(
            Arc::clone(&clock),
            vec![OutageWindow::at(
                Duration::from_secs(10),
                Duration::from_secs(5),
            )],
        );
        // Before the storm: healthy.
        s.fetch(&FetchRequest::scan()).unwrap();
        // Inside [10s, 15s): every request fails.
        clock.advance(Duration::from_secs(12));
        assert!(s.fetch(&FetchRequest::scan()).is_err());
        assert!(s.fetch(&FetchRequest::scan()).is_err());
        // Past the window: healthy again — graceful recovery.
        clock.advance(Duration::from_secs(4));
        s.fetch(&FetchRequest::scan()).unwrap();
        assert_eq!(s.storm_failures(), 2);
        assert_eq!(s.failures(), 2, "storm failures count as failures");
    }

    #[test]
    fn storms_compose_with_base_rate() {
        let clock = VirtualClock::new();
        let s = FlakySource::new(inner(), 1.0, Duration::from_secs(1), 7)
            .with_storms(Arc::clone(&clock), vec![]);
        // No storm windows, but the base rate still applies.
        assert!(s.fetch(&FetchRequest::scan()).is_err());
        assert_eq!(s.storm_failures(), 0);
        assert_eq!(s.failures(), 1);
    }

    #[test]
    fn delegates_everything_else() {
        let s = FlakySource::new(inner(), 0.0, Duration::ZERO, 1);
        assert_eq!(s.name(), "p");
        assert_eq!(s.kind(), SourceKind::Protein);
        assert_eq!(s.key_column(), "accession");
        assert_eq!(s.record_count(), 1);
        assert!(s.capabilities().eq_pushdown);
    }
}
