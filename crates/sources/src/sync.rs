//! Loom-swappable synchronization primitives for the serving stack.
//!
//! The workspace standard for blocking primitives is `parking_lot`
//! (panic-free, non-poisoning; enforced by the `sync-hygiene` pass of
//! `repo-lint` and clippy's `disallowed-types`). Everything in the
//! concurrent serving path — the single-flight table and batch
//! coalescer here, the sharded semantic cache and rolling SLO windows
//! in `drugtree-query` — acquires its locks through this module
//! instead of naming `parking_lot` directly, so that building with
//! `RUSTFLAGS="--cfg loom"` swaps in `loom`'s schedule-perturbing
//! instrumented types and the loom model-check suites
//! (`tests/loom_model.rs` in both crates) exercise the real code under
//! many interleavings:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p drugtree-sources --test loom_model --release
//! RUSTFLAGS="--cfg loom" cargo test -p drugtree-query --test loom_model --release
//! ```

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
