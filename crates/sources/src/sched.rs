//! The serving scheduler's blocking event queue.
//!
//! The event-driven session scheduler in `drugtree` (crates/core)
//! drives thousands of virtual-clock session state machines from one
//! coordinator thread plus a small worker pool. The two sides hand
//! work to each other through [`EventQueue`]: the coordinator mails
//! step commands to each worker's queue, and workers mail completions
//! back to the coordinator's queue. The queue is the scheduler's one
//! blocking primitive, so it is built on the loom-swappable
//! [`crate::sync`] shim and carries the no-lost-wakeup burden: a
//! completion pushed while the consumer is between "checked empty" and
//! "parked on the condvar" must still wake it — the classic race the
//! loom model check in `tests/loom_model.rs` drives, with a coalescer
//! completion and a deadline expiry pushed from different threads.
//!
//! Telemetry: [`EventQueue::stats`] counts pushes, pops and the number
//! of times the consumer actually blocked — the scheduler's contention
//! counters, reported by experiment E11 at fleet scale.

use crate::sync::{Condvar, Mutex};
use crate::telemetry::Counter;
use std::collections::VecDeque;

/// Counters describing one queue's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventQueueStats {
    /// Items pushed.
    pub pushed: u64,
    /// Items popped.
    pub popped: u64,
    /// Times a consumer found the queue empty and parked.
    pub waits: u64,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// An unbounded MPMC blocking queue on the loom-swappable sync shim.
///
/// Ordering guarantee: items from one producer are delivered in push
/// order; items from racing producers interleave in lock-acquisition
/// order. [`EventQueue::pop`] blocks until an item arrives or the
/// queue is closed *and* drained — closing never drops queued items,
/// so a completion pushed concurrently with `close` is still seen.
pub struct EventQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    pushed: Counter,
    popped: Counter,
    waits: Counter,
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EventQueue")
            .field("pushed", &stats.pushed)
            .field("popped", &stats.popped)
            .field("waits", &stats.waits)
            .finish()
    }
}

impl<T> EventQueue<T> {
    /// An empty, open queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            pushed: Counter::new(),
            popped: Counter::new(),
            waits: Counter::new(),
        }
    }

    /// Push one item and wake a waiting consumer. Pushing to a closed
    /// queue still enqueues (the consumer drains before observing the
    /// close), so no event submitted before the producer learned of
    /// shutdown is ever lost.
    pub fn push(&self, item: T) {
        {
            let mut state = self.lock();
            state.items.push_back(item);
        }
        self.pushed.add(1);
        // Notify after dropping the lock: a woken consumer can acquire
        // it immediately instead of bouncing back to sleep.
        self.ready.notify_one();
    }

    /// Close the queue: wake every parked consumer. Already-queued
    /// items remain poppable; once drained, `pop` returns `None`.
    pub fn close(&self) {
        {
            let mut state = self.lock();
            state.closed = true;
        }
        self.ready.notify_all();
    }

    /// Pop the oldest item, blocking while the queue is empty and
    /// open. Returns `None` only when the queue is closed *and* empty.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.popped.add(1);
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.waits.add(1);
            state = self.wait(state);
        }
    }

    /// Pop without blocking: `None` when currently empty (closed or
    /// not).
    pub fn try_pop(&self) -> Option<T> {
        let item = self.lock().items.pop_front();
        if item.is_some() {
            self.popped.add(1);
        }
        item
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Traffic counters (contention telemetry).
    pub fn stats(&self) -> EventQueueStats {
        EventQueueStats {
            pushed: self.pushed.get(),
            popped: self.popped.get(),
            waits: self.waits.get(),
        }
    }

    #[cfg(loom)]
    fn lock(&self) -> loom::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().expect("event queue lock")
    }

    #[cfg(not(loom))]
    fn lock(&self) -> parking_lot::MutexGuard<'_, QueueState<T>> {
        self.state.lock()
    }

    #[cfg(loom)]
    fn wait<'a>(
        &self,
        guard: loom::sync::MutexGuard<'a, QueueState<T>>,
    ) -> loom::sync::MutexGuard<'a, QueueState<T>> {
        self.ready.wait(guard).expect("event queue condvar")
    }

    #[cfg(not(loom))]
    fn wait<'a>(
        &self,
        mut guard: parking_lot::MutexGuard<'a, QueueState<T>>,
    ) -> parking_lot::MutexGuard<'a, QueueState<T>> {
        self.ready.wait(&mut guard);
        guard
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_producer() {
        let q = EventQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_before_none() {
        let q = EventQueue::new();
        q.push("completion");
        q.close();
        assert_eq!(q.pop(), Some("completion"), "close never drops items");
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocking_pop_sees_cross_thread_push() {
        let q = Arc::new(EventQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push(41u32);
                q.push(42u32);
                q.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        producer.join().expect("producer joins");
        assert_eq!(got, vec![41, 42]);
        let stats = q.stats();
        assert_eq!(stats.pushed, 2);
        assert_eq!(stats.popped, 2);
    }

    #[test]
    fn stats_count_waits() {
        let q = Arc::new(EventQueue::<u8>::new());
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a chance to park, then wake it.
        while q.stats().waits == 0 {
            std::thread::yield_now();
        }
        q.push(7);
        assert_eq!(waiter.join().expect("waiter joins"), Some(7));
        assert!(q.stats().waits >= 1);
    }
}
