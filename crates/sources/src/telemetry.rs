//! Lock-free telemetry primitives: counters and fixed-bucket
//! histograms.
//!
//! These are the building blocks of the query-path observability layer
//! (design decision D9). They live in the sources crate — the lowest
//! layer every other crate already depends on — so the federation
//! coordinator can record batch shapes with the same primitives the
//! query layer's `MetricsRegistry` aggregates into.
//!
//! Both types are updated with single relaxed atomic operations: a
//! recording thread never takes a lock, so instrumenting the serving
//! hot path cannot introduce contention that the uninstrumented path
//! does not have. Reads (snapshots) are equally lock-free but only
//! loosely ordered against concurrent writers, which is the right
//! trade for monitoring data.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing lock-free counter.
///
/// Additions saturate at `u64::MAX`: a counter that has run for long
/// enough to exhaust 64 bits pins at the ceiling instead of silently
/// wrapping back to small values, so rates computed from two reads can
/// never go negative.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        // A plain `fetch_add` wraps on overflow; retry with
        // `saturating_add` instead. The loop is contention-only — in
        // the common (non-saturated) case one CAS succeeds.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if current == u64::MAX {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                current.saturating_add(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed bucket bounds, recorded lock-free.
///
/// `bounds[i]` is the *inclusive* upper bound of bucket `i`; one
/// implicit overflow bucket catches everything larger. The bounds are
/// fixed at construction, so recording is a binary search plus one
/// relaxed `fetch_add` — no allocation, no lock, no resizing.
#[derive(Debug)]
pub struct FixedHistogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl FixedHistogram {
    /// A histogram with the given inclusive upper bounds (sorted and
    /// deduplicated; an overflow bucket is added implicitly).
    pub fn new(bounds: &[u64]) -> FixedHistogram {
        let mut bounds: Vec<u64> = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        FixedHistogram {
            bounds: bounds.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Default latency bounds in nanoseconds: 1 ms … 10 s in a
    /// 1-2-5 decade ladder, matching the virtual-clock latency range
    /// of the simulated sources.
    pub fn latency_buckets() -> FixedHistogram {
        const MS: u64 = 1_000_000;
        FixedHistogram::new(&[
            MS,
            2 * MS,
            5 * MS,
            10 * MS,
            20 * MS,
            50 * MS,
            100 * MS,
            200 * MS,
            500 * MS,
            1_000 * MS,
            2_000 * MS,
            5_000 * MS,
            10_000 * MS,
        ])
    }

    /// Default size bounds (rows, keys, batch sizes): powers of two up
    /// to 4096.
    pub fn size_buckets() -> FixedHistogram {
        FixedHistogram::new(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096])
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The configured inclusive upper bounds (without the implicit
    /// overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Fold another histogram's recorded values into this one. Both
    /// histograms must share the same bucket bounds (they describe the
    /// same quantity); merging mismatched layouts is a caller bug.
    ///
    /// Lock-free like recording: each bucket is added with one relaxed
    /// atomic, so a merge concurrent with writers folds a consistent-
    /// enough monitoring view, not a linearizable snapshot.
    pub fn merge_from(&self, other: &FixedHistogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let bound = self.bounds.get(i).copied();
                (bound, b.load(Ordering::Relaxed))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`FixedHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound, count)` per bucket; the final bucket
    /// has no bound (overflow).
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (0.0–1.0): the upper bound of the first
    /// bucket whose cumulative count reaches `p * count`; the exact
    /// maximum for the overflow bucket. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bound, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return bound.unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Interpolated quantile (0.0–1.0): locates the bucket holding the
    /// target rank like [`HistogramSnapshot::percentile`], then
    /// interpolates linearly between the bucket's lower and upper
    /// bounds by the rank's position inside it. The overflow bucket
    /// spans `(last bound, max]`, and the result is clamped to the
    /// recorded maximum so a sparse top bucket cannot report a value
    /// nothing ever reached. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        let mut lower = 0u64;
        for (bound, n) in &self.buckets {
            let upper = bound.unwrap_or(self.max).max(lower);
            if *n > 0 && (cumulative + n) as f64 >= target {
                let within = (target - cumulative as f64) / *n as f64;
                let value = lower as f64 + (upper - lower) as f64 * within.clamp(0.0, 1.0);
                return value.min(self.max as f64);
            }
            cumulative += n;
            lower = upper;
        }
        self.max as f64
    }
}

/// A finalized time window folded from a [`FixedHistogram`]: one slot
/// of a [`WindowedHistogram`] after its interval closed.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Window index: `start_ns / width`.
    pub index: u64,
    /// Virtual-clock nanoseconds at which the window opened.
    pub start_ns: u64,
    /// Virtual-clock nanoseconds at which the window closed
    /// (exclusive).
    pub end_ns: u64,
    /// Values recorded inside the window.
    pub count: u64,
    /// Interpolated median.
    pub p50: f64,
    /// Interpolated 95th percentile.
    pub p95: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// Largest recorded value.
    pub max: u64,
}

impl WindowSummary {
    fn from_snapshot(index: u64, width_ns: u64, s: &HistogramSnapshot) -> WindowSummary {
        WindowSummary {
            index,
            start_ns: index * width_ns,
            end_ns: (index + 1) * width_ns,
            count: s.count,
            p50: s.quantile(0.50),
            p95: s.quantile(0.95),
            p99: s.quantile(0.99),
            max: s.max,
        }
    }
}

/// Time-windowed rolling aggregation: a live [`FixedHistogram`] for
/// the current fixed-width window plus a ring of the last N finalized
/// [`WindowSummary`]s.
///
/// Windows are aligned to the **virtual clock** (`window index =
/// timestamp / width`), so rollover points — and therefore every
/// summary — are deterministic under replay. Recording takes a short
/// mutex (unlike the bare histogram) because a rollover swaps the live
/// slot; the critical section is a few bucket additions.
#[derive(Debug)]
pub struct WindowedHistogram {
    width_ns: u64,
    ring: usize,
    bounds: Vec<u64>,
    state: Mutex<WindowState>,
}

#[derive(Debug)]
struct WindowState {
    /// Window index of the live slot.
    epoch: u64,
    /// Whether the live slot has recorded anything yet (a silent
    /// stream emits no empty summaries).
    live: FixedHistogram,
    recorded: bool,
    /// Last N finalized summaries, oldest first.
    recent: VecDeque<WindowSummary>,
}

impl WindowedHistogram {
    /// A windowed histogram with `width` per window, a ring of `ring`
    /// retained summaries, and the given bucket bounds for each slot.
    pub fn new(width: Duration, ring: usize, bounds: &[u64]) -> WindowedHistogram {
        let width_ns = u64::try_from(width.as_nanos()).unwrap_or(u64::MAX).max(1);
        WindowedHistogram {
            width_ns,
            ring: ring.max(1),
            bounds: bounds.to_vec(),
            state: Mutex::new(WindowState {
                epoch: 0,
                live: FixedHistogram::new(bounds),
                recorded: false,
                recent: VecDeque::new(),
            }),
        }
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Record `value` at virtual time `at_ns`. If `at_ns` falls past
    /// the live window, that window is finalized first; every summary
    /// closed by this call is returned (normally zero or one, more
    /// after an idle gap) so callers can export rollover events.
    pub fn record(&self, at_ns: u64, value: u64) -> Vec<WindowSummary> {
        let epoch = at_ns / self.width_ns;
        let mut state = self.state.lock();
        let mut closed = Vec::new();
        if epoch > state.epoch {
            if state.recorded {
                let summary = WindowSummary::from_snapshot(
                    state.epoch,
                    self.width_ns,
                    &state.live.snapshot(),
                );
                closed.push(summary.clone());
                if state.recent.len() == self.ring {
                    state.recent.pop_front();
                }
                state.recent.push_back(summary);
                state.live = FixedHistogram::new(&self.bounds);
                state.recorded = false;
            }
            state.epoch = epoch;
        }
        // Late records (at_ns before the live window, possible under
        // concurrent serving) fold into the live slot rather than
        // reopening a closed one: windows only ever close forward.
        state.live.record(value);
        state.recorded = true;
        closed
    }

    /// The last N finalized summaries, oldest first (the live window
    /// is not included until it closes).
    pub fn summaries(&self) -> Vec<WindowSummary> {
        self.state.lock().recent.iter().cloned().collect()
    }

    /// Snapshot of the live (not yet closed) window.
    pub fn live_snapshot(&self) -> HistogramSnapshot {
        self.state.lock().live.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = FixedHistogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5 + 10 + 11 + 100 + 5000);
        assert_eq!(s.max, 5000);
        // Inclusive upper bounds: 10 lands in the first bucket.
        assert_eq!(s.buckets[0], (Some(10), 2));
        assert_eq!(s.buckets[1], (Some(100), 2));
        assert_eq!(s.buckets[2], (Some(1000), 0));
        assert_eq!(s.buckets[3], (None, 1), "overflow bucket");
        assert!((s.mean() - 1025.2).abs() < 1e-9);
    }

    #[test]
    fn percentile_walks_cumulative_counts() {
        let h = FixedHistogram::new(&[10, 100, 1000]);
        for _ in 0..9 {
            h.record(10);
        }
        h.record(50_000);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 10);
        assert_eq!(s.percentile(0.9), 10);
        // The overflow bucket reports the exact max.
        assert_eq!(s.percentile(1.0), 50_000);
        let empty = FixedHistogram::new(&[1]).snapshot();
        assert_eq!(empty.percentile(0.5), 0);
    }

    #[test]
    fn duration_recording_uses_nanos() {
        let h = FixedHistogram::latency_buckets();
        h.record_duration(Duration::from_millis(3));
        let s = h.snapshot();
        assert_eq!(s.sum, 3_000_000);
        // 3 ms lands in the 5 ms bucket.
        assert_eq!(s.buckets[2], (Some(5_000_000), 1));
    }

    #[test]
    fn unsorted_bounds_are_normalized() {
        let h = FixedHistogram::new(&[100, 10, 100]);
        h.record(10);
        let s = h.snapshot();
        assert_eq!(s.buckets.len(), 3);
        assert_eq!(s.buckets[0], (Some(10), 1));
    }

    #[test]
    fn counter_saturates_at_max() {
        let c = Counter::new();
        c.add(u64::MAX - 3);
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "add past the ceiling pins at MAX");
        c.incr();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "a saturated counter never wraps");
    }

    #[test]
    fn quantile_empty_window_is_zero() {
        let s = FixedHistogram::new(&[10, 100]).snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_single_sample_clamps_to_max() {
        let h = FixedHistogram::new(&[10, 100]);
        h.record(42);
        let s = h.snapshot();
        // One sample: every quantile is that sample, clamped to max
        // rather than interpolated up to the bucket's 100 bound.
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), 42.0, "q={q}");
        }
    }

    #[test]
    fn quantile_interpolates_within_one_bucket() {
        let h = FixedHistogram::new(&[100, 200]);
        // Four samples, all in the (100, 200] bucket.
        for v in [110, 150, 160, 200] {
            h.record(v);
        }
        let s = h.snapshot();
        // Ranks interpolate linearly across the bucket span 100..200:
        // q=0.5 → rank 2 of 4 → 100 + 200*(2/4)/2 = 150.
        assert_eq!(s.quantile(0.5), 150.0);
        assert_eq!(s.quantile(0.25), 125.0);
        assert_eq!(s.quantile(1.0), 200.0);
        // Monotone in q even at the clamp edge.
        assert!(s.quantile(0.99) <= s.quantile(1.0));
    }

    #[test]
    fn quantile_overflow_bucket_uses_recorded_max() {
        let h = FixedHistogram::new(&[10]);
        h.record(5);
        h.record(90);
        h.record(100);
        let s = h.snapshot();
        // The overflow bucket spans (10, max]; the top quantile never
        // exceeds what was actually recorded.
        assert_eq!(s.quantile(1.0), 100.0);
        assert!(s.quantile(0.95) <= 100.0);
        assert!(s.quantile(0.6) > 10.0);
    }

    #[test]
    fn merge_folds_histograms_with_different_counts() {
        let a = FixedHistogram::new(&[10, 100]);
        for v in [5, 7, 50] {
            a.record(v);
        }
        let b = FixedHistogram::new(&[10, 100]);
        for v in [9, 500] {
            b.record(v);
        }
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5 + 7 + 50 + 9 + 500);
        assert_eq!(s.max, 500);
        assert_eq!(s.buckets[0], (Some(10), 3));
        assert_eq!(s.buckets[1], (Some(100), 1));
        assert_eq!(s.buckets[2], (None, 1));
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let a = FixedHistogram::new(&[10]);
        let b = FixedHistogram::new(&[20]);
        a.merge_from(&b);
    }

    #[test]
    fn windowed_histogram_rolls_over_on_epoch_advance() {
        const S: u64 = 1_000_000_000;
        let w = WindowedHistogram::new(Duration::from_secs(1), 4, &[10, 100]);
        assert!(w.record(100, 5).is_empty(), "first window stays open");
        assert!(w.record(200, 7).is_empty());
        // Crossing into window 2 closes window 0; the gap window 1 was
        // never recorded into, so exactly one summary comes back.
        let closed = w.record(2 * S + 1, 50);
        assert_eq!(closed.len(), 1);
        let s = &closed[0];
        assert_eq!(s.index, 0);
        assert_eq!(s.start_ns, 0);
        assert_eq!(s.end_ns, S);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 7);
        assert_eq!(w.summaries(), closed);
        // The live window holds only the post-rollover sample.
        assert_eq!(w.live_snapshot().count, 1);
    }

    #[test]
    fn windowed_histogram_ring_is_bounded() {
        const S: u64 = 1_000_000_000;
        let w = WindowedHistogram::new(Duration::from_secs(1), 2, &[10]);
        for i in 0..5u64 {
            w.record(i * S + 1, i);
        }
        let kept = w.summaries();
        assert_eq!(kept.len(), 2, "ring keeps the last N summaries");
        assert_eq!(kept[0].index, 2);
        assert_eq!(kept[1].index, 3);
    }

    #[test]
    fn windowed_histogram_late_records_fold_forward() {
        const S: u64 = 1_000_000_000;
        let w = WindowedHistogram::new(Duration::from_secs(1), 4, &[10]);
        w.record(3 * S + 1, 1);
        // A record stamped before the live window cannot reopen a
        // closed slot; it folds into the live one.
        assert!(w.record(10, 2).is_empty());
        assert_eq!(w.live_snapshot().count, 2);
        assert!(w.summaries().is_empty());
    }
}
