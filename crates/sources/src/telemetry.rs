//! Lock-free telemetry primitives: counters and fixed-bucket
//! histograms.
//!
//! These are the building blocks of the query-path observability layer
//! (design decision D9). They live in the sources crate — the lowest
//! layer every other crate already depends on — so the federation
//! coordinator can record batch shapes with the same primitives the
//! query layer's `MetricsRegistry` aggregates into.
//!
//! Both types are updated with single relaxed atomic operations: a
//! recording thread never takes a lock, so instrumenting the serving
//! hot path cannot introduce contention that the uninstrumented path
//! does not have. Reads (snapshots) are equally lock-free but only
//! loosely ordered against concurrent writers, which is the right
//! trade for monitoring data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed bucket bounds, recorded lock-free.
///
/// `bounds[i]` is the *inclusive* upper bound of bucket `i`; one
/// implicit overflow bucket catches everything larger. The bounds are
/// fixed at construction, so recording is a binary search plus one
/// relaxed `fetch_add` — no allocation, no lock, no resizing.
#[derive(Debug)]
pub struct FixedHistogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl FixedHistogram {
    /// A histogram with the given inclusive upper bounds (sorted and
    /// deduplicated; an overflow bucket is added implicitly).
    pub fn new(bounds: &[u64]) -> FixedHistogram {
        let mut bounds: Vec<u64> = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        FixedHistogram {
            bounds: bounds.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Default latency bounds in nanoseconds: 1 ms … 10 s in a
    /// 1-2-5 decade ladder, matching the virtual-clock latency range
    /// of the simulated sources.
    pub fn latency_buckets() -> FixedHistogram {
        const MS: u64 = 1_000_000;
        FixedHistogram::new(&[
            MS,
            2 * MS,
            5 * MS,
            10 * MS,
            20 * MS,
            50 * MS,
            100 * MS,
            200 * MS,
            500 * MS,
            1_000 * MS,
            2_000 * MS,
            5_000 * MS,
            10_000 * MS,
        ])
    }

    /// Default size bounds (rows, keys, batch sizes): powers of two up
    /// to 4096.
    pub fn size_buckets() -> FixedHistogram {
        FixedHistogram::new(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096])
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let bound = self.bounds.get(i).copied();
                (bound, b.load(Ordering::Relaxed))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`FixedHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound, count)` per bucket; the final bucket
    /// has no bound (overflow).
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (0.0–1.0): the upper bound of the first
    /// bucket whose cumulative count reaches `p * count`; the exact
    /// maximum for the overflow bucket. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bound, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return bound.unwrap_or(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = FixedHistogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5 + 10 + 11 + 100 + 5000);
        assert_eq!(s.max, 5000);
        // Inclusive upper bounds: 10 lands in the first bucket.
        assert_eq!(s.buckets[0], (Some(10), 2));
        assert_eq!(s.buckets[1], (Some(100), 2));
        assert_eq!(s.buckets[2], (Some(1000), 0));
        assert_eq!(s.buckets[3], (None, 1), "overflow bucket");
        assert!((s.mean() - 1025.2).abs() < 1e-9);
    }

    #[test]
    fn percentile_walks_cumulative_counts() {
        let h = FixedHistogram::new(&[10, 100, 1000]);
        for _ in 0..9 {
            h.record(10);
        }
        h.record(50_000);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 10);
        assert_eq!(s.percentile(0.9), 10);
        // The overflow bucket reports the exact max.
        assert_eq!(s.percentile(1.0), 50_000);
        let empty = FixedHistogram::new(&[1]).snapshot();
        assert_eq!(empty.percentile(0.5), 0);
    }

    #[test]
    fn duration_recording_uses_nanos() {
        let h = FixedHistogram::latency_buckets();
        h.record_duration(Duration::from_millis(3));
        let s = h.snapshot();
        assert_eq!(s.sum, 3_000_000);
        // 3 ms lands in the 5 ms bucket.
        assert_eq!(s.buckets[2], (Some(5_000_000), 1));
    }

    #[test]
    fn unsorted_bounds_are_normalized() {
        let h = FixedHistogram::new(&[100, 10, 100]);
        h.record(10);
        let s = h.snapshot();
        assert_eq!(s.buckets.len(), 3);
        assert_eq!(s.buckets[0], (Some(10), 1));
    }
}
