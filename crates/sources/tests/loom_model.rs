//! Loom model checks for the cross-session fetch coordinator.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, when the serving
//! stack's locks (via `drugtree_sources::sync`) swap for loom's
//! instrumented types. Each `loom::model` closure is executed under
//! many perturbed thread schedules (the vendored loom is a
//! shuttle-style randomized-schedule stand-in; `LOOM_ITERS` overrides
//! the schedule count), so the invariants below are checked across
//! genuinely different interleavings, not one lucky run:
//!
//! * single-flight: every caller is a leader or a joiner, joiners see
//!   byte-identical rows, and exactly the leaders advance the clock;
//! * error broadcast: a failing leader fails every joiner — nobody
//!   hangs on a flight slot whose leader already gave up;
//! * coalescer window barrier: whatever the schedule batches, each
//!   participant gets exactly its own rows back and exactly one
//!   participant per dispatched batch advances the clock.
//!
//! Run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p drugtree-sources --test loom_model --release
//! ```

#![cfg(loom)]
// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_sources::batcher::{batched_lookup_with_retry, Dispatch, RetryPolicy};
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::serve::{CoordinatedFetch, FetchCoordinator, ServeConfig};
use drugtree_sources::source::{
    DataSource, FetchRequest, FetchResponse, MetricsSnapshot, SimulatedSource, SourceCapabilities,
    SourceKind,
};
use drugtree_sources::{Result as SourceResult, SourceError};
use drugtree_store::schema::{Column, Schema};
use drugtree_store::table::Table;
use drugtree_store::value::{Value, ValueType};
use std::sync::Arc;
use std::time::Duration;

fn source(max_batch: usize, n_rows: i64) -> SimulatedSource {
    let schema = Schema::new(vec![
        Column::required("k", ValueType::Int),
        Column::required("v", ValueType::Int),
    ]);
    let mut t = Table::new("t", schema);
    for i in 0..n_rows {
        t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
    }
    SimulatedSource::new(
        "s",
        SourceKind::Assay,
        t,
        "k",
        SourceCapabilities {
            max_batch,
            ..SourceCapabilities::full()
        },
        LatencyModel {
            base_rtt: Duration::from_millis(100),
            per_row: Duration::from_millis(1),
            per_row_scanned: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        },
    )
    .unwrap()
}

fn keys(range: std::ops::Range<i64>) -> Vec<Value> {
    range.map(Value::Int).collect()
}

fn sorted(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out = rows.to_vec();
    out.sort();
    out
}

/// A source that fails every fetch with a transient error.
struct FailingSource(SimulatedSource);

impl DataSource for FailingSource {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn kind(&self) -> SourceKind {
        self.0.kind()
    }
    fn schema(&self) -> &Schema {
        self.0.schema()
    }
    fn key_column(&self) -> &str {
        self.0.key_column()
    }
    fn capabilities(&self) -> SourceCapabilities {
        self.0.capabilities()
    }
    fn fetch(&self, _request: &FetchRequest) -> SourceResult<FetchResponse> {
        Err(SourceError::Transient {
            source: self.0.name().to_string(),
            cost: Duration::from_millis(5),
        })
    }
    fn metrics(&self) -> MetricsSnapshot {
        self.0.metrics()
    }
    fn record_count(&self) -> usize {
        self.0.record_count()
    }
    fn latency_model(&self) -> LatencyModel {
        self.0.latency_model()
    }
}

/// Single-flight under perturbed schedules: whatever subset of the N
/// identical fetches joins the leader's flight, every caller sees the
/// leader's exact rows, leader/joiner tallies account for everyone,
/// and exactly the leaders advance the shared clock.
#[test]
fn single_flight_broadcast_is_identical_for_all_callers() {
    loom::model(|| {
        const N: usize = 3;
        let s = Arc::new(source(10, 12));
        let coord = Arc::new(FetchCoordinator::new(ServeConfig {
            single_flight: true,
            coalesce: false,
            delay_yields: 0,
        }));
        let ks = keys(0..6);

        let handles: Vec<_> = (0..N)
            .map(|_| {
                let (s, c, ks) = (Arc::clone(&s), Arc::clone(&coord), ks.clone());
                loom::thread::spawn(move || {
                    c.fetch(&*s, &ks, None, Dispatch::Sequential, RetryPolicy::none())
                        .unwrap()
                })
            })
            .collect();
        let results: Vec<CoordinatedFetch> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        let direct =
            batched_lookup_with_retry(&*s, &ks, None, Dispatch::Sequential, RetryPolicy::none())
                .unwrap();
        let stats = coord.stats();
        assert_eq!(stats.flights_led + stats.flights_joined, N as u64);
        for (i, cf) in results.iter().enumerate() {
            assert_eq!(sorted(&cf.rows), sorted(&direct.rows), "caller {i}");
        }
        let advancers = results.iter().filter(|r| r.advance).count() as u64;
        assert_eq!(advancers, stats.flights_led, "exactly leaders advance");
        assert_eq!(
            stats.requests_issued,
            results.iter().map(|r| r.requests as u64).sum::<u64>()
        );
    });
}

/// A failing leader must broadcast its error: every caller gets *an*
/// error (never a hang, never fabricated rows), and the flight slot
/// is gone afterwards so the next fetch starts a fresh flight.
#[test]
fn single_flight_error_reaches_every_caller_and_slot_is_reclaimed() {
    loom::model(|| {
        const N: usize = 3;
        let s = Arc::new(FailingSource(source(10, 12)));
        let coord = Arc::new(FetchCoordinator::new(ServeConfig {
            single_flight: true,
            coalesce: false,
            delay_yields: 0,
        }));
        let ks = keys(0..4);

        let handles: Vec<_> = (0..N)
            .map(|_| {
                let (s, c, ks) = (Arc::clone(&s), Arc::clone(&coord), ks.clone());
                loom::thread::spawn(move || {
                    c.fetch(&*s, &ks, None, Dispatch::Sequential, RetryPolicy::none())
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        for (i, r) in results.iter().enumerate() {
            assert!(r.is_err(), "caller {i} must see the broadcast error");
        }
        let stats = coord.stats();
        assert_eq!(stats.flights_led + stats.flights_joined, N as u64);
        // The slot was reclaimed: a fresh fetch leads its own flight
        // (it cannot join a dead one) and fails on its own terms.
        let before = stats.flights_led;
        assert!(coord
            .fetch(&*s, &ks, None, Dispatch::Sequential, RetryPolicy::none())
            .is_err());
        assert_eq!(coord.stats().flights_led, before + 1);
    });
}

/// Coalescer window barrier: three disjoint key windows race into the
/// bounded-delay batch window. Whatever the schedule merges, each
/// participant's rows are exactly its solo fetch, batches + joins
/// account for everyone, and exactly one participant per dispatched
/// batch advances the shared clock.
#[test]
fn coalescer_splits_rows_exactly_per_participant() {
    loom::model(|| {
        let windows = [0i64..4, 4..8, 8..12];
        let s = Arc::new(source(16, 24));
        let coord = Arc::new(FetchCoordinator::new(ServeConfig {
            single_flight: false,
            coalesce: true,
            delay_yields: 40,
        }));

        let handles: Vec<_> = windows
            .clone()
            .map(|w| {
                let (s, c) = (Arc::clone(&s), Arc::clone(&coord));
                let ks = keys(w);
                loom::thread::spawn(move || {
                    c.fetch(&*s, &ks, None, Dispatch::Sequential, RetryPolicy::none())
                        .unwrap()
                })
            })
            .into_iter()
            .collect();
        let results: Vec<CoordinatedFetch> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        let stats = coord.stats();
        for (w, cf) in windows.iter().zip(&results) {
            let direct = batched_lookup_with_retry(
                &*s,
                &keys(w.clone()),
                None,
                Dispatch::Sequential,
                RetryPolicy::none(),
            )
            .unwrap();
            assert_eq!(
                sorted(&cf.rows),
                sorted(&direct.rows),
                "window {w:?} must get exactly its own rows"
            );
        }
        assert_eq!(
            stats.batches + stats.batch_joins,
            windows.len() as u64,
            "every participant led or joined a batch"
        );
        let advancers = results.iter().filter(|r| r.advance).count() as u64;
        assert_eq!(advancers, stats.batches, "one clock advance per batch");
    });
}

/// The fleet scheduler's event queue under perturbed schedules: a
/// coalescer completion and a deadline expiry pushed from racing
/// producer threads must both reach the blocked coordinator — no lost
/// wakeup whichever side wins the race with the consumer's
/// empty-check-then-park window, and whichever of them races `close`.
#[test]
fn event_queue_never_loses_completion_racing_deadline_expiry() {
    use drugtree_sources::sched::EventQueue;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Ev {
        CoalescerDone,
        DeadlineExpired,
    }

    loom::model(|| {
        let q = Arc::new(EventQueue::new());
        let completion = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || q.push(Ev::CoalescerDone))
        };
        let expiry = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                q.push(Ev::DeadlineExpired);
                // The expiry side also initiates shutdown, racing the
                // consumer's drain: close must never drop the queued
                // completion.
                q.close();
            })
        };

        // The coordinator blocks for both events; `pop` may only
        // return `None` once the queue is closed *and* drained.
        let mut seen = std::collections::HashSet::new();
        while seen.len() < 2 {
            let ev = q
                .pop()
                .expect("event lost: pop returned None before both arrived");
            seen.insert(ev);
        }
        completion.join().unwrap();
        expiry.join().unwrap();

        assert!(seen.contains(&Ev::CoalescerDone));
        assert!(seen.contains(&Ev::DeadlineExpired));
        assert_eq!(q.pop(), None, "closed and drained");
        let stats = q.stats();
        assert_eq!(stats.pushed, 2);
        assert_eq!(stats.popped, 2);
    });
}
