//! Single-flight and coalescing soundness: coordination is an
//! *optimization*, never a semantic change.
//!
//! Two layers of evidence:
//!
//! * a deterministic gate test — a wrapped source blocks its leader
//!   until the test releases it, pinning the in-flight entry so every
//!   concurrent identical fetch must join it, proving the group is
//!   charged strictly fewer upstream requests than naive;
//! * a property test — random overlapping key windows and pushdown
//!   predicates fetched concurrently through the coordinator must
//!   return, per query, exactly the rows of a solo fetch, with the
//!   merged row set equal to the union of the per-query fetches and
//!   never more upstream requests than naive.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_sources::batcher::{batched_lookup_with_retry, Dispatch, RetryPolicy};
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::serve::{CoordinatedFetch, FetchCoordinator, ServeConfig};
use drugtree_sources::source::{
    DataSource, FetchRequest, FetchResponse, MetricsSnapshot, SimulatedSource, SourceCapabilities,
    SourceKind,
};
use drugtree_sources::sync::{Condvar, Mutex};
use drugtree_sources::Result as SourceResult;
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::schema::{Column, Schema};
use drugtree_store::table::Table;
use drugtree_store::value::{Value, ValueType};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A `(k, v)` source with `v = 10 k`, the given batch cap, and a flat
/// deterministic latency model.
fn source(max_batch: usize, n_rows: i64) -> SimulatedSource {
    let schema = Schema::new(vec![
        Column::required("k", ValueType::Int),
        Column::required("v", ValueType::Int),
    ]);
    let mut t = Table::new("t", schema);
    for i in 0..n_rows {
        t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
    }
    SimulatedSource::new(
        "s",
        SourceKind::Assay,
        t,
        "k",
        SourceCapabilities {
            max_batch,
            ..SourceCapabilities::full()
        },
        LatencyModel {
            base_rtt: Duration::from_millis(100),
            per_row: Duration::from_millis(1),
            per_row_scanned: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        },
    )
    .unwrap()
}

fn keys(range: std::ops::Range<i64>) -> Vec<Value> {
    range.map(Value::Int).collect()
}

fn sorted(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out = rows.to_vec();
    out.sort();
    out
}

// ---------------------------------------------------------------------
// Gated source: fetches block until the test opens the gate, so the
// test controls exactly when an in-flight request completes.
// ---------------------------------------------------------------------

struct GatedSource {
    inner: SimulatedSource,
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicUsize,
}

impl GatedSource {
    fn new(inner: SimulatedSource) -> GatedSource {
        GatedSource {
            inner,
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        }
    }

    /// Fetches that have reached the source (blocked or through).
    fn entered(&self) -> usize {
        self.entered.load(Ordering::SeqCst)
    }

    /// Release every blocked (and all future) fetches.
    fn open_gate(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

impl DataSource for GatedSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }

    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn key_column(&self) -> &str {
        self.inner.key_column()
    }

    fn capabilities(&self) -> SourceCapabilities {
        self.inner.capabilities()
    }

    fn fetch(&self, request: &FetchRequest) -> SourceResult<FetchResponse> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
        drop(open);
        self.inner.fetch(request)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics()
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }

    fn latency_model(&self) -> LatencyModel {
        self.inner.latency_model()
    }
}

/// While the leader of an identical fetch is held inside the source,
/// its flight entry stays pinned in the coordinator's table, so every
/// concurrent identical fetch is forced onto the single-flight path:
/// the group must cost strictly fewer upstream requests than naive.
#[test]
fn pinned_flight_forces_joiners_onto_one_request() {
    const N: usize = 4;
    let gated = Arc::new(GatedSource::new(source(10, 20)));
    let coord = Arc::new(FetchCoordinator::new(ServeConfig {
        single_flight: true,
        coalesce: false,
        delay_yields: 0,
    }));
    let ks = keys(0..8);
    let arrived = Arc::new(AtomicUsize::new(0));

    let results: Vec<CoordinatedFetch> = std::thread::scope(|scope| {
        // Leader first: it enters the source and blocks on the gate,
        // pinning the flight entry.
        let leader = {
            let (g, c, ks) = (Arc::clone(&gated), Arc::clone(&coord), ks.clone());
            scope.spawn(move || {
                c.fetch(&*g, &ks, None, Dispatch::Sequential, RetryPolicy::none())
                    .unwrap()
            })
        };
        while gated.entered() == 0 {
            std::thread::yield_now();
        }
        // Joiners: the flight cannot complete while the gate is shut,
        // so each of them finds it in the table and waits.
        let joiners: Vec<_> = (1..N)
            .map(|_| {
                let (g, c, ks) = (Arc::clone(&gated), Arc::clone(&coord), ks.clone());
                let arrived = Arc::clone(&arrived);
                scope.spawn(move || {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    c.fetch(&*g, &ks, None, Dispatch::Sequential, RetryPolicy::none())
                        .unwrap()
                })
            })
            .collect();
        while arrived.load(Ordering::SeqCst) < N - 1 {
            std::thread::yield_now();
        }
        // Generous scheduling window for the joiners to walk from the
        // arrival marker into the flight table, then release the gate.
        for _ in 0..5_000 {
            std::thread::yield_now();
        }
        gated.open_gate();
        let mut out = vec![leader.join().unwrap()];
        out.extend(joiners.into_iter().map(|h| h.join().unwrap()));
        out
    });

    let direct = batched_lookup_with_retry(
        &*gated,
        &ks,
        None,
        Dispatch::Sequential,
        RetryPolicy::none(),
    )
    .unwrap();
    let stats = coord.stats();

    // Every fetch is accounted for, and at least one (in practice all
    // N-1) rode the pinned flight instead of paying its own request.
    assert_eq!(stats.flights_led + stats.flights_joined, N as u64);
    assert!(
        stats.flights_joined >= 1,
        "no fetch joined the pinned flight"
    );
    assert!(
        stats.requests_issued < (N * direct.requests) as u64,
        "coordinated group paid {} requests, naive pays {}",
        stats.requests_issued,
        N * direct.requests
    );
    assert_eq!(
        stats.requests_issued,
        results.iter().map(|r| r.requests as u64).sum::<u64>(),
        "per-caller request counts must sum to the requests issued"
    );

    // The broadcast is byte-faithful: every caller sees the solo rows
    // and the same full cost, and exactly the leaders advance the
    // shared clock.
    for (i, cf) in results.iter().enumerate() {
        assert_eq!(sorted(&cf.rows), sorted(&direct.rows), "caller {i}");
        assert_eq!(cf.cost, results[0].cost, "caller {i}");
    }
    let advancers = results.iter().filter(|r| r.advance).count() as u64;
    assert_eq!(advancers, stats.flights_led);
}

// ---------------------------------------------------------------------
// Property: coordination preserves results under random overlap.
// ---------------------------------------------------------------------

/// A contiguous key window `lo..lo+len` over the 40-row table;
/// windows drawn independently overlap often, which is exactly the
/// coalescer's hot path.
fn window() -> impl Strategy<Value = std::ops::Range<i64>> {
    (0i64..30, 1i64..10).prop_map(|(lo, len)| lo..lo + len)
}

/// `None` or a range-pushdown predicate every window shares.
fn shared_pred() -> impl Strategy<Value = Option<Predicate>> {
    prop_oneof![
        Just(None),
        (0i64..350).prop_map(|t| Some(Predicate::cmp("v", CompareOp::Ge, t))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N queries fetch overlapping windows concurrently through one
    /// coordinator. Whatever the schedule coalesces, each query must
    /// receive exactly its solo rows, the merged row set must equal
    /// the union of the per-query fetches, and the fleet must never
    /// pay more upstream requests than N naive fetches.
    #[test]
    fn coordination_never_changes_results(
        windows in proptest::collection::vec(window(), 2..5),
        pred in shared_pred(),
        max_batch in 3usize..16,
    ) {
        let s = Arc::new(source(max_batch, 40));
        let coord = Arc::new(FetchCoordinator::new(ServeConfig {
            single_flight: true,
            coalesce: true,
            delay_yields: 2_000,
        }));
        let barrier = Arc::new(Barrier::new(windows.len()));

        let results: Vec<CoordinatedFetch> = std::thread::scope(|scope| {
            let handles: Vec<_> = windows
                .iter()
                .map(|w| {
                    let (s, c) = (Arc::clone(&s), Arc::clone(&coord));
                    let (b, p) = (Arc::clone(&barrier), pred.clone());
                    let ks = keys(w.clone());
                    scope.spawn(move || {
                        b.wait();
                        c.fetch(&*s, &ks, p.as_ref(), Dispatch::Sequential, RetryPolicy::none())
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Naive baseline: one solo fetch per query, straight at the
        // source. Per-query rows must match exactly.
        let mut naive_requests = 0usize;
        let mut union_naive: Vec<Vec<Value>> = Vec::new();
        for (w, cf) in windows.iter().zip(&results) {
            let direct = batched_lookup_with_retry(
                &*s,
                &keys(w.clone()),
                pred.as_ref(),
                Dispatch::Sequential,
                RetryPolicy::none(),
            )
            .unwrap();
            naive_requests += direct.requests;
            prop_assert_eq!(
                sorted(&cf.rows),
                sorted(&direct.rows),
                "window {:?} diverges from its solo fetch",
                w
            );
            union_naive.extend(direct.rows);
        }

        // Merged rows = union of per-query fetches.
        let mut merged: Vec<Vec<Value>> = results.iter().flat_map(|cf| cf.rows.clone()).collect();
        merged.sort();
        merged.dedup();
        union_naive.sort();
        union_naive.dedup();
        prop_assert_eq!(merged, union_naive);

        // Accounting: never more upstream requests than naive, every
        // fetch tallied as leader or joiner, per-caller requests sum
        // to the coordinator's total, and exactly one beneficiary per
        // dispatched batch advances the shared clock.
        let stats = coord.stats();
        prop_assert!(
            stats.requests_issued as usize <= naive_requests,
            "coordinator issued {} requests, naive issues {}",
            stats.requests_issued,
            naive_requests
        );
        prop_assert_eq!(
            (stats.flights_led + stats.flights_joined) as usize,
            windows.len()
        );
        prop_assert_eq!(
            stats.requests_issued,
            results.iter().map(|r| r.requests as u64).sum::<u64>()
        );
        let advancers = results.iter().filter(|r| r.advance).count() as u64;
        prop_assert_eq!(advancers, stats.batches);
    }
}
