//! Seeded gesture-script generation.
//!
//! Experiment E3 needs realistic interactive sessions with a *locality
//! knob*: real users drill down, back up, and revisit hot clades. The
//! generator produces a deterministic gesture script from a seed; the
//! Zipf exponent `theta` controls how strongly revisits concentrate on
//! recently/frequently visited clades (θ=0 uniform, θ→large =
//! hammering the same spot) — exactly the dimension the semantic
//! cache's hit rate depends on.

use crate::session::Gesture;
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::{NodeId, Tree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GestureConfig {
    /// Gestures to produce.
    pub len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Zipf exponent of the revisit distribution (0 = uniform).
    pub zipf_theta: f64,
    /// Probability a step revisits a previously expanded clade.
    pub revisit_prob: f64,
}

impl Default for GestureConfig {
    fn default() -> GestureConfig {
        GestureConfig {
            len: 100,
            seed: 7,
            zipf_theta: 1.0,
            revisit_prob: 0.3,
        }
    }
}

/// Sample an index in `[0, n)` with probability ∝ `1/(i+1)^theta`.
pub fn zipf_sample(rng: &mut SmallRng, n: usize, theta: f64) -> usize {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generate a drill-down gesture script.
///
/// The walk maintains a current node. Each step either descends into a
/// child (weighted toward larger clades), ascends, revisits a
/// previously expanded clade (Zipf over most-recent-first history), or
/// inspects the viewport. Every `Expand` triggers a subtree query in
/// the session, so the script's locality directly shapes cache
/// behaviour.
pub fn drill_down_script(tree: &Tree, index: &TreeIndex, config: &GestureConfig) -> Vec<Gesture> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.len);
    let mut current = tree.root();
    // Most-recent-first history of expanded clades.
    let mut history: Vec<NodeId> = vec![tree.root()];

    while out.len() < config.len {
        let roll: f64 = rng.gen();
        if roll < config.revisit_prob && history.len() > 1 {
            let pick = zipf_sample(&mut rng, history.len(), config.zipf_theta);
            current = history[pick];
            touch(&mut history, current);
            out.push(Gesture::Expand { node: current });
        } else if roll < config.revisit_prob + 0.45 {
            // Descend into a child, preferring bigger clades.
            let children = &tree.node_unchecked(current).children;
            if children.is_empty() {
                current = index.parent(current);
                out.push(Gesture::ZoomOut {
                    focus_y: index.interval(current).lo as f64,
                });
                continue;
            }
            let mut ordered: Vec<NodeId> = children.clone();
            ordered.sort_by_key(|&c| std::cmp::Reverse(index.interval(c).len()));
            let pick = zipf_sample(&mut rng, ordered.len(), 0.7);
            current = ordered[pick];
            touch(&mut history, current);
            out.push(Gesture::Expand { node: current });
        } else if roll < config.revisit_prob + 0.55 {
            current = index.parent(current);
            touch(&mut history, current);
            out.push(Gesture::Expand { node: current });
        } else if roll < config.revisit_prob + 0.65 {
            out.push(Gesture::InspectViewport);
        } else {
            let iv = index.interval(current);
            let span = iv.len().max(1) as f64;
            out.push(Gesture::Pan {
                dy: (rng.gen::<f64>() - 0.5) * span,
            });
        }
    }
    out
}

/// Generate a *lateral browsing* script: the user steps sideways
/// through clades at the same depth (e.g. paging through subfamilies),
/// expanding each in turn. This is the access pattern predictive
/// prefetching targets — the next expansion is a sibling, which no
/// containment-based cache entry covers.
pub fn lateral_script(tree: &Tree, index: &TreeIndex, config: &GestureConfig) -> Vec<Gesture> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x1A7E);
    // Pick the shallowest depth offering at least 4 clades; walk them
    // in display order.
    let mut by_depth: std::collections::BTreeMap<u32, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for id in tree.node_ids() {
        if !tree.node_unchecked(id).is_leaf() {
            by_depth.entry(index.depth(id)).or_default().push(id);
        }
    }
    // Prefer a depth with many (hence small, cache-friendly) clades;
    // fall back to any depth with at least 4, then the root.
    let pick = |min: usize| {
        by_depth
            .iter()
            .find(|(_, nodes)| nodes.len() >= min)
            .map(|(_, nodes)| nodes.clone())
    };
    let row: Vec<NodeId> = pick(16).or_else(|| pick(4)).map_or_else(
        || vec![tree.root()],
        |mut nodes| {
            nodes.sort_by_key(|&n| index.interval(n).lo);
            nodes
        },
    );

    let mut out = Vec::with_capacity(config.len);
    let mut pos = rng.gen_range(0..row.len());
    while out.len() < config.len {
        out.push(Gesture::Expand { node: row[pos] });
        // Mostly step to the adjacent clade; occasionally jump.
        if rng.gen::<f64>() < 0.85 {
            pos = (pos + 1) % row.len();
        } else {
            pos = rng.gen_range(0..row.len());
        }
    }
    out
}

/// Move `node` to the front of the most-recent-first history.
fn touch(history: &mut Vec<NodeId>, node: NodeId) {
    history.retain(|&n| n != node);
    history.insert(0, node);
    history.truncate(64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_phylo::newick::parse_newick;

    fn tree() -> (Tree, TreeIndex) {
        let t = parse_newick(
            "(((a:1,b:1)ab:1,(c:1,d:1)cd:1)abcd:1,((e:1,f:1)ef:1,(g:1,h:1)gh:1)efgh:1)root;",
        )
        .unwrap();
        let i = TreeIndex::build(&t);
        (t, i)
    }

    #[test]
    fn script_is_deterministic() {
        let (t, i) = tree();
        let cfg = GestureConfig::default();
        let a = drill_down_script(&t, &i, &cfg);
        let b = drill_down_script(&t, &i, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.len);
    }

    #[test]
    fn different_seeds_differ() {
        let (t, i) = tree();
        let a = drill_down_script(
            &t,
            &i,
            &GestureConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let b = drill_down_script(
            &t,
            &i,
            &GestureConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn scripts_contain_queries_and_view_changes() {
        let (t, i) = tree();
        let script = drill_down_script(
            &t,
            &i,
            &GestureConfig {
                len: 300,
                ..Default::default()
            },
        );
        let expands = script
            .iter()
            .filter(|g| matches!(g, Gesture::Expand { .. }))
            .count();
        let views = script
            .iter()
            .filter(|g| matches!(g, Gesture::Pan { .. } | Gesture::ZoomOut { .. }))
            .count();
        assert!(expands > 100, "got {expands}");
        assert!(views > 10, "got {views}");
    }

    #[test]
    fn expanded_nodes_are_valid() {
        let (t, i) = tree();
        let script = drill_down_script(
            &t,
            &i,
            &GestureConfig {
                len: 200,
                ..Default::default()
            },
        );
        for g in &script {
            if let Gesture::Expand { node } = g {
                assert!(node.index() < t.len());
            }
        }
    }

    #[test]
    fn lateral_script_steps_through_siblings() {
        let (t, i) = tree();
        let cfg = GestureConfig {
            len: 40,
            seed: 2,
            ..Default::default()
        };
        let script = lateral_script(&t, &i, &cfg);
        assert_eq!(script.len(), 40);
        assert_eq!(script, lateral_script(&t, &i, &cfg), "deterministic");
        // All gestures are expands of same-depth internal nodes.
        let depths: std::collections::HashSet<u32> = script
            .iter()
            .map(|g| match g {
                Gesture::Expand { node } => i.depth(*node),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(depths.len(), 1);
        // Adjacent gestures mostly move to a different clade.
        let moves = script.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(moves > 30, "{moves} moves");
    }

    #[test]
    fn zipf_sampling_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[zipf_sample(&mut rng, 5, 1.5)] += 1;
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[3], "{counts:?}");
        // Uniform when theta = 0: first and last within 20%.
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[zipf_sample(&mut rng, 5, 0.0)] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!((*hi as f64) < *lo as f64 * 1.2, "{counts:?}");
    }

    #[test]
    fn higher_theta_concentrates_revisits() {
        let (t, i) = tree();
        let count_distinct = |theta: f64| {
            let script = drill_down_script(
                &t,
                &i,
                &GestureConfig {
                    len: 500,
                    zipf_theta: theta,
                    revisit_prob: 0.6,
                    seed: 9,
                },
            );
            let nodes: std::collections::HashSet<u32> = script
                .iter()
                .filter_map(|g| match g {
                    Gesture::Expand { node } => Some(node.0),
                    _ => None,
                })
                .collect();
            nodes.len()
        };
        assert!(count_distinct(3.0) <= count_distinct(0.0));
    }
}
