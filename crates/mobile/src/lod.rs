//! Level-of-detail rendering (design decision D6).
//!
//! At low zoom a 8192-leaf tree cannot draw every tip on a 480-pixel
//! screen. The LOD pass walks the visible part of the tree top-down
//! and stops descending once a clade's on-screen height falls below
//! the resolvable threshold, emitting a *collapsed glyph* carrying the
//! clade's aggregate statistics instead of its contents. Payload size
//! therefore tracks what is *resolvable*, not what is *present* —
//! experiment E8's claim.

use crate::viewport::Viewport;
use drugtree_phylo::index::{LeafInterval, TreeIndex};
use drugtree_phylo::tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// Minimum on-screen height (pixels) for a clade to stay expanded.
pub const MIN_PIXELS_PER_GLYPH: f64 = 12.0;

/// One drawable item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RenderItem {
    /// An individually drawn leaf.
    Leaf {
        /// The leaf node.
        node: NodeId,
        /// Its taxon label.
        label: Option<String>,
        /// Leaf rank (y position).
        rank: u32,
    },
    /// A clade collapsed into an aggregate glyph.
    Collapsed {
        /// Clade root.
        node: NodeId,
        /// Clade label, when named.
        label: Option<String>,
        /// Leaves hidden inside.
        interval: LeafInterval,
    },
    /// An internal node drawn as a branch point.
    Branch {
        /// The node.
        node: NodeId,
    },
}

/// The LOD pass output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderList {
    /// Drawable items in preorder.
    pub items: Vec<RenderItem>,
    /// Leaves drawn individually.
    pub visible_leaves: usize,
    /// Leaves hidden inside collapsed glyphs.
    pub collapsed_leaves: usize,
    /// Estimated payload bytes for the item list.
    pub payload_bytes: usize,
}

/// Approximate wire size of one render item.
fn item_bytes(item: &RenderItem) -> usize {
    match item {
        RenderItem::Leaf { label, .. } => 24 + label.as_deref().map_or(0, str::len),
        RenderItem::Collapsed { label, .. } => {
            // Aggregate glyphs carry count + potency summary.
            40 + label.as_deref().map_or(0, str::len)
        }
        RenderItem::Branch { .. } => 12,
    }
}

/// Compute the render list for a viewport.
pub fn render_visible(
    tree: &Tree,
    index: &TreeIndex,
    viewport: &Viewport,
    layout: &crate::layout::TreeLayout,
) -> RenderList {
    let visible = viewport.visible_leaves(layout);
    let px_per_leaf = viewport.pixels_per_leaf();

    let mut items = Vec::new();
    let mut visible_leaves = 0usize;
    let mut collapsed_leaves = 0usize;
    let mut stack = vec![tree.root()];
    while let Some(node) = stack.pop() {
        let iv = index.interval(node);
        let Some(shown) = iv.intersect(visible) else {
            continue;
        };
        let n = tree.node_unchecked(node);
        if n.is_leaf() {
            visible_leaves += 1;
            items.push(RenderItem::Leaf {
                node,
                label: n.label.clone(),
                rank: iv.lo,
            });
            continue;
        }
        let screen_height = iv.len() as f64 * px_per_leaf;
        if screen_height < MIN_PIXELS_PER_GLYPH {
            collapsed_leaves += shown.len() as usize;
            items.push(RenderItem::Collapsed {
                node,
                label: n.label.clone(),
                interval: iv,
            });
            continue;
        }
        items.push(RenderItem::Branch { node });
        for &c in n.children.iter().rev() {
            stack.push(c);
        }
    }

    let payload_bytes = items.iter().map(item_bytes).sum();
    RenderList {
        items,
        visible_leaves,
        collapsed_leaves,
        payload_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TreeLayout;
    use drugtree_phylo::newick::parse_newick;

    /// A balanced tree with 2^depth leaves.
    fn balanced(depth: usize) -> (Tree, TreeIndex, TreeLayout) {
        fn build(d: usize, next: &mut usize) -> String {
            if d == 0 {
                let s = format!("l{next}:1");
                *next += 1;
                s
            } else {
                format!("({},{}):1", build(d - 1, next), build(d - 1, next))
            }
        }
        let mut next = 0;
        let newick = format!("{};", build(depth, &mut next));
        let tree = parse_newick(&newick).unwrap();
        let index = TreeIndex::build(&tree);
        let layout = TreeLayout::compute(&tree, &index);
        (tree, index, layout)
    }

    #[test]
    fn zoomed_in_draws_individual_leaves() {
        let (tree, index, layout) = balanced(6); // 64 leaves
        let mut v = Viewport::fullscreen(&layout);
        v.focus_interval(LeafInterval { lo: 0, hi: 8 }); // 60 px per leaf
        let r = render_visible(&tree, &index, &v, &layout);
        assert_eq!(r.visible_leaves, 8);
        assert_eq!(r.collapsed_leaves, 0);
        assert!(r
            .items
            .iter()
            .any(|i| matches!(i, RenderItem::Branch { .. })));
    }

    #[test]
    fn zoomed_out_collapses() {
        let (tree, index, layout) = balanced(10); // 1024 leaves
        let v = Viewport::fullscreen(&layout); // 0.47 px per leaf
        let r = render_visible(&tree, &index, &v, &layout);
        assert_eq!(r.visible_leaves, 0, "nothing individually resolvable");
        assert_eq!(r.collapsed_leaves, 1024);
        // All items are glyphs/branches near the root; payload is tiny.
        assert!(r.items.len() < 150, "got {} items", r.items.len());
    }

    #[test]
    fn payload_grows_with_zoom_but_is_capped_when_zoomed_out() {
        let (tree, index, layout) = balanced(10);
        let zoomed_out = render_visible(&tree, &index, &Viewport::fullscreen(&layout), &layout);
        let mut v = Viewport::fullscreen(&layout);
        v.focus_interval(LeafInterval { lo: 0, hi: 16 });
        let zoomed_in = render_visible(&tree, &index, &v, &layout);
        assert!(zoomed_in.visible_leaves == 16);
        // Fully-rendered comparison: pretend no LOD by measuring leaves.
        assert!(
            zoomed_out.payload_bytes < 1024 * 24,
            "LOD payload {} must undercut full rendering",
            zoomed_out.payload_bytes
        );
    }

    #[test]
    fn items_cover_visible_interval_exactly() {
        let (tree, index, layout) = balanced(8); // 256 leaves
        let mut v = Viewport::fullscreen(&layout);
        v.focus_interval(LeafInterval { lo: 32, hi: 96 });
        let r = render_visible(&tree, &index, &v, &layout);
        // Every visible leaf is accounted for exactly once: drawn or
        // inside exactly one collapsed glyph.
        let mut covered = vec![0u32; 256];
        for item in &r.items {
            match item {
                RenderItem::Leaf { rank, .. } => covered[*rank as usize] += 1,
                RenderItem::Collapsed { interval, .. } => {
                    let shown = interval.intersect(LeafInterval { lo: 32, hi: 96 }).unwrap();
                    for i in shown.lo..shown.hi {
                        covered[i as usize] += 1;
                    }
                }
                RenderItem::Branch { .. } => {}
            }
        }
        for (i, &c) in covered.iter().enumerate() {
            let expected = u32::from((32..96).contains(&(i as u32)));
            assert_eq!(c, expected, "leaf {i} covered {c} times");
        }
        assert_eq!(r.visible_leaves + r.collapsed_leaves, 64);
    }

    #[test]
    fn offscreen_subtrees_skipped() {
        let (tree, index, layout) = balanced(6);
        let mut v = Viewport::fullscreen(&layout);
        v.focus_interval(LeafInterval { lo: 0, hi: 4 });
        let r = render_visible(&tree, &index, &v, &layout);
        for item in &r.items {
            if let RenderItem::Leaf { rank, .. } = item {
                assert!(*rank < 4);
            }
        }
    }
}
