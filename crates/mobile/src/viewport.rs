//! Pan/zoom viewport over the cladogram.
//!
//! The viewport tracks the visible window in layout units (x in
//! `[0, 1]`, y in leaf units) plus the physical screen size. Its key
//! query-side product is [`Viewport::visible_leaves`]: the leaf-rank
//! interval the UI currently shows, which becomes the scope of every
//! viewport-driven query.

use crate::layout::TreeLayout;
use crate::{MobileError, Result};
use drugtree_phylo::index::LeafInterval;
use serde::{Deserialize, Serialize};

/// A pan/zoom window over the tree layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Viewport {
    /// Visible y range, in leaf units.
    pub y_lo: f64,
    /// Exclusive upper y bound.
    pub y_hi: f64,
    /// Screen width in pixels.
    pub screen_w: u32,
    /// Screen height in pixels.
    pub screen_h: u32,
}

/// A 2013-era phone screen.
pub const DEFAULT_SCREEN: (u32, u32) = (320, 480);

impl Viewport {
    /// A viewport showing the whole tree on the default screen.
    pub fn fullscreen(layout: &TreeLayout) -> Viewport {
        Viewport {
            y_lo: 0.0,
            y_hi: layout.leaf_count().max(1) as f64,
            screen_w: DEFAULT_SCREEN.0,
            screen_h: DEFAULT_SCREEN.1,
        }
    }

    /// Visible vertical span in leaf units.
    pub fn span(&self) -> f64 {
        self.y_hi - self.y_lo
    }

    /// Pixels per leaf row at the current zoom.
    pub fn pixels_per_leaf(&self) -> f64 {
        self.screen_h as f64 / self.span().max(f64::MIN_POSITIVE)
    }

    /// The leaf-rank interval currently visible.
    pub fn visible_leaves(&self, layout: &TreeLayout) -> LeafInterval {
        let n = layout.leaf_count();
        let lo = self.y_lo.floor().max(0.0) as u32;
        let hi = (self.y_hi.ceil().max(0.0) as u32).min(n);
        LeafInterval { lo: lo.min(n), hi }
    }

    /// Pan vertically by `dy` leaf units, clamped to the layout.
    pub fn pan(&mut self, dy: f64, layout: &TreeLayout) {
        let span = self.span();
        let max_hi = layout.leaf_count().max(1) as f64;
        let mut lo = self.y_lo + dy;
        lo = lo.clamp(0.0_f64.min(max_hi - span), (max_hi - span).max(0.0));
        self.y_lo = lo;
        self.y_hi = lo + span;
    }

    /// Zoom by `factor` (>1 zooms in) around a focal y position,
    /// clamped so at least one leaf row stays visible.
    pub fn zoom(&mut self, factor: f64, focus_y: f64, layout: &TreeLayout) -> Result<()> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(MobileError::DegenerateViewport(format!(
                "zoom factor {factor}"
            )));
        }
        let max_span = layout.leaf_count().max(1) as f64;
        let new_span = (self.span() / factor).clamp(1.0, max_span);
        // Keep the focus point at the same relative screen position.
        let rel = ((focus_y - self.y_lo) / self.span()).clamp(0.0, 1.0);
        let mut lo = focus_y - rel * new_span;
        lo = lo.clamp(0.0, (max_span - new_span).max(0.0));
        self.y_lo = lo;
        self.y_hi = lo + new_span;
        Ok(())
    }

    /// Jump the viewport to exactly cover a leaf interval.
    pub fn focus_interval(&mut self, iv: LeafInterval) {
        self.y_lo = iv.lo as f64;
        self.y_hi = (iv.hi as f64).max(iv.lo as f64 + 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_phylo::index::TreeIndex;
    use drugtree_phylo::newick::parse_newick;

    fn layout16() -> TreeLayout {
        // A balanced 16-leaf tree.
        let newick = "((((l0:1,l1:1):1,(l2:1,l3:1):1):1,((l4:1,l5:1):1,(l6:1,l7:1):1):1):1,(((l8:1,l9:1):1,(l10:1,l11:1):1):1,((l12:1,l13:1):1,(l14:1,l15:1):1):1):1);";
        let tree = parse_newick(newick).unwrap();
        let index = TreeIndex::build(&tree);
        TreeLayout::compute(&tree, &index)
    }

    #[test]
    fn fullscreen_sees_everything() {
        let l = layout16();
        let v = Viewport::fullscreen(&l);
        assert_eq!(v.visible_leaves(&l), LeafInterval { lo: 0, hi: 16 });
        assert_eq!(v.span(), 16.0);
        assert_eq!(v.pixels_per_leaf(), 30.0);
    }

    #[test]
    fn zoom_in_narrows_and_keeps_focus() {
        let l = layout16();
        let mut v = Viewport::fullscreen(&l);
        v.zoom(2.0, 8.0, &l).unwrap();
        assert_eq!(v.span(), 8.0);
        assert!(v.y_lo <= 8.0 && 8.0 <= v.y_hi, "focus stays visible");
        v.zoom(2.0, 8.0, &l).unwrap();
        assert_eq!(v.span(), 4.0);
        // Zoom out past full extent clamps.
        v.zoom(0.01, 8.0, &l).unwrap();
        assert_eq!(v.span(), 16.0);
    }

    #[test]
    fn zoom_never_below_one_leaf() {
        let l = layout16();
        let mut v = Viewport::fullscreen(&l);
        for _ in 0..10 {
            v.zoom(4.0, 3.0, &l).unwrap();
        }
        assert_eq!(v.span(), 1.0);
        assert!(v.zoom(f64::NAN, 0.0, &l).is_err());
        assert!(v.zoom(0.0, 0.0, &l).is_err());
    }

    #[test]
    fn pan_clamps_to_edges() {
        let l = layout16();
        let mut v = Viewport::fullscreen(&l);
        v.zoom(4.0, 8.0, &l).unwrap(); // span 4
        v.pan(-100.0, &l);
        assert_eq!(v.y_lo, 0.0);
        assert_eq!(v.span(), 4.0);
        v.pan(100.0, &l);
        assert_eq!(v.y_hi, 16.0);
        assert_eq!(v.visible_leaves(&l), LeafInterval { lo: 12, hi: 16 });
    }

    #[test]
    fn fractional_viewport_rounds_outward() {
        let l = layout16();
        let v = Viewport {
            y_lo: 2.3,
            y_hi: 5.7,
            screen_w: 320,
            screen_h: 480,
        };
        assert_eq!(v.visible_leaves(&l), LeafInterval { lo: 2, hi: 6 });
    }

    #[test]
    fn focus_interval_jumps() {
        let l = layout16();
        let mut v = Viewport::fullscreen(&l);
        v.focus_interval(LeafInterval { lo: 4, hi: 8 });
        assert_eq!(v.visible_leaves(&l), LeafInterval { lo: 4, hi: 8 });
        // Degenerate interval widens to one leaf.
        v.focus_interval(LeafInterval { lo: 3, hi: 3 });
        assert_eq!(v.span(), 1.0);
    }
}
