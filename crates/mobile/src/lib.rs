#![warn(missing_docs)]

//! Mobile interaction simulation — the other half of the paper's title.
//!
//! The original DrugTree was browsed from 2013-era mobile clients;
//! what users felt as "lag" was query latency *plus* result transfer
//! over constrained radio links. The UI itself is out of scope
//! (DESIGN.md §6), but everything the UI would drive is here:
//!
//! * [`layout`] — rectangular cladogram coordinates for the tree.
//! * [`viewport`] — pan/zoom state and visible-leaf computation.
//! * [`lod`] — level-of-detail rendering: clades too small to resolve
//!   collapse into aggregate glyphs (design decision D6).
//! * [`network`] — mobile network profiles (WiFi/4G/3G/EDGE) charging
//!   transfer time to the virtual clock.
//! * [`prefetch`] — predictive cache warming of likely-next clades.
//! * [`pattern`] — online gesture-stream classification (drill-down
//!   vs. lateral) gating per-session adaptive prefetch (design
//!   decision D15).
//! * [`progressive`] — chunked result delivery: first usable content
//!   early, the rest streaming behind it.
//! * [`session`] — a gesture-driven interactive session tying the
//!   query executor, viewport, and network together.
//! * [`gestures`] — seeded gesture-script generation (drill-down walks
//!   with Zipf-skewed locality) for the session experiments.
//! * [`serve`] — multi-session workload generation: per-session Zipf
//!   scripts over a shared hot-clade ranking, for concurrent serving.

pub mod error;
pub mod gestures;
pub mod layout;
pub mod lod;
pub mod machine;
pub mod network;
pub mod pattern;
pub mod prefetch;
pub mod progressive;
pub mod serve;
pub mod session;
pub mod viewport;

pub use error::MobileError;
pub use machine::{MachineState, SessionMachine};
pub use network::NetworkProfile;
pub use pattern::{ExpandRelation, PatternClassifier, SessionPattern};
pub use serve::{zipf_sessions, SessionWorkload};
pub use session::{
    DegradedReason, Gesture, GestureStep, MobileSession, QueryOutcome, QueryPending, ViewPending,
};
pub use viewport::Viewport;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MobileError>;
