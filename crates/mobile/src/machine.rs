//! Poll-able session state machines for event-driven serving.
//!
//! The thread-per-session server gave every mobile session an OS
//! thread to block on; fleets of 4k–16k sessions need sessions that
//! *suspend* instead. [`SessionMachine`] wraps a [`MobileSession`] and
//! its gesture script into a resumable state machine split at the
//! query boundary:
//!
//! * [`SessionMachine::begin_next`] runs the session-local half of the
//!   next gesture (viewport move, query construction) — pure CPU over
//!   private state, so a scheduler's worker pool begins whole cohorts
//!   in parallel;
//! * a view gesture is then committed directly, while a query gesture
//!   parks the machine in [`MachineState::AwaitingQuery`] until the
//!   scheduler resolves the query (executed, coalesced into a shared
//!   flight, shed, timed out, or failed by an outage) and resumes it
//!   with [`SessionMachine::commit_query`].
//!
//! All latency accounting stays on the virtual clock: the machine
//! accumulates each interaction's charged latency into its own virtual
//! cursor, which doubles as the session's next event deadline in the
//! fleet scheduler's priority queue.

use crate::layout::TreeLayout;
use crate::serve::SessionWorkload;
use crate::session::{
    Gesture, GestureStep, InteractionResult, MobileSession, QueryOutcome, QueryPending, ViewPending,
};
use crate::Result;
use drugtree_query::{Dataset, Executor};
use std::sync::Arc;
use std::time::Duration;

/// Where a machine sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineState {
    /// The next gesture can be begun.
    Ready,
    /// A query gesture is begun and waiting on the scheduler.
    AwaitingQuery,
    /// The script is exhausted.
    Done,
}

/// One session of a fleet as a resumable state machine.
pub struct SessionMachine<'a> {
    id: usize,
    session: MobileSession<'a>,
    script: Vec<Gesture>,
    next: usize,
    state: MachineState,
    /// The session's private virtual timeline: the sum of every
    /// committed interaction's charged latency.
    cursor: Duration,
    /// Charged latency of every query-bearing interaction.
    latencies: Vec<Duration>,
}

impl<'a> SessionMachine<'a> {
    /// Wrap one workload over the shared dataset/executor pair and a
    /// shared cladogram layout.
    pub fn new(
        dataset: &'a Dataset,
        executor: &'a Executor,
        layout: Arc<TreeLayout>,
        workload: &SessionWorkload,
    ) -> SessionMachine<'a> {
        let mut session = MobileSession::with_layout(dataset, executor, workload.network, layout);
        session.set_session_id(workload.session as u32);
        session.retain_log(false);
        SessionMachine {
            id: workload.session,
            session,
            script: workload.script.clone(),
            next: 0,
            state: if workload.script.is_empty() {
                MachineState::Done
            } else {
                MachineState::Ready
            },
            cursor: Duration::ZERO,
            latencies: Vec::new(),
        }
    }

    /// The workload's session index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> MachineState {
        self.state
    }

    /// Gestures not yet begun.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.next
    }

    /// The session's virtual completion cursor so far: the sum of all
    /// committed charged latencies (the fleet's makespan is the
    /// maximum cursor).
    pub fn cursor(&self) -> Duration {
        self.cursor
    }

    /// Charged latencies of committed query-bearing interactions.
    pub fn latencies(&self) -> &[Duration] {
        &self.latencies
    }

    /// The wrapped session (e.g. for viewport inspection in tests).
    pub fn session(&self) -> &MobileSession<'a> {
        &self.session
    }

    /// Begin the next gesture. Returns `None` when the script is
    /// exhausted (the machine is [`MachineState::Done`]). A `View`
    /// step should be committed immediately with
    /// [`SessionMachine::commit_view`]; a `Query` step parks the
    /// machine until [`SessionMachine::commit_query`].
    pub fn begin_next(&mut self) -> Result<Option<GestureStep>> {
        debug_assert_ne!(
            self.state,
            MachineState::AwaitingQuery,
            "begin while parked"
        );
        if self.state == MachineState::Done {
            return Ok(None);
        }
        let Some(gesture) = self.script.get(self.next) else {
            self.state = MachineState::Done;
            return Ok(None);
        };
        let gesture = gesture.clone();
        self.next += 1;
        let step = self.session.begin_gesture(&gesture)?;
        if matches!(step, GestureStep::Query(_)) {
            self.state = MachineState::AwaitingQuery;
        }
        Ok(Some(step))
    }

    /// Commit a begun view gesture and advance the virtual cursor.
    pub fn commit_view(&mut self, pending: ViewPending) -> InteractionResult {
        let result = self.session.commit_view(pending);
        self.settle(&result)
    }

    /// Resume a parked machine with its query's resolution.
    pub fn commit_query(
        &mut self,
        pending: QueryPending,
        outcome: &QueryOutcome,
    ) -> InteractionResult {
        debug_assert_eq!(
            self.state,
            MachineState::AwaitingQuery,
            "commit out of turn"
        );
        let result = self.session.commit_query(pending, outcome);
        self.state = MachineState::Ready;
        self.latencies.push(result.charged_latency);
        self.settle(&result)
    }

    fn settle(&mut self, result: &InteractionResult) -> InteractionResult {
        self.cursor += result.charged_latency;
        if self.next >= self.script.len() && self.state == MachineState::Ready {
            self.state = MachineState::Done;
        }
        result.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gestures::GestureConfig;
    use crate::network::NetworkProfile;
    use crate::serve::zipf_sessions;
    use drugtree_query::optimizer::{Optimizer, OptimizerConfig};
    use drugtree_sources::source::SourceCapabilities;

    fn dataset() -> Dataset {
        drugtree_query::dataset::test_fixtures::small_dataset(SourceCapabilities::full())
    }

    fn executor() -> Executor {
        Executor::new(Optimizer::new(OptimizerConfig::full()))
    }

    /// Drive one machine to completion, resolving queries inline the
    /// way `MobileSession::apply` would.
    fn drive(machine: &mut SessionMachine<'_>, dataset: &Dataset, executor: &Executor) {
        while let Some(step) = machine.begin_next().expect("begin") {
            match step {
                GestureStep::View(p) => {
                    machine.commit_view(p);
                }
                GestureStep::Query(p) => {
                    let result = Arc::new(executor.execute(dataset, &p.query).expect("execute"));
                    let outcome = QueryOutcome::Rows {
                        charged: result.metrics.charged_cost,
                        query_latency: result.metrics.virtual_cost,
                        result,
                    };
                    machine.commit_query(p, &outcome);
                }
            }
        }
        assert_eq!(machine.state(), MachineState::Done);
    }

    #[test]
    fn machine_replay_matches_apply() {
        let d = dataset();
        let workloads = zipf_sessions(
            &d.tree,
            &d.index,
            1,
            &GestureConfig {
                len: 12,
                ..Default::default()
            },
        );

        // Inline apply() replay.
        let e1 = executor();
        let mut session = MobileSession::new(&d, &e1, NetworkProfile::CELL_4G);
        session.set_session_id(0);
        let mut applied_total = Duration::ZERO;
        let mut applied_latencies = Vec::new();
        for g in &workloads[0].script {
            let r = session.apply(g).expect("apply");
            applied_total += r.charged_latency;
            if r.cache_hit.is_some() {
                applied_latencies.push(r.charged_latency);
            }
        }

        // State-machine replay on a fresh executor.
        let e2 = executor();
        let layout = Arc::new(TreeLayout::compute(&d.tree, &d.index));
        let mut machine = SessionMachine::new(&d, &e2, layout, &workloads[0]);
        drive(&mut machine, &d, &e2);

        assert_eq!(machine.cursor(), applied_total, "same charged total");
        assert_eq!(
            machine.latencies().len(),
            workloads[0]
                .script
                .iter()
                .filter(|g| !matches!(
                    g,
                    Gesture::Pan { .. } | Gesture::ZoomIn { .. } | Gesture::ZoomOut { .. }
                ))
                .count(),
            "every query gesture recorded a latency"
        );
    }

    #[test]
    fn query_gestures_park_the_machine() {
        let d = dataset();
        let e = executor();
        let layout = Arc::new(TreeLayout::compute(&d.tree, &d.index));
        let clade_a = d.index.by_label("cladeA").unwrap();
        let workload = SessionWorkload {
            session: 3,
            network: NetworkProfile::WIFI,
            script: vec![Gesture::Pan { dy: 1.0 }, Gesture::Expand { node: clade_a }],
        };
        let mut machine = SessionMachine::new(&d, &e, layout, &workload);
        assert_eq!(machine.state(), MachineState::Ready);
        assert_eq!(machine.remaining(), 2);

        let step = machine.begin_next().unwrap().expect("pan");
        let GestureStep::View(p) = step else {
            panic!("pan is a view gesture")
        };
        machine.commit_view(p);
        assert_eq!(machine.state(), MachineState::Ready);

        let step = machine.begin_next().unwrap().expect("expand");
        let GestureStep::Query(p) = step else {
            panic!("expand bears a query")
        };
        assert_eq!(machine.state(), MachineState::AwaitingQuery);
        let outcome = QueryOutcome::Degraded {
            reason: crate::session::DegradedReason::Shed,
            charged: Duration::from_millis(5),
        };
        let r = machine.commit_query(p, &outcome);
        assert_eq!(r.rows, 0);
        assert_eq!(r.charged_latency, Duration::from_millis(5));
        assert_eq!(machine.state(), MachineState::Done);
        assert!(machine.begin_next().unwrap().is_none());
    }

    #[test]
    fn degraded_outcomes_preserve_the_viewport() {
        let d = dataset();
        let e = executor();
        let layout = Arc::new(TreeLayout::compute(&d.tree, &d.index));
        let clade_a = d.index.by_label("cladeA").unwrap();
        let workload = SessionWorkload {
            session: 0,
            network: NetworkProfile::CELL_4G,
            script: vec![Gesture::Expand { node: clade_a }],
        };
        let mut machine = SessionMachine::new(&d, &e, layout, &workload);
        let Some(GestureStep::Query(p)) = machine.begin_next().unwrap() else {
            panic!("expand bears a query")
        };
        // A failed query still focused the viewport (the view half
        // already ran): graceful degradation keeps the UI moving.
        machine.commit_query(
            p,
            &QueryOutcome::Degraded {
                reason: crate::session::DegradedReason::SourceOutage,
                charged: Duration::from_millis(80),
            },
        );
        assert_eq!(
            machine
                .session()
                .viewport()
                .visible_leaves(machine.session().layout()),
            d.index.interval(clade_a)
        );
    }
}
