//! Error type for the mobile layer.

use std::fmt;

/// Errors from layout, sessions, or delivery simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MobileError {
    /// A gesture referenced an unknown node.
    UnknownNode(String),
    /// The viewport degenerated (zero span).
    DegenerateViewport(String),
    /// Underlying query failure.
    Query(String),
}

impl fmt::Display for MobileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobileError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            MobileError::DegenerateViewport(msg) => {
                write!(f, "degenerate viewport: {msg}")
            }
            MobileError::Query(msg) => write!(f, "query error: {msg}"),
        }
    }
}

impl std::error::Error for MobileError {}

impl From<drugtree_query::QueryError> for MobileError {
    fn from(e: drugtree_query::QueryError) -> Self {
        MobileError::Query(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MobileError::UnknownNode("x".into())
            .to_string()
            .contains('x'));
    }
}
