//! Error type for the mobile layer.

use std::fmt;

/// Errors from layout, sessions, or delivery simulation.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a
/// wildcard arm so new failure kinds can be added without a breaking
/// release. Wrapped lower-layer errors are reachable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MobileError {
    /// A gesture referenced an unknown node.
    UnknownNode(String),
    /// The viewport degenerated (zero span).
    DegenerateViewport(String),
    /// Underlying query failure.
    Query(drugtree_query::QueryError),
}

impl fmt::Display for MobileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobileError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            MobileError::DegenerateViewport(msg) => {
                write!(f, "degenerate viewport: {msg}")
            }
            MobileError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for MobileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MobileError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drugtree_query::QueryError> for MobileError {
    fn from(e: drugtree_query::QueryError) -> Self {
        MobileError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MobileError::UnknownNode("x".into())
            .to_string()
            .contains('x'));
    }
}
