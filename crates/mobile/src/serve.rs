//! Multi-session workload generation for the concurrent serving path.
//!
//! Experiment E11 drives M concurrent mobile sessions against one
//! shared executor. What makes sharing pay off is *cross-session
//! locality*: real users of one dataset cluster on the same hot
//! clades (the well-studied protein families), so concurrent sessions
//! issue overlapping subtree queries that single-flight and batch
//! coalescing can merge. The generator here produces one deterministic
//! gesture script per session, all sampling the **same global
//! hot-clade ranking** with per-session RNG streams: sessions disagree
//! on order and timing but agree on what is hot, exactly the workload
//! shape the serving layer exploits.

use crate::gestures::{zipf_sample, GestureConfig};
use crate::network::NetworkProfile;
use crate::session::Gesture;
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::{NodeId, Tree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One session's share of a concurrent workload.
#[derive(Debug, Clone)]
pub struct SessionWorkload {
    /// Session index (also the OS-thread index in the server harness).
    pub session: usize,
    /// Network profile this session's transfers are charged under.
    pub network: NetworkProfile,
    /// The gesture script to replay.
    pub script: Vec<Gesture>,
}

/// The shared hot-clade ranking every session samples from: internal
/// clades in descending subtree size (position = Zipf rank), excluding
/// clades spanning more than half the tree so "hot" means a real
/// drill-down target, not the root. Deterministic: ties break on
/// interval position.
pub fn hot_clade_ranking(tree: &Tree, index: &TreeIndex) -> Vec<NodeId> {
    let half = (index.leaf_count() / 2).max(1);
    let mut clades: Vec<NodeId> = tree
        .node_ids()
        .filter(|&id| {
            !tree.node_unchecked(id).is_leaf() && index.interval(id).len() as usize <= half
        })
        .collect();
    clades.sort_by_key(|&id| {
        let iv = index.interval(id);
        (std::cmp::Reverse(iv.len()), iv.lo)
    });
    if clades.is_empty() {
        clades.push(tree.root());
    }
    clades
}

/// Generate `sessions` deterministic scripts over one shared hot-clade
/// ranking. `config.zipf_theta` sets how strongly sessions concentrate
/// on the same few clades (θ=0: uniform, no cross-session locality to
/// exploit; θ≥1: heavy overlap). `config.seed` keys the whole fleet;
/// each session derives an independent stream from it.
pub fn zipf_sessions(
    tree: &Tree,
    index: &TreeIndex,
    sessions: usize,
    config: &GestureConfig,
) -> Vec<SessionWorkload> {
    let ranking = hot_clade_ranking(tree, index);
    (0..sessions)
        .map(|s| {
            let mut rng = SmallRng::seed_from_u64(
                config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(s as u64),
            );
            let mut script = Vec::with_capacity(config.len);
            while script.len() < config.len {
                let roll: f64 = rng.gen();
                // Always open with an expand: an InspectViewport before
                // any focus gesture would query the fullscreen (whole
                // tree) and trivialize every later probe.
                if script.is_empty() || roll < 0.8 {
                    // Expand a clade from the shared hot ranking.
                    let pick = zipf_sample(&mut rng, ranking.len(), config.zipf_theta);
                    script.push(Gesture::Expand {
                        node: ranking[pick],
                    });
                } else if roll < 0.9 {
                    script.push(Gesture::InspectViewport);
                } else {
                    script.push(Gesture::Pan {
                        dy: (rng.gen::<f64>() - 0.5) * 8.0,
                    });
                }
            }
            SessionWorkload {
                session: s,
                network: NetworkProfile::CELL_4G,
                script,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_phylo::newick::parse_newick;
    use std::collections::HashSet;

    fn tree() -> (Tree, TreeIndex) {
        let t = parse_newick(
            "(((a:1,b:1)ab:1,(c:1,d:1)cd:1)abcd:1,((e:1,f:1)ef:1,(g:1,h:1)gh:1)efgh:1)root;",
        )
        .unwrap();
        let i = TreeIndex::build(&t);
        (t, i)
    }

    #[test]
    fn ranking_excludes_root_and_is_deterministic() {
        let (t, i) = tree();
        let r = hot_clade_ranking(&t, &i);
        assert!(!r.contains(&t.root()));
        assert_eq!(r, hot_clade_ranking(&t, &i));
        // Largest eligible clades first.
        assert!(i.interval(r[0]).len() >= i.interval(*r.last().unwrap()).len());
    }

    #[test]
    fn sessions_are_deterministic_and_distinct() {
        let (t, i) = tree();
        let cfg = GestureConfig {
            len: 50,
            ..Default::default()
        };
        let a = zipf_sessions(&t, &i, 4, &cfg);
        let b = zipf_sessions(&t, &i, 4, &cfg);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.script, y.script, "same seed, same fleet");
        }
        assert_ne!(a[0].script, a[1].script, "sessions differ");
    }

    #[test]
    fn fleet_scale_replay_is_deterministic() {
        let (t, i) = tree();
        let cfg = GestureConfig {
            len: 6,
            zipf_theta: 1.0,
            ..Default::default()
        };
        let a = zipf_sessions(&t, &i, 4096, &cfg);
        let b = zipf_sessions(&t, &i, 4096, &cfg);
        assert_eq!(a.len(), 4096);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.session, y.session);
            assert_eq!(x.script, y.script, "fixed seed must replay byte-alike");
        }
        // A different seed produces a different fleet.
        let other = zipf_sessions(
            &t,
            &i,
            4096,
            &GestureConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.script != y.script),
            "seed must key the fleet"
        );
    }

    #[test]
    fn fleet_scale_distribution_shape_is_zipfian() {
        let (t, i) = tree();
        let ranking = hot_clade_ranking(&t, &i);
        let cfg = GestureConfig {
            len: 6,
            zipf_theta: 1.0,
            ..Default::default()
        };
        let fleet = zipf_sessions(&t, &i, 4096, &cfg);
        let mut expands: u64 = 0;
        let mut per_rank = vec![0u64; ranking.len()];
        let mut gestures: u64 = 0;
        for w in &fleet {
            assert!(
                matches!(w.script[0], Gesture::Expand { .. }),
                "scripts open with a focus gesture"
            );
            for g in &w.script {
                gestures += 1;
                if let Gesture::Expand { node } = g {
                    expands += 1;
                    let rank = ranking.iter().position(|r| r == node).unwrap();
                    per_rank[rank] += 1;
                }
            }
        }
        // ~80% of gestures are expands (first gesture is forced).
        let expand_share = expands as f64 / gestures as f64;
        assert!(
            (0.75..=0.90).contains(&expand_share),
            "expand share {expand_share:.3} out of family"
        );
        // Zipf shape: the top-ranked clade dominates and the head
        // outweighs the tail. At 4096×6 gestures the law of large
        // numbers makes these comparisons rock-solid.
        assert!(
            per_rank[0] > per_rank[ranking.len() - 1],
            "rank 0 ({}) must beat the coldest rank ({})",
            per_rank[0],
            per_rank[ranking.len() - 1]
        );
        assert_eq!(
            per_rank.iter().max(),
            Some(&per_rank[0]),
            "hottest clade is the Zipf head"
        );
        let head: u64 = per_rank.iter().take(ranking.len() / 2).sum();
        assert!(
            head as f64 > 0.6 * expands as f64,
            "head half holds the bulk of traffic ({head}/{expands})"
        );
    }

    #[test]
    fn skewed_sessions_share_hot_clades() {
        let (t, i) = tree();
        let cfg = GestureConfig {
            len: 80,
            zipf_theta: 1.5,
            ..Default::default()
        };
        let fleet = zipf_sessions(&t, &i, 4, &cfg);
        let expanded = |w: &SessionWorkload| -> HashSet<u32> {
            w.script
                .iter()
                .filter_map(|g| match g {
                    Gesture::Expand { node } => Some(node.0),
                    _ => None,
                })
                .collect()
        };
        let mut common = expanded(&fleet[0]);
        for w in &fleet[1..] {
            common = common.intersection(&expanded(w)).copied().collect();
        }
        assert!(!common.is_empty(), "skewed sessions overlap on hot clades");
    }
}
