//! Progressive (chunked) result delivery.
//!
//! Blocking delivery ships the whole result as one response: the user
//! stares at a spinner for `rtt + all_bytes/bandwidth`. Progressive
//! delivery streams fixed-size chunks over one connection: the first
//! rows are on screen after `rtt + chunk_bytes/bandwidth`, and the UI
//! fills in behind. Experiment E5 measures exactly this first-usable-
//! response gap across network profiles.

use crate::network::{estimate_row_bytes, NetworkProfile};
use drugtree_store::value::Value;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Default rows per chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 20;

/// Arrival schedule of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkTiming {
    /// Rows in the chunk.
    pub rows: usize,
    /// Bytes on the wire.
    pub bytes: usize,
    /// Time from request start until the chunk is fully received.
    pub arrival: Duration,
}

/// The delivery schedule of one result set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliverySchedule {
    /// Chunk arrivals, in order.
    pub chunks: Vec<ChunkTiming>,
    /// Total bytes shipped.
    pub total_bytes: usize,
}

impl DeliverySchedule {
    /// Time until the first rows are usable (an empty result still
    /// costs one RTT to learn it is empty).
    pub fn first_usable(&self) -> Duration {
        self.chunks.first().map_or(Duration::ZERO, |c| c.arrival)
    }

    /// Time until the full result has arrived.
    pub fn complete(&self) -> Duration {
        self.chunks.last().map_or(Duration::ZERO, |c| c.arrival)
    }
}

/// Blocking delivery: one response carrying everything.
pub fn blocking_delivery(rows: &[Vec<Value>], net: &NetworkProfile) -> DeliverySchedule {
    let bytes: usize = rows
        .iter()
        .map(|r| estimate_row_bytes(r))
        .sum::<usize>()
        .max(16);
    DeliverySchedule {
        chunks: vec![ChunkTiming {
            rows: rows.len(),
            bytes,
            arrival: net.transfer_time(bytes),
        }],
        total_bytes: bytes,
    }
}

/// Progressive delivery in chunks of `chunk_rows`.
pub fn progressive_delivery(
    rows: &[Vec<Value>],
    net: &NetworkProfile,
    chunk_rows: usize,
) -> DeliverySchedule {
    let chunk_rows = chunk_rows.max(1);
    if rows.is_empty() {
        return blocking_delivery(rows, net);
    }
    let mut chunks = Vec::new();
    let mut elapsed = Duration::ZERO;
    let mut total_bytes = 0usize;
    for (i, chunk) in rows.chunks(chunk_rows).enumerate() {
        let bytes: usize = chunk
            .iter()
            .map(|r| estimate_row_bytes(r))
            .sum::<usize>()
            .max(16);
        total_bytes += bytes;
        // First chunk pays the RTT; later chunks stream on the open
        // connection.
        elapsed += if i == 0 {
            net.transfer_time(bytes)
        } else {
            net.streaming_time(bytes)
        };
        chunks.push(ChunkTiming {
            rows: chunk.len(),
            bytes,
            arrival: elapsed,
        });
    }
    DeliverySchedule {
        chunks,
        total_bytes,
    }
}

/// Pick the largest chunk size whose *first chunk* still arrives
/// within `deadline` on the given network — the adaptive policy a
/// client tunes per connection. Falls back to one row per chunk when
/// even that misses the deadline (the RTT alone may exceed it).
pub fn budgeted_chunk_rows(
    net: &NetworkProfile,
    bytes_per_row: usize,
    deadline: Duration,
) -> usize {
    let bytes_per_row = bytes_per_row.max(1);
    if deadline <= net.rtt {
        return 1;
    }
    let budget = (deadline - net.rtt).as_secs_f64();
    let rows = (budget * net.bandwidth_bps as f64 / 8.0 / bytes_per_row as f64).floor();
    (rows as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::from("CHEMBL-something"),
                    Value::Float(6.5),
                ]
            })
            .collect()
    }

    #[test]
    fn progressive_first_chunk_beats_blocking() {
        let rows = rows(500);
        let net = NetworkProfile::CELL_3G;
        let blocking = blocking_delivery(&rows, &net);
        let progressive = progressive_delivery(&rows, &net, DEFAULT_CHUNK_ROWS);
        assert!(progressive.first_usable() < blocking.first_usable());
        // Completion times are close: same bytes, one shared RTT.
        let d = progressive.complete().abs_diff(blocking.complete());
        assert!(d < Duration::from_millis(5), "gap {d:?}");
        assert_eq!(progressive.total_bytes, blocking.total_bytes);
    }

    #[test]
    fn chunk_arrivals_are_monotone() {
        let rows = rows(123);
        let s = progressive_delivery(&rows, &NetworkProfile::CELL_4G, 10);
        assert_eq!(s.chunks.len(), 13);
        assert!(s.chunks.windows(2).all(|w| w[0].arrival < w[1].arrival));
        let delivered: usize = s.chunks.iter().map(|c| c.rows).sum();
        assert_eq!(delivered, 123);
    }

    #[test]
    fn empty_result_costs_one_rtt() {
        let s = progressive_delivery(&[], &NetworkProfile::WIFI, 20);
        assert_eq!(s.chunks.len(), 1);
        assert!(s.first_usable() >= NetworkProfile::WIFI.rtt);
    }

    #[test]
    fn first_usable_nearly_profile_independent_relative_to_blocking() {
        // The E5 claim: with progressive delivery, the first-chunk
        // latency degrades far less across profiles than blocking
        // full-result latency does.
        let rows = rows(1000);
        let blocking_ratio = blocking_delivery(&rows, &NetworkProfile::EDGE)
            .complete()
            .as_secs_f64()
            / blocking_delivery(&rows, &NetworkProfile::WIFI)
                .complete()
                .as_secs_f64();
        let progressive_ratio = progressive_delivery(&rows, &NetworkProfile::EDGE, 20)
            .first_usable()
            .as_secs_f64()
            / progressive_delivery(&rows, &NetworkProfile::WIFI, 20)
                .first_usable()
                .as_secs_f64();
        assert!(
            progressive_ratio < blocking_ratio,
            "progressive {progressive_ratio:.1}x vs blocking {blocking_ratio:.1}x"
        );
    }

    #[test]
    fn single_chunk_when_small() {
        let rows = rows(5);
        let s = progressive_delivery(&rows, &NetworkProfile::WIFI, 20);
        assert_eq!(s.chunks.len(), 1);
        assert_eq!(s.first_usable(), s.complete());
    }

    #[test]
    fn budgeted_chunk_meets_deadline() {
        let deadline = Duration::from_millis(250);
        let row_bytes = 60;
        for net in NetworkProfile::ALL {
            let rows_per_chunk = budgeted_chunk_rows(&net, row_bytes, deadline);
            assert!(rows_per_chunk >= 1);
            let data = rows(rows_per_chunk.min(2000));
            let schedule = progressive_delivery(&data, &net, rows_per_chunk);
            if deadline > net.rtt {
                assert!(
                    schedule.first_usable() <= deadline + Duration::from_millis(20),
                    "{}: first chunk {:?} blows the {deadline:?} deadline",
                    net.name,
                    schedule.first_usable()
                );
            }
        }
    }

    #[test]
    fn faster_links_earn_bigger_chunks() {
        let a = budgeted_chunk_rows(&NetworkProfile::WIFI, 60, Duration::from_millis(200));
        let b = budgeted_chunk_rows(&NetworkProfile::EDGE, 60, Duration::from_millis(200));
        assert!(a > b, "wifi {a} vs edge {b}");
        // Impossible deadline degrades to single-row chunks.
        assert_eq!(
            budgeted_chunk_rows(&NetworkProfile::EDGE, 60, Duration::from_millis(1)),
            1
        );
    }

    #[test]
    fn zero_chunk_rows_clamped() {
        let rows = rows(3);
        let s = progressive_delivery(&rows, &NetworkProfile::WIFI, 0);
        assert_eq!(s.chunks.len(), 3);
    }
}
