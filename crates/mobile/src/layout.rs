//! Rectangular cladogram layout.
//!
//! The standard phylogeny rendering: leaves at integer y positions in
//! leaf-rank order, internal nodes at the mean y of their children,
//! x equal to the cumulative branch length from the root (scaled so
//! the deepest tip sits at x = 1.0). Coordinates are abstract units;
//! the viewport maps them to pixels.

use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// Layout coordinates for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePosition {
    /// Horizontal position in `[0, 1]` (root at 0, deepest tip at 1).
    pub x: f64,
    /// Vertical position in leaf units (leaf k sits at y = k).
    pub y: f64,
}

/// Layout of a whole tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeLayout {
    positions: Vec<NodePosition>,
    /// Height of the layout in leaf units.
    leaf_count: u32,
}

impl TreeLayout {
    /// Compute the layout in two passes (root distances, then y by
    /// postorder averaging).
    pub fn compute(tree: &Tree, index: &TreeIndex) -> TreeLayout {
        let n = tree.len();
        let mut x = vec![0.0f64; n];
        let mut max_depth: f64 = 0.0;
        for &id in &tree.preorder() {
            if let Some(parent) = tree.node_unchecked(id).parent {
                x[id.index()] = x[parent.index()] + tree.node_unchecked(id).branch_length.max(0.0);
                max_depth = max_depth.max(x[id.index()]);
            }
        }
        if max_depth > 0.0 {
            for v in &mut x {
                *v /= max_depth;
            }
        }

        let mut y = vec![0.0f64; n];
        for &id in &tree.postorder() {
            let node = tree.node_unchecked(id);
            if node.is_leaf() {
                // Every leaf has a rank in its own index; 0.0 keeps
                // the layout total if that invariant ever breaks.
                y[id.index()] = index.rank_of(id).map_or(0.0, f64::from);
            } else {
                let sum: f64 = node.children.iter().map(|c| y[c.index()]).sum();
                y[id.index()] = sum / node.children.len() as f64;
            }
        }

        TreeLayout {
            positions: (0..n).map(|i| NodePosition { x: x[i], y: y[i] }).collect(),
            leaf_count: index.leaf_count() as u32,
        }
    }

    /// Position of a node.
    pub fn position(&self, id: NodeId) -> NodePosition {
        self.positions[id.index()]
    }

    /// Number of leaves (vertical extent).
    pub fn leaf_count(&self) -> u32 {
        self.leaf_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_phylo::newick::parse_newick;

    fn layout(newick: &str) -> (Tree, TreeIndex, TreeLayout) {
        let tree = parse_newick(newick).unwrap();
        let index = TreeIndex::build(&tree);
        let l = TreeLayout::compute(&tree, &index);
        (tree, index, l)
    }

    #[test]
    fn leaves_at_integer_rows() {
        let (tree, index, l) = layout("((a:1,b:1):1,(c:1,d:1):1);");
        for (rank, &leaf) in tree.leaves().iter().enumerate() {
            assert_eq!(l.position(leaf).y, rank as f64);
            assert_eq!(index.rank_of(leaf), Some(rank as u32));
        }
        assert_eq!(l.leaf_count(), 4);
    }

    #[test]
    fn internal_nodes_centered() {
        let (tree, _, l) = layout("((a:1,b:1)ab:1,(c:1,d:1)cd:1)r;");
        let ab = tree.find_by_label("ab").unwrap();
        let cd = tree.find_by_label("cd").unwrap();
        assert_eq!(l.position(ab).y, 0.5);
        assert_eq!(l.position(cd).y, 2.5);
        assert_eq!(l.position(tree.root()).y, 1.5);
    }

    #[test]
    fn x_normalized_to_unit_depth() {
        let (tree, _, l) = layout("((a:3,b:1)ab:1,c:2)r;");
        // Deepest tip: a at distance 4.
        let a = tree.find_by_label("a").unwrap();
        assert!((l.position(a).x - 1.0).abs() < 1e-12);
        assert_eq!(l.position(tree.root()).x, 0.0);
        let c = tree.find_by_label("c").unwrap();
        assert!((l.position(c).x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_tree_does_not_divide_by_zero() {
        let (tree, _, l) = layout("(a:0,b:0);");
        assert_eq!(l.position(tree.root()).x, 0.0);
        for leaf in tree.leaves() {
            assert_eq!(l.position(leaf).x, 0.0);
        }
    }
}
