//! Mobile network profiles.
//!
//! Transfer time is charged to the virtual clock exactly like source
//! latency: `rtt + bytes / bandwidth`. Profiles approximate 2013-era
//! radio links — the environment the paper's mobile users sat behind.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A last-hop network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Display name.
    pub name: &'static str,
    /// Downlink bandwidth, bits per second.
    pub bandwidth_bps: u64,
    /// Round-trip time.
    pub rtt: Duration,
}

impl NetworkProfile {
    /// Office WiFi: 20 Mbit/s, 20 ms RTT.
    pub const WIFI: NetworkProfile = NetworkProfile {
        name: "wifi",
        bandwidth_bps: 20_000_000,
        rtt: Duration::from_millis(20),
    };

    /// Early LTE: 5 Mbit/s, 70 ms RTT.
    pub const CELL_4G: NetworkProfile = NetworkProfile {
        name: "4g",
        bandwidth_bps: 5_000_000,
        rtt: Duration::from_millis(70),
    };

    /// HSPA 3G: 1 Mbit/s, 150 ms RTT.
    pub const CELL_3G: NetworkProfile = NetworkProfile {
        name: "3g",
        bandwidth_bps: 1_000_000,
        rtt: Duration::from_millis(150),
    };

    /// EDGE fallback: 200 kbit/s, 400 ms RTT.
    pub const EDGE: NetworkProfile = NetworkProfile {
        name: "edge",
        bandwidth_bps: 200_000,
        rtt: Duration::from_millis(400),
    };

    /// All built-in profiles, fastest first.
    pub const ALL: [NetworkProfile; 4] = [
        NetworkProfile::WIFI,
        NetworkProfile::CELL_4G,
        NetworkProfile::CELL_3G,
        NetworkProfile::EDGE,
    ];

    /// Time to deliver one response of `bytes` (one RTT + serialization
    /// on the link).
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let secs = (bytes as f64 * 8.0) / self.bandwidth_bps as f64;
        self.rtt + Duration::from_secs_f64(secs)
    }

    /// Time for a follow-up chunk on an open connection (no extra
    /// RTT; the stream is already flowing).
    pub fn streaming_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64((bytes as f64 * 8.0) / self.bandwidth_bps as f64)
    }
}

/// Rough wire size of one result row (JSON-ish framing).
pub fn estimate_row_bytes(row: &[drugtree_store::value::Value]) -> usize {
    use drugtree_store::value::Value;
    2 + row
        .iter()
        .map(|v| match v {
            Value::Null => 4,
            Value::Bool(_) => 5,
            Value::Int(_) => 8,
            Value::Float(_) => 12,
            Value::Text(s) => s.len() + 3,
        } + 1)
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_store::value::Value;

    #[test]
    fn transfer_time_components() {
        // 1 Mbit/s, 1 KB -> 8 ms on the wire + 150 ms RTT.
        let t = NetworkProfile::CELL_3G.transfer_time(1000);
        assert_eq!(t, Duration::from_millis(150) + Duration::from_millis(8));
        assert_eq!(
            NetworkProfile::CELL_3G.streaming_time(1000),
            Duration::from_millis(8)
        );
    }

    #[test]
    fn profiles_ordered_by_speed() {
        let bytes = 100_000;
        let times: Vec<Duration> = NetworkProfile::ALL
            .iter()
            .map(|p| p.transfer_time(bytes))
            .collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn zero_bytes_costs_one_rtt() {
        assert_eq!(
            NetworkProfile::WIFI.transfer_time(0),
            NetworkProfile::WIFI.rtt
        );
    }

    #[test]
    fn row_bytes_scale_with_content() {
        let small = estimate_row_bytes(&[Value::Int(1)]);
        let big = estimate_row_bytes(&[
            Value::Int(1),
            Value::from("a-reasonably-long-smiles-string-CCCCCC"),
            Value::Float(1.0),
        ]);
        assert!(big > small);
        assert!(small > 0);
    }
}
