//! The gesture-driven interactive session.
//!
//! A session owns the client-side state (viewport, layout, network
//! profile) and borrows the shared server-side machinery (dataset +
//! executor). Every gesture produces an [`InteractionResult`] with the
//! latency breakdown a user would perceive: query time at the sources,
//! plus transfer time of the payload over the mobile link — both on
//! the virtual clock.

use crate::layout::TreeLayout;
use crate::lod::{render_visible, RenderList};
use crate::network::NetworkProfile;
use crate::pattern::{PatternClassifier, SessionPattern};
use crate::prefetch::{PrefetchBudget, Prefetcher};
use crate::progressive::{
    blocking_delivery, progressive_delivery, DeliverySchedule, DEFAULT_CHUNK_ROWS,
};
use crate::viewport::Viewport;
use crate::{MobileError, Result};
use drugtree_phylo::tree::NodeId;
use drugtree_query::ast::{Query, Scope};
use drugtree_query::{Dataset, Executor, GestureObservation, QueryResult};
use std::sync::Arc;
use std::time::Duration;

/// A user interaction.
#[derive(Debug, Clone, PartialEq)]
pub enum Gesture {
    /// Vertical pan by `dy` leaf units.
    Pan {
        /// Signed leaf-unit delta.
        dy: f64,
    },
    /// Zoom in 2× around a y position.
    ZoomIn {
        /// Focal y in leaf units.
        focus_y: f64,
    },
    /// Zoom out 2× around a y position.
    ZoomOut {
        /// Focal y in leaf units.
        focus_y: f64,
    },
    /// Tap a clade: focus the viewport on it and fetch its activities.
    Expand {
        /// The tapped node.
        node: NodeId,
    },
    /// Fetch activities for everything currently visible.
    InspectViewport,
    /// Run an explicit query (from the app's search box).
    RunQuery(Box<Query>),
}

impl Gesture {
    /// Short kind label for logs and experiment tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Gesture::Pan { .. } => "pan",
            Gesture::ZoomIn { .. } => "zoom_in",
            Gesture::ZoomOut { .. } => "zoom_out",
            Gesture::Expand { .. } => "expand",
            Gesture::InspectViewport => "inspect",
            Gesture::RunQuery(_) => "query",
        }
    }
}

/// What one gesture cost and produced.
#[derive(Debug, Clone)]
pub struct InteractionResult {
    /// Clades prefetched in the background after this gesture.
    pub prefetched: usize,
    /// Gesture kind label.
    pub gesture: &'static str,
    /// Result rows (0 for pure view changes).
    pub rows: usize,
    /// Virtual time spent querying sources.
    pub query_latency: Duration,
    /// Latency attributable to this interaction alone: the query's
    /// charged fetch cost (its share of any coalesced batch, not the
    /// whole shared clock advance) plus link transfer. Equals
    /// `complete` for a solo session; diverges under concurrent
    /// serving, where `query_latency` interleaves other sessions' work.
    pub charged_latency: Duration,
    /// Time until the first usable content reached the screen
    /// (query + first chunk).
    pub first_usable: Duration,
    /// Time until the interaction fully completed.
    pub complete: Duration,
    /// Bytes shipped over the mobile link.
    pub payload_bytes: usize,
    /// Cache outcome of the underlying query, when one ran.
    pub cache_hit: Option<bool>,
    /// Render-list summary after the gesture.
    pub visible_leaves: usize,
    /// Leaves hidden in collapsed glyphs.
    pub collapsed_leaves: usize,
}

/// A gesture split at the query boundary: the session-local half has
/// run (viewport moved, query built), the shared-state half has not.
/// Produced by [`MobileSession::begin_gesture`]; the event-driven
/// fleet scheduler executes the query on its own terms and resumes
/// the session with [`MobileSession::commit_query`].
#[derive(Debug)]
pub enum GestureStep {
    /// A pure view change: nothing left but the commit (transfer
    /// charge + observation).
    View(ViewPending),
    /// A query-bearing gesture: `query` must be executed (or shed)
    /// before the commit.
    Query(QueryPending),
}

/// A begun view gesture awaiting [`MobileSession::commit_view`].
#[derive(Debug)]
pub struct ViewPending {
    kind: &'static str,
    render: RenderList,
}

/// A begun query gesture awaiting execution and
/// [`MobileSession::commit_query`].
#[derive(Debug)]
pub struct QueryPending {
    kind: &'static str,
    /// The query this gesture needs answered.
    pub query: Query,
    /// The tapped node, for post-gesture prefetching (`Expand` only).
    node: Option<NodeId>,
}

impl QueryPending {
    /// Gesture kind label.
    pub fn kind(&self) -> &'static str {
        self.kind
    }
}

/// How a begun query gesture was resolved by whoever executed it (the
/// session itself in [`MobileSession::apply`], the fleet scheduler
/// under event-driven serving).
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The query ran: rows to deliver over the link.
    Rows {
        /// The executed result (shared with coalesced peers).
        result: Arc<QueryResult>,
        /// Latency charged to this session for the query alone (its
        /// queue wait + its share of the fetch), before transfer.
        charged: Duration,
        /// End-to-end virtual query latency as the session perceives
        /// it, before transfer.
        query_latency: Duration,
    },
    /// The query was not answered; the session gets a degraded,
    /// row-free response and moves on.
    Degraded {
        /// Why the fleet degraded this query.
        reason: DegradedReason,
        /// Latency the session still paid (queue wait, deadline, or
        /// timeout cost).
        charged: Duration,
    },
}

/// Why a fleet degraded a query instead of answering it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// Admission control rejected the query at arrival.
    Shed,
    /// The per-class deadline expired before the fetch completed.
    DeadlineExpired,
    /// Every source attempt failed (e.g. an outage storm); partial
    /// results were served from what the session already had.
    SourceOutage,
}

impl DegradedReason {
    /// Short label for logs and experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            DegradedReason::Shed => "shed",
            DegradedReason::DeadlineExpired => "deadline",
            DegradedReason::SourceOutage => "outage",
        }
    }
}

/// An interactive mobile session.
pub struct MobileSession<'a> {
    dataset: &'a Dataset,
    executor: &'a Executor,
    layout: Arc<TreeLayout>,
    viewport: Viewport,
    network: NetworkProfile,
    progressive: bool,
    chunk_rows: usize,
    prefetcher: Option<Prefetcher>,
    adaptive_prefetch: Option<AdaptiveGate>,
    session_id: Option<u32>,
    keep_log: bool,
    log: Vec<InteractionResult>,
}

/// The per-session adaptive prefetch gate: the online classifier plus
/// the last policy it reported (so only *switches* emit adapt events).
#[derive(Debug)]
struct AdaptiveGate {
    classifier: PatternClassifier,
    reported: Option<bool>,
}

impl<'a> MobileSession<'a> {
    /// Open a session over a dataset/executor pair.
    pub fn new(
        dataset: &'a Dataset,
        executor: &'a Executor,
        network: NetworkProfile,
    ) -> MobileSession<'a> {
        let layout = Arc::new(TreeLayout::compute(&dataset.tree, &dataset.index));
        MobileSession::with_layout(dataset, executor, network, layout)
    }

    /// Open a session over a precomputed cladogram layout. Fleets of
    /// thousands of sessions over one tree share a single layout
    /// instead of recomputing (and storing) it per session.
    pub fn with_layout(
        dataset: &'a Dataset,
        executor: &'a Executor,
        network: NetworkProfile,
        layout: Arc<TreeLayout>,
    ) -> MobileSession<'a> {
        let viewport = Viewport::fullscreen(&layout);
        MobileSession {
            dataset,
            executor,
            layout,
            viewport,
            network,
            progressive: true,
            chunk_rows: DEFAULT_CHUNK_ROWS,
            prefetcher: None,
            adaptive_prefetch: None,
            session_id: None,
            keep_log: true,
            log: Vec::new(),
        }
    }

    /// Enable predictive prefetching after `Expand` gestures.
    pub fn enable_prefetch(&mut self, prefetcher: Prefetcher) {
        self.prefetcher = Some(prefetcher);
    }

    /// Enable *adaptive* prefetching: `prefetcher` fires only while
    /// the session's gesture stream classifies as lateral browsing
    /// (experiment E10's profitable regime) and stays off for
    /// drill-down or unclassified streams. Policy switches are
    /// reported to the executor's adaptive runtime (when one is
    /// installed) so they land in the `adapt` event stream.
    pub fn enable_adaptive_prefetch(&mut self, prefetcher: Prefetcher) {
        self.prefetcher = Some(prefetcher);
        self.adaptive_prefetch = Some(AdaptiveGate {
            classifier: PatternClassifier::default(),
            reported: None,
        });
    }

    /// The current gesture-stream classification, when adaptive
    /// prefetch is enabled.
    pub fn prefetch_pattern(&self) -> Option<SessionPattern> {
        self.adaptive_prefetch
            .as_ref()
            .map(|g| g.classifier.pattern())
    }

    /// Tag this session with a serving-fleet id: every gesture
    /// observation it emits carries the id, so a fleet observer can
    /// attribute SLO breaches to sessions.
    pub fn set_session_id(&mut self, id: u32) {
        self.session_id = Some(id);
    }

    /// Switch between progressive and blocking delivery.
    pub fn set_progressive(&mut self, progressive: bool) {
        self.progressive = progressive;
    }

    /// Tune the progressive chunk size so the first chunk lands within
    /// `deadline` on this session's network (assuming ~100-byte rows).
    pub fn set_first_chunk_deadline(&mut self, deadline: Duration) {
        self.chunk_rows = crate::progressive::budgeted_chunk_rows(&self.network, 100, deadline);
    }

    /// Current viewport.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }

    /// The cladogram layout.
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    /// Interaction log so far.
    pub fn log(&self) -> &[InteractionResult] {
        &self.log
    }

    /// Switch interaction logging off (fleets of thousands of sessions
    /// roll results up at the scheduler instead of keeping per-session
    /// logs).
    pub fn retain_log(&mut self, keep: bool) {
        self.keep_log = keep;
    }

    /// Apply one gesture end to end: begin it, execute any query it
    /// needs against this session's executor, and commit.
    pub fn apply(&mut self, gesture: &Gesture) -> Result<InteractionResult> {
        match self.begin_gesture(gesture)? {
            GestureStep::View(pending) => Ok(self.commit_view(pending)),
            GestureStep::Query(pending) => {
                let result = Arc::new(self.executor.execute(self.dataset, &pending.query)?);
                let outcome = QueryOutcome::Rows {
                    charged: result.metrics.charged_cost,
                    query_latency: result.metrics.virtual_cost,
                    result,
                };
                Ok(self.commit_query(pending, &outcome))
            }
        }
    }

    /// Run the session-local half of a gesture: move the viewport and
    /// decide what (if anything) must be asked of the shared executor.
    /// Touches no shared state — fleet workers begin whole cohorts of
    /// sessions in parallel — and a failed begin leaves nothing to
    /// commit (the gesture is not logged).
    pub fn begin_gesture(&mut self, gesture: &Gesture) -> Result<GestureStep> {
        let step = match gesture {
            Gesture::Pan { dy } => {
                self.viewport.pan(*dy, &self.layout);
                self.view_pending(gesture.kind())
            }
            Gesture::ZoomIn { focus_y } => {
                self.viewport.zoom(2.0, *focus_y, &self.layout)?;
                self.view_pending(gesture.kind())
            }
            Gesture::ZoomOut { focus_y } => {
                self.viewport.zoom(0.5, *focus_y, &self.layout)?;
                self.view_pending(gesture.kind())
            }
            Gesture::Expand { node } => {
                if node.index() >= self.dataset.tree.len() {
                    return Err(MobileError::UnknownNode(format!("n{}", node.0)));
                }
                let iv = self.dataset.index.interval(*node);
                self.viewport.focus_interval(iv);
                GestureStep::Query(QueryPending {
                    kind: gesture.kind(),
                    query: Query::activities(Scope::Interval(iv)),
                    node: Some(*node),
                })
            }
            Gesture::InspectViewport => {
                let iv = self.viewport.visible_leaves(&self.layout);
                GestureStep::Query(QueryPending {
                    kind: gesture.kind(),
                    query: Query::activities(Scope::Interval(iv)),
                    node: None,
                })
            }
            Gesture::RunQuery(query) => GestureStep::Query(QueryPending {
                kind: gesture.kind(),
                query: (**query).clone(),
                node: None,
            }),
        };
        Ok(step)
    }

    fn view_pending(&self, kind: &'static str) -> GestureStep {
        GestureStep::View(ViewPending {
            kind,
            render: self.render(),
        })
    }

    /// Commit a pure view change: no source work, only the render
    /// payload crossing the link.
    pub fn commit_view(&mut self, pending: ViewPending) -> InteractionResult {
        let ViewPending { kind, render } = pending;
        let transfer = self.network.transfer_time(render.payload_bytes);
        let at = self.dataset.clock.advance(transfer);
        if let Some(obs) = self.executor.observer() {
            obs.on_gesture(&GestureObservation {
                gesture: kind,
                rows: 0,
                compute: Duration::ZERO,
                network: transfer,
                payload_bytes: render.payload_bytes,
                cache_hit: None,
                session: self.session_id,
                charged: transfer,
                at,
            });
        }
        let result = InteractionResult {
            prefetched: 0,
            gesture: kind,
            rows: 0,
            query_latency: Duration::ZERO,
            charged_latency: transfer,
            first_usable: transfer,
            complete: transfer,
            payload_bytes: render.payload_bytes,
            cache_hit: None,
            visible_leaves: render.visible_leaves,
            collapsed_leaves: render.collapsed_leaves,
        };
        self.push_log(&result);
        result
    }

    /// Commit a query gesture given how its query was resolved: ship
    /// rows (or the degraded response) over the link, charge the
    /// clock, emit the gesture observation, and log.
    pub fn commit_query(
        &mut self,
        pending: QueryPending,
        outcome: &QueryOutcome,
    ) -> InteractionResult {
        let QueryPending { kind, node, .. } = pending;
        let mut interaction = match outcome {
            QueryOutcome::Rows {
                result,
                charged,
                query_latency,
            } => {
                let schedule: DeliverySchedule = if self.progressive {
                    progressive_delivery(&result.rows, &self.network, self.chunk_rows)
                } else {
                    blocking_delivery(&result.rows, &self.network)
                };
                let at = self.dataset.clock.advance(schedule.complete());
                let render = self.render();
                if let Some(obs) = self.executor.observer() {
                    obs.on_gesture(&GestureObservation {
                        gesture: kind,
                        rows: result.rows.len(),
                        compute: result.metrics.virtual_cost,
                        network: schedule.complete(),
                        payload_bytes: schedule.total_bytes,
                        cache_hit: result.metrics.cache_hit,
                        session: self.session_id,
                        charged: *charged + schedule.complete(),
                        at,
                    });
                }
                InteractionResult {
                    prefetched: 0,
                    gesture: kind,
                    rows: result.rows.len(),
                    query_latency: *query_latency,
                    charged_latency: *charged + schedule.complete(),
                    first_usable: *query_latency + schedule.first_usable(),
                    complete: *query_latency + schedule.complete(),
                    payload_bytes: schedule.total_bytes,
                    cache_hit: result.metrics.cache_hit,
                    visible_leaves: render.visible_leaves,
                    collapsed_leaves: render.collapsed_leaves,
                }
            }
            QueryOutcome::Degraded { charged, .. } => {
                // The session still paid the wait; only an error card
                // crosses the link, and what was already on screen
                // stays (graceful partial results).
                let at = self.dataset.clock.advance(*charged);
                let render = self.render();
                if let Some(obs) = self.executor.observer() {
                    obs.on_gesture(&GestureObservation {
                        gesture: kind,
                        rows: 0,
                        compute: Duration::ZERO,
                        network: Duration::ZERO,
                        payload_bytes: 0,
                        cache_hit: None,
                        session: self.session_id,
                        charged: *charged,
                        at,
                    });
                }
                InteractionResult {
                    prefetched: 0,
                    gesture: kind,
                    rows: 0,
                    query_latency: *charged,
                    charged_latency: *charged,
                    first_usable: *charged,
                    complete: *charged,
                    payload_bytes: 0,
                    cache_hit: None,
                    visible_leaves: render.visible_leaves,
                    collapsed_leaves: render.collapsed_leaves,
                }
            }
        };
        if let (Some(node), QueryOutcome::Rows { .. }) = (node, outcome) {
            if self.prefetch_allowed(node) {
                interaction.prefetched = self.prefetch_after(node);
            }
        }
        self.push_log(&interaction);
        interaction
    }

    /// Advance the adaptive gate (when enabled) with this expansion
    /// and decide whether prefetch may fire. Only *switches* are
    /// reported to the executor's adaptive runtime — and the initial
    /// "off" state is the default, not a switch.
    fn prefetch_allowed(&mut self, node: NodeId) -> bool {
        let Some(gate) = self.adaptive_prefetch.as_mut() else {
            return true;
        };
        let pattern = gate.classifier.observe_expand(&self.dataset.tree, node);
        let on = pattern == SessionPattern::Lateral;
        if gate.reported != Some(on) {
            let first = gate.reported.is_none();
            gate.reported = Some(on);
            if on || !first {
                if let Some(rt) = self.executor.adaptive() {
                    rt.note_prefetch_switch(
                        self.session_id,
                        pattern.label(),
                        on,
                        self.dataset.clock.now().0,
                    );
                }
            }
        }
        on
    }

    fn push_log(&mut self, result: &InteractionResult) {
        if self.keep_log {
            self.log.push(result.clone());
        }
    }

    /// Warm the cache with the likely-next clades. Runs during user
    /// think time: the virtual clock advances (sources do real work)
    /// but no interaction waits on it. Prefetch failures are ignored —
    /// a failed speculation must never surface to the user.
    ///
    /// The prefetcher's [`PrefetchBudget`] caps the spend: `Items`
    /// counts issued queries, `EstimatedCost` asks the planner what
    /// each candidate would cost and skips those that would overrun
    /// the cumulative cap (a cheaper later candidate may still fit).
    fn prefetch_after(&self, node: drugtree_phylo::tree::NodeId) -> usize {
        let Some(prefetcher) = &self.prefetcher else {
            return 0;
        };
        let mut done = 0;
        let mut spent = Duration::ZERO;
        for candidate in prefetcher.candidates(&self.dataset.tree, &self.dataset.index, node) {
            let iv = self.dataset.index.interval(candidate);
            let query = Query::activities(Scope::Interval(iv));
            match prefetcher.budget {
                PrefetchBudget::Items(limit) => {
                    if done >= limit {
                        break;
                    }
                }
                PrefetchBudget::EstimatedCost(limit) => {
                    let Ok(est) = self.executor.estimate(self.dataset, &query) else {
                        continue;
                    };
                    if spent + est.cost > limit {
                        continue;
                    }
                    spent += est.cost;
                }
            }
            if self.executor.execute(self.dataset, &query).is_ok() {
                done += 1;
            }
        }
        done
    }

    fn render(&self) -> RenderList {
        render_visible(
            &self.dataset.tree,
            &self.dataset.index,
            &self.viewport,
            &self.layout,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_query::optimizer::{Optimizer, OptimizerConfig};
    use drugtree_sources::source::SourceCapabilities;

    fn dataset() -> Dataset {
        drugtree_query::dataset::test_fixtures::small_dataset(SourceCapabilities::full())
    }

    fn executor() -> Executor {
        Executor::new(Optimizer::new(OptimizerConfig::full()))
    }

    #[test]
    fn pan_and_zoom_cost_only_transfer() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::WIFI);
        let r = s.apply(&Gesture::ZoomIn { focus_y: 1.0 }).unwrap();
        assert_eq!(r.rows, 0);
        assert_eq!(r.query_latency, Duration::ZERO);
        assert!(r.complete >= NetworkProfile::WIFI.rtt);
        assert!(r.payload_bytes > 0);
        let r = s.apply(&Gesture::Pan { dy: 1.0 }).unwrap();
        assert_eq!(r.gesture, "pan");
        assert_eq!(s.log().len(), 2);
    }

    #[test]
    fn expand_runs_a_query_and_focuses() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        let clade_a = d.index.by_label("cladeA").unwrap();
        let r = s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        assert_eq!(r.rows, 3);
        assert!(r.query_latency > Duration::ZERO);
        assert!(r.first_usable > r.query_latency, "adds network time");
        assert_eq!(r.cache_hit, Some(false));
        assert_eq!(
            s.viewport().visible_leaves(s.layout()),
            d.index.interval(clade_a)
        );
    }

    #[test]
    fn repeat_expand_hits_cache() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        let clade_a = d.index.by_label("cladeA").unwrap();
        s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        // Drill into a child of cladeA: containment hit.
        let p1 = d.index.by_label("P1").unwrap();
        let r = s.apply(&Gesture::Expand { node: p1 }).unwrap();
        assert_eq!(r.cache_hit, Some(true));
        assert_eq!(r.query_latency, Duration::ZERO);
        assert_eq!(r.rows, 2);
    }

    #[test]
    fn inspect_viewport_queries_visible_interval() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::WIFI);
        let r = s.apply(&Gesture::InspectViewport).unwrap();
        assert_eq!(r.rows, 4, "fullscreen sees all activities");
    }

    #[test]
    fn explicit_query_gesture() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::WIFI);
        let q = Query::parse("activities in subtree('cladeB')").unwrap();
        let r = s.apply(&Gesture::RunQuery(Box::new(q))).unwrap();
        assert_eq!(r.rows, 1);
        assert_eq!(r.gesture, "query");
    }

    #[test]
    fn unknown_node_rejected() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::WIFI);
        assert!(matches!(
            s.apply(&Gesture::Expand { node: NodeId(999) }),
            Err(MobileError::UnknownNode(_))
        ));
        assert!(s.log().is_empty(), "failed gestures are not logged");
    }

    #[test]
    fn blocking_vs_progressive_first_usable() {
        let d = dataset();
        let e = executor();

        let mut progressive = MobileSession::new(&d, &e, NetworkProfile::EDGE);
        progressive.chunk_rows = 1;
        let rp = progressive.apply(&Gesture::InspectViewport).unwrap();

        e.invalidate();
        let mut blocking = MobileSession::new(&d, &e, NetworkProfile::EDGE);
        blocking.set_progressive(false);
        let rb = blocking.apply(&Gesture::InspectViewport).unwrap();

        assert!(
            rp.first_usable < rb.first_usable,
            "progressive {:?} vs blocking {:?}",
            rp.first_usable,
            rb.first_usable
        );
    }

    #[test]
    fn prefetch_turns_sibling_expands_into_hits() {
        let d = dataset();
        // Without prefetch: expanding cladeA then cladeB misses twice.
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        let clade_a = d.index.by_label("cladeA").unwrap();
        let clade_b = d.index.by_label("cladeB").unwrap();
        s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        let cold = s.apply(&Gesture::Expand { node: clade_b }).unwrap();
        assert_eq!(cold.cache_hit, Some(false));

        // With prefetch: the sibling is warmed during think time.
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        s.enable_prefetch(crate::prefetch::Prefetcher::default());
        let first = s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        assert!(first.prefetched > 0, "siblings/children prefetched");
        let warm = s.apply(&Gesture::Expand { node: clade_b }).unwrap();
        assert_eq!(warm.cache_hit, Some(true));
        assert_eq!(warm.query_latency, Duration::ZERO);
    }

    #[test]
    fn zero_cost_budget_suppresses_prefetch() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        s.enable_prefetch(Prefetcher {
            budget: PrefetchBudget::EstimatedCost(Duration::ZERO),
            ..Prefetcher::default()
        });
        let clade_a = d.index.by_label("cladeA").unwrap();
        let r = s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        assert_eq!(r.prefetched, 0, "every candidate estimate exceeds zero");
        // The sibling was never warmed, so expanding it misses.
        let clade_b = d.index.by_label("cladeB").unwrap();
        let cold = s.apply(&Gesture::Expand { node: clade_b }).unwrap();
        assert_eq!(cold.cache_hit, Some(false));
    }

    #[test]
    fn generous_cost_budget_behaves_like_unbudgeted() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        s.enable_prefetch(Prefetcher {
            budget: PrefetchBudget::EstimatedCost(Duration::from_secs(60)),
            ..Prefetcher::default()
        });
        let clade_a = d.index.by_label("cladeA").unwrap();
        let r = s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        assert!(r.prefetched > 0, "estimates fit comfortably");
        let clade_b = d.index.by_label("cladeB").unwrap();
        let warm = s.apply(&Gesture::Expand { node: clade_b }).unwrap();
        assert_eq!(warm.cache_hit, Some(true));
    }

    #[test]
    fn item_budget_caps_prefetch_count() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        s.enable_prefetch(Prefetcher {
            fan_out: 8,
            budget: PrefetchBudget::Items(1),
            ..Prefetcher::default()
        });
        let clade_a = d.index.by_label("cladeA").unwrap();
        let r = s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        assert_eq!(r.prefetched, 1);
    }

    #[test]
    fn prefetch_does_not_inflate_interaction_latency() {
        let d = dataset();
        let e = executor();
        let mut plain = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        let clade_a = d.index.by_label("cladeA").unwrap();
        let r_plain = plain.apply(&Gesture::Expand { node: clade_a }).unwrap();

        let e = executor();
        let mut pre = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        pre.enable_prefetch(crate::prefetch::Prefetcher::default());
        let r_pre = pre.apply(&Gesture::Expand { node: clade_a }).unwrap();
        assert_eq!(r_plain.first_usable, r_pre.first_usable);
        assert_eq!(r_plain.complete, r_pre.complete);
    }

    #[test]
    fn deadline_tuning_adjusts_chunk_size() {
        let d = dataset();
        let e = executor();
        let mut fast = MobileSession::new(&d, &e, NetworkProfile::WIFI);
        fast.set_first_chunk_deadline(Duration::from_millis(100));
        let mut slow = MobileSession::new(&d, &e, NetworkProfile::EDGE);
        slow.set_first_chunk_deadline(Duration::from_millis(100));
        assert!(fast.chunk_rows > slow.chunk_rows);
    }

    #[test]
    fn adaptive_prefetch_gates_by_pattern_and_reports_switches() {
        use drugtree_query::obs::VecSink;
        use drugtree_query::{AdaptiveConfig, AdaptiveRuntime};

        let d = dataset();
        let sink = Arc::new(VecSink::new());
        let mut e = executor();
        e.enable_adaptive(Arc::new(
            AdaptiveRuntime::new(AdaptiveConfig::default())
                .with_export(Arc::clone(&sink) as Arc<dyn drugtree_query::obs::Sink>),
        ));
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        s.set_session_id(7);
        s.enable_adaptive_prefetch(Prefetcher::default());

        let clade_a = d.index.by_label("cladeA").unwrap();
        let clade_b = d.index.by_label("cladeB").unwrap();
        // Unclassified opening: prefetch must not fire.
        let first = s.apply(&Gesture::Expand { node: clade_a }).unwrap();
        assert_eq!(first.prefetched, 0, "unknown pattern keeps prefetch off");
        assert_eq!(s.prefetch_pattern(), Some(SessionPattern::Unknown));
        // Sustained sibling slides flip the session lateral.
        let mut last = first;
        for node in [clade_b, clade_a, clade_b, clade_a] {
            last = s.apply(&Gesture::Expand { node }).unwrap();
        }
        assert_eq!(s.prefetch_pattern(), Some(SessionPattern::Lateral));
        assert!(last.prefetched > 0, "lateral pattern switches prefetch on");
        let switches: Vec<String> = sink
            .lines()
            .into_iter()
            .filter(|l| l.contains("\"loop_name\":\"prefetch\""))
            .collect();
        assert_eq!(switches.len(), 1, "one switch event: {switches:?}");
        assert!(switches[0].contains("session:7"));
        assert!(switches[0].contains("lateral"));
    }

    #[test]
    fn adaptive_prefetch_stays_off_for_drill_down() {
        let d = dataset();
        let e = executor();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_4G);
        s.enable_adaptive_prefetch(Prefetcher::default());
        // Drill: cladeA → P1 → cladeA's leaf children, only descents
        // (and re-ascents through containment hits stay cached — use
        // fresh descents from the root side).
        let root_child = d.index.by_label("cladeA").unwrap();
        let p1 = d.index.by_label("P1").unwrap();
        s.apply(&Gesture::Expand { node: root_child }).unwrap();
        let mid = s.apply(&Gesture::Expand { node: p1 }).unwrap();
        assert_eq!(mid.prefetched, 0, "descents never enable prefetch");
        assert_ne!(s.prefetch_pattern(), Some(SessionPattern::Lateral));
    }

    #[test]
    fn virtual_clock_accumulates_over_session() {
        let d = dataset();
        let e = executor();
        let start = d.clock.now();
        let mut s = MobileSession::new(&d, &e, NetworkProfile::CELL_3G);
        s.apply(&Gesture::InspectViewport).unwrap();
        s.apply(&Gesture::Pan { dy: 1.0 }).unwrap();
        assert!(d.clock.now() > start);
    }
}
