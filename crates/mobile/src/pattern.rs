//! Online gesture-stream classification for adaptive prefetch.
//!
//! Experiment E10's finding: prefetch warms *siblings and the parent*
//! of the expanded clade, so it pays off for lateral browsing (sliding
//! between siblings) and is pure waste for drill-down walks (the user
//! only ever descends, and descents are already free by cache
//! containment). The classifier watches the topological relation
//! between consecutive expansions and decides, per session and online,
//! which regime the stream is in — the adaptive layer switches the
//! session's prefetch policy accordingly (design decision D15).

use drugtree_phylo::tree::{NodeId, Tree};
use std::collections::VecDeque;

/// How one expansion relates topologically to the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandRelation {
    /// Into a descendant of the last expanded clade (drill-down).
    Descent,
    /// To a clade sharing the last one's parent (lateral browsing).
    Sibling,
    /// Back out to an ancestor (also lateral: the user is surveying).
    Parent,
    /// Anywhere else in the tree (no topological signal).
    Jump,
}

/// The classified navigation regime of a session's gesture stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionPattern {
    /// Not enough evidence (or a tie): prefetch stays off.
    #[default]
    Unknown,
    /// Mostly descents: prefetch candidates would never be touched.
    DrillDown,
    /// Mostly sibling/parent moves: prefetch candidates are exactly
    /// where the user is heading.
    Lateral,
}

impl SessionPattern {
    /// Short label for adapt events and experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SessionPattern::Unknown => "unknown",
            SessionPattern::DrillDown => "drill-down",
            SessionPattern::Lateral => "lateral",
        }
    }
}

/// Per-session online classifier over a sliding window of expansion
/// relations. Deterministic: the same gesture stream always classifies
/// identically, so adaptive replays stay byte-for-byte reproducible.
#[derive(Debug, Clone)]
pub struct PatternClassifier {
    /// Relations retained for the vote (older ones age out).
    window: usize,
    /// Expansions required before leaving [`SessionPattern::Unknown`].
    min_evidence: usize,
    last_expanded: Option<NodeId>,
    recent: VecDeque<ExpandRelation>,
}

impl Default for PatternClassifier {
    fn default() -> PatternClassifier {
        PatternClassifier::new(8, 3)
    }
}

impl PatternClassifier {
    /// A classifier voting over the last `window` relations, silent
    /// until `min_evidence` of them exist.
    pub fn new(window: usize, min_evidence: usize) -> PatternClassifier {
        PatternClassifier {
            window: window.max(1),
            min_evidence: min_evidence.max(1),
            last_expanded: None,
            recent: VecDeque::new(),
        }
    }

    /// The topological relation of expanding `node` right after `prev`.
    pub fn relation(tree: &Tree, prev: NodeId, node: NodeId) -> ExpandRelation {
        if is_ancestor(tree, prev, node) {
            ExpandRelation::Descent
        } else if is_ancestor(tree, node, prev) {
            ExpandRelation::Parent
        } else if tree.node_unchecked(prev).parent == tree.node_unchecked(node).parent {
            ExpandRelation::Sibling
        } else {
            ExpandRelation::Jump
        }
    }

    /// Fold one `Expand` gesture into the stream and return the
    /// (possibly updated) classification.
    pub fn observe_expand(&mut self, tree: &Tree, node: NodeId) -> SessionPattern {
        if let Some(prev) = self.last_expanded {
            if prev != node {
                self.recent
                    .push_back(PatternClassifier::relation(tree, prev, node));
                while self.recent.len() > self.window {
                    self.recent.pop_front();
                }
            }
        }
        self.last_expanded = Some(node);
        self.pattern()
    }

    /// The current classification: a majority vote over the window
    /// (descents vs. sibling/parent moves; jumps abstain), `Unknown`
    /// below the evidence floor or on a tie.
    pub fn pattern(&self) -> SessionPattern {
        if self.recent.len() < self.min_evidence {
            return SessionPattern::Unknown;
        }
        let mut drill = 0usize;
        let mut lateral = 0usize;
        for r in &self.recent {
            match r {
                ExpandRelation::Descent => drill += 1,
                ExpandRelation::Sibling | ExpandRelation::Parent => lateral += 1,
                ExpandRelation::Jump => {}
            }
        }
        match drill.cmp(&lateral) {
            std::cmp::Ordering::Greater => SessionPattern::DrillDown,
            std::cmp::Ordering::Less => SessionPattern::Lateral,
            std::cmp::Ordering::Equal => SessionPattern::Unknown,
        }
    }

    /// Relations currently in the voting window.
    pub fn evidence(&self) -> usize {
        self.recent.len()
    }
}

fn is_ancestor(tree: &Tree, anc: NodeId, mut node: NodeId) -> bool {
    while let Some(p) = tree.node_unchecked(node).parent {
        if p == anc {
            return true;
        }
        node = p;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_phylo::newick::parse_newick;

    fn tree() -> Tree {
        parse_newick(
            "(((a:1,b:1)ab:1,(c:1,d:1)cd:1)abcd:1,((e:1,f:1)ef:1,(g:1,h:1)gh:1)efgh:1)root;",
        )
        .unwrap()
    }

    fn n(t: &Tree, label: &str) -> NodeId {
        t.find_by_label(label).unwrap()
    }

    #[test]
    fn relations_from_topology() {
        let t = tree();
        let (abcd, ab, cd, a, efgh) = (
            n(&t, "abcd"),
            n(&t, "ab"),
            n(&t, "cd"),
            n(&t, "a"),
            n(&t, "efgh"),
        );
        assert_eq!(
            PatternClassifier::relation(&t, abcd, a),
            ExpandRelation::Descent,
            "grandchild is still a descent"
        );
        assert_eq!(
            PatternClassifier::relation(&t, ab, cd),
            ExpandRelation::Sibling
        );
        assert_eq!(
            PatternClassifier::relation(&t, a, ab),
            ExpandRelation::Parent
        );
        assert_eq!(
            PatternClassifier::relation(&t, ab, efgh),
            ExpandRelation::Jump
        );
    }

    #[test]
    fn drill_walk_classifies_drill_down() {
        let t = tree();
        let mut c = PatternClassifier::default();
        for label in ["root", "abcd", "ab", "a"] {
            c.observe_expand(&t, n(&t, label));
        }
        assert_eq!(c.pattern(), SessionPattern::DrillDown);
    }

    #[test]
    fn sibling_slide_classifies_lateral() {
        let t = tree();
        let mut c = PatternClassifier::default();
        for label in ["ab", "cd", "ab", "cd"] {
            c.observe_expand(&t, n(&t, label));
        }
        assert_eq!(c.pattern(), SessionPattern::Lateral);
    }

    #[test]
    fn below_evidence_floor_stays_unknown() {
        let t = tree();
        let mut c = PatternClassifier::default();
        assert_eq!(c.observe_expand(&t, n(&t, "ab")), SessionPattern::Unknown);
        assert_eq!(c.observe_expand(&t, n(&t, "cd")), SessionPattern::Unknown);
        assert_eq!(c.evidence(), 1, "first expand has no predecessor");
    }

    #[test]
    fn window_forgets_the_old_regime() {
        let t = tree();
        let mut c = PatternClassifier::new(4, 3);
        // A drill-down opening...
        for label in ["root", "abcd", "ab", "a"] {
            c.observe_expand(&t, n(&t, label));
        }
        assert_eq!(c.pattern(), SessionPattern::DrillDown);
        // ...followed by sustained lateral browsing flips the vote.
        for label in ["b", "a", "b", "a", "b"] {
            c.observe_expand(&t, n(&t, label));
        }
        assert_eq!(c.pattern(), SessionPattern::Lateral);
    }

    #[test]
    fn repeated_same_node_adds_no_evidence() {
        let t = tree();
        let mut c = PatternClassifier::default();
        for _ in 0..5 {
            c.observe_expand(&t, n(&t, "ab"));
        }
        assert_eq!(c.evidence(), 0);
        assert_eq!(c.pattern(), SessionPattern::Unknown);
    }
}
