//! Predictive prefetching: warming the semantic cache with the clades
//! the user is likely to open next.
//!
//! Tree navigation is highly predictable: after opening a clade, users
//! either drill into one of its children or slide to a sibling. The
//! prefetcher enumerates those candidates (smallest first, bounded by
//! a leaf budget) and the session fetches them *during user think
//! time* — the work is charged to the virtual clock (sources really do
//! it) but not to any interaction's perceived latency. The payoff is a
//! cache hit when the user's finger lands.

use drugtree_phylo::tree::{NodeId, Tree};
use drugtree_phylo::TreeIndex;
use std::time::Duration;

/// How much speculative work one prefetch pass may spend.
///
/// `Items` is the legacy fixed-count budget. `EstimatedCost` consults
/// the planner's cost estimate ([`drugtree_query::Executor::estimate`])
/// for each candidate and stops charging the virtual clock once the
/// cumulative estimate would exceed the cap — so a slow network or an
/// expensive clade shrinks the speculation automatically instead of
/// always firing `fan_out` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchBudget {
    /// At most this many prefetch queries per interaction.
    Items(usize),
    /// Cumulative planner-estimated cost cap per interaction.
    EstimatedCost(Duration),
}

impl Default for PrefetchBudget {
    fn default() -> PrefetchBudget {
        // Unlimited count: `fan_out` alone bounds the legacy policy.
        PrefetchBudget::Items(usize::MAX)
    }
}

/// Prefetch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefetcher {
    /// Maximum clades prefetched per interaction.
    pub fan_out: usize,
    /// Skip candidates spanning more leaves than this (prefetching the
    /// whole tree would waste bandwidth and evict useful entries).
    pub max_leaves: u32,
    /// Per-interaction spend cap applied on top of `fan_out`.
    pub budget: PrefetchBudget,
}

impl Default for Prefetcher {
    fn default() -> Prefetcher {
        Prefetcher {
            fan_out: 3,
            max_leaves: 64,
            budget: PrefetchBudget::default(),
        }
    }
}

impl Prefetcher {
    /// Candidate clades after the user expanded `node`.
    ///
    /// *Not* the node's children: the expansion just cached `node`'s
    /// whole interval, and the semantic cache answers any contained
    /// interval by containment — children are already free. The
    /// candidates that add coverage are the node's **siblings**
    /// (lateral browsing) and its **parent** (backing out), in that
    /// order, size-filtered and truncated to `fan_out`.
    pub fn candidates(&self, tree: &Tree, index: &TreeIndex, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        let push = |candidate: NodeId, out: &mut Vec<NodeId>| {
            if candidate != node
                && index.interval(candidate).len() <= self.max_leaves
                && !out.contains(&candidate)
            {
                out.push(candidate);
            }
        };

        if let Some(parent) = tree.node_unchecked(node).parent {
            // Adjacent siblings first (next/previous in display order).
            let siblings = &tree.node_unchecked(parent).children;
            if let Some(pos) = siblings.iter().position(|&s| s == node) {
                if pos + 1 < siblings.len() {
                    push(siblings[pos + 1], &mut out);
                }
                if pos > 0 {
                    push(siblings[pos - 1], &mut out);
                }
            }
            // Then the parent clade (covers every sibling at once when
            // it fits the size budget).
            push(parent, &mut out);
        }

        out.truncate(self.fan_out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_phylo::newick::parse_newick;

    fn setup() -> (Tree, TreeIndex) {
        let t = parse_newick(
            "(((a:1,b:1)ab:1,(c:1,d:1)cd:1)abcd:1,((e:1,f:1)ef:1,(g:1,h:1)gh:1)efgh:1)root;",
        )
        .unwrap();
        let i = TreeIndex::build(&t);
        (t, i)
    }

    #[test]
    fn siblings_then_parent() {
        let (t, i) = setup();
        let p = Prefetcher::default();
        let abcd = t.find_by_label("abcd").unwrap();
        let cands = p.candidates(&t, &i, abcd);
        let labels: Vec<&str> = cands
            .iter()
            .map(|&c| t.node_unchecked(c).label.as_deref().unwrap())
            .collect();
        // Sibling efgh, then the root clade; never abcd's own children
        // (the cache already covers them by containment).
        assert_eq!(labels, ["efgh", "root"]);
    }

    #[test]
    fn fan_out_limits() {
        let (t, i) = setup();
        let p = Prefetcher {
            fan_out: 1,
            ..Prefetcher::default()
        };
        let abcd = t.find_by_label("abcd").unwrap();
        assert_eq!(p.candidates(&t, &i, abcd).len(), 1);
    }

    #[test]
    fn size_filter_skips_huge_clades() {
        let (t, i) = setup();
        let p = Prefetcher {
            fan_out: 8,
            max_leaves: 2,
            ..Prefetcher::default()
        };
        let ab = t.find_by_label("ab").unwrap();
        let cands = p.candidates(&t, &i, ab);
        // Sibling cd (2 leaves) fits; parent abcd (4 leaves) does not.
        let labels: Vec<&str> = cands
            .iter()
            .map(|&c| t.node_unchecked(c).label.as_deref().unwrap())
            .collect();
        assert_eq!(labels, ["cd"]);
    }

    #[test]
    fn leaves_offer_sibling_and_parent() {
        let (t, i) = setup();
        let p = Prefetcher::default();
        let a = t.find_by_label("a").unwrap();
        let cands = p.candidates(&t, &i, a);
        let labels: Vec<&str> = cands
            .iter()
            .map(|&c| t.node_unchecked(c).label.as_deref().unwrap())
            .collect();
        assert_eq!(labels, ["b", "ab"]);
    }

    #[test]
    fn root_has_no_candidates() {
        let (t, i) = setup();
        let p = Prefetcher {
            fan_out: 8,
            ..Prefetcher::default()
        };
        assert!(
            p.candidates(&t, &i, t.root()).is_empty(),
            "expanding the root already caches everything"
        );
    }
}
