//! System snapshots: persist the integrated local state.
//!
//! Integration (fetching proteins/ligands, aligning, building the
//! tree) costs real source round-trips; a deployment runs it once and
//! snapshots the result. A snapshot carries the tree and the
//! materialized overlay catalog — everything local. Remote sources are
//! *not* serialized (they are live services); loading re-attaches a
//! registry the caller provides.

use crate::system::DrugTreeError;
use drugtree_integrate::overlay::Overlay;
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::Tree;
use drugtree_query::Dataset;
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_store::snapshot::{load_catalog, save_catalog};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const SNAPSHOT_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct SystemSnapshot {
    version: u32,
    tree: Tree,
    /// The overlay catalog in `drugtree_store::snapshot` JSON form.
    catalog: String,
}

/// Serialize a dataset's local state (tree + overlay catalog) to JSON.
pub fn save_system(dataset: &Dataset) -> Result<String, DrugTreeError> {
    let catalog = save_catalog(dataset.overlay.catalog())
        .map_err(|e| DrugTreeError::Integrate(e.to_string()))?;
    serde_json::to_string(&SystemSnapshot {
        version: SNAPSHOT_VERSION,
        tree: dataset.tree.clone(),
        catalog,
    })
    .map_err(|e| DrugTreeError::Integrate(e.to_string()))
}

/// Restore a dataset from a snapshot, attaching live sources.
pub fn load_system(
    json: &str,
    registry: SourceRegistry,
    clock: Arc<VirtualClock>,
) -> Result<Dataset, DrugTreeError> {
    let snap: SystemSnapshot = serde_json::from_str(json)
        .map_err(|e| DrugTreeError::Integrate(format!("malformed snapshot: {e}")))?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(DrugTreeError::Integrate(format!(
            "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
            snap.version
        )));
    }
    snap.tree.check_invariants().map_err(DrugTreeError::Phylo)?;
    let catalog =
        load_catalog(&snap.catalog).map_err(|e| DrugTreeError::Integrate(e.to_string()))?;
    let overlay =
        Overlay::from_catalog(catalog).map_err(|e| DrugTreeError::Integrate(e.to_string()))?;
    let index = TreeIndex::build(&snap.tree);
    Dataset::new(snap.tree, index, overlay, registry, clock).map_err(DrugTreeError::Query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use drugtree_query::ast::{Query, Scope};

    fn setup() -> (SyntheticBundle, Dataset) {
        let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(48).ligands(12));
        let dataset = bundle.build_dataset();
        (bundle, dataset)
    }

    #[test]
    fn roundtrip_preserves_local_state_and_answers() {
        let (bundle, original) = setup();
        let json = save_system(&original).unwrap();

        // Restore against a fresh registry (new live sources).
        let restored_dataset = load_system(
            &json,
            bundle.build_dataset().registry.clone(),
            VirtualClock::new(),
        )
        .unwrap();

        assert_eq!(restored_dataset.leaf_count(), original.leaf_count());
        assert_eq!(restored_dataset.tree, original.tree);
        // Fingerprints recomputed from SMILES.
        assert_eq!(
            restored_dataset.overlay.fingerprints().count(),
            original.overlay.fingerprints().count()
        );

        // Queries over the restored system agree with the original.
        let e = Executor::new(Optimizer::new(OptimizerConfig::full()));
        let q = Query::activities(Scope::Tree);
        let a = e.execute(&original, &q).unwrap();
        let e2 = Executor::new(Optimizer::new(OptimizerConfig::full()));
        let b = e2.execute(&restored_dataset, &q).unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn version_and_shape_validated() {
        let (_, dataset) = setup();
        let json = save_system(&dataset).unwrap();
        let tampered = json.replace("\"version\":1", "\"version\":9");
        assert!(load_system(&tampered, SourceRegistry::new(), VirtualClock::new()).is_err());
        assert!(load_system("{bogus", SourceRegistry::new(), VirtualClock::new()).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (_, dataset) = setup();
        assert_eq!(
            save_system(&dataset).unwrap(),
            save_system(&dataset).unwrap()
        );
    }
}
