//! Assembling a DrugTree system.
//!
//! Two entry points:
//!
//! * [`DrugTreeBuilder::dataset`] — bring a pre-built
//!   [`Dataset`] (the workload generator's path, and the path a real
//!   deployment with custom `DataSource` impls takes after running the
//!   integration crate itself).
//! * [`DrugTreeBuilder::register_source`] — the full paper pipeline:
//!   fetch protein records, **build the tree from their sequences**
//!   (alignment → distances → neighbor joining), fetch ligands,
//!   integrate, and stand up the federated dataset.

use crate::system::{DrugTree, DrugTreeError};
use drugtree_integrate::overlay::OverlayBuilder;
use drugtree_phylo::align::GapPenalty;
use drugtree_phylo::distance::{pairwise_distances, DistanceModel};
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::matrices::ScoringMatrix;
use drugtree_phylo::nj::neighbor_joining;
use drugtree_phylo::reroot::midpoint_root;
use drugtree_phylo::seq::ProteinSequence;
use drugtree_phylo::upgma::upgma;
use drugtree_query::cache::CacheConfig;
use drugtree_query::optimizer::{Optimizer, OptimizerConfig};
use drugtree_query::{AdaptiveRuntime, Dataset, Executor, Observer};
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_sources::ligand_db::ligand_from_row;
use drugtree_sources::protein_db::protein_from_row;
use drugtree_sources::source::{DataSource, FetchRequest, SourceKind};
use std::sync::Arc;

/// Tree construction method for the from-sources path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMethod {
    /// Neighbor joining (default; recovers additive distances).
    NeighborJoining,
    /// UPGMA (assumes a molecular clock).
    Upgma,
}

/// Builder for [`DrugTree`].
pub struct DrugTreeBuilder {
    dataset: Option<Dataset>,
    registry: SourceRegistry,
    optimizer: OptimizerConfig,
    cache: CacheConfig,
    tree_method: TreeMethod,
    distance_model: DistanceModel,
    collect_stats: bool,
    build_matview: bool,
    build_columnar: bool,
    midpoint_rooting: bool,
    observer: Option<Arc<dyn Observer>>,
    adaptive: Option<Arc<AdaptiveRuntime>>,
}

impl Default for DrugTreeBuilder {
    fn default() -> Self {
        DrugTreeBuilder::new()
    }
}

impl DrugTreeBuilder {
    /// A builder with the full optimizer and default cache sizing.
    pub fn new() -> DrugTreeBuilder {
        DrugTreeBuilder {
            dataset: None,
            registry: SourceRegistry::new(),
            optimizer: OptimizerConfig::full(),
            cache: CacheConfig::default(),
            tree_method: TreeMethod::NeighborJoining,
            distance_model: DistanceModel::Poisson,
            collect_stats: true,
            build_matview: false,
            build_columnar: false,
            midpoint_rooting: false,
            observer: None,
            adaptive: None,
        }
    }

    /// Use a pre-built dataset (skips the integration pipeline).
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Register a source for the from-sources pipeline.
    pub fn register_source(mut self, source: Arc<dyn DataSource>) -> Self {
        // Duplicate names surface at build() so the builder keeps its
        // fluent shape.
        let _ = self.registry.register(source);
        self
    }

    /// Choose the optimizer configuration.
    pub fn optimizer(mut self, config: OptimizerConfig) -> Self {
        self.optimizer = config;
        self
    }

    /// Choose the semantic-cache sizing.
    pub fn cache(mut self, config: CacheConfig) -> Self {
        self.cache = config;
        self
    }

    /// Switch the planner to cost-based alternative selection: rules
    /// propose candidates (matview vs fetch, per-replica paths, batched
    /// vs per-key) and a calibrated cost model picks the cheapest. The
    /// model starts from generic priors and refines per-source
    /// parameters from observed fetch latencies.
    pub fn with_cost_based_planner(mut self) -> Self {
        self.optimizer.cost_based = true;
        self
    }

    /// Choose the tree-construction method (from-sources path).
    pub fn tree_method(mut self, method: TreeMethod) -> Self {
        self.tree_method = method;
        self
    }

    /// Choose the evolutionary distance model (from-sources path).
    pub fn distance_model(mut self, model: DistanceModel) -> Self {
        self.distance_model = model;
        self
    }

    /// Enable or disable startup statistics collection (on by
    /// default; disabling turns off the pruning/selectivity rules).
    pub fn with_stats(mut self, collect: bool) -> Self {
        self.collect_stats = collect;
        self
    }

    /// Also build the materialized aggregate view at startup.
    pub fn with_matview(mut self) -> Self {
        self.build_matview = true;
        self
    }

    /// Also build the columnar activity mirror at startup: interval
    /// scopes are then answered by local vectorized kernels over
    /// rank-sorted typed segments instead of source round-trips
    /// (design decision D12).
    pub fn with_columnar(mut self) -> Self {
        self.build_columnar = true;
        self
    }

    /// Midpoint-root the constructed tree (from-sources path with
    /// neighbor joining, whose root placement is otherwise arbitrary).
    pub fn with_midpoint_rooting(mut self) -> Self {
        self.midpoint_rooting = true;
        self
    }

    /// Install an [`Observer`] on the executor: it receives a
    /// completed query trace after every executed query and a
    /// per-gesture breakdown from mobile sessions (design decision
    /// D9). Pass an `Arc<drugtree_query::MetricsRegistry>` to get
    /// lock-free aggregate counters, or any custom `Observer`.
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Install the self-driving runtime (design decision D15): learned
    /// statistics feed the planner's selectivity estimates, the
    /// advisor auto-builds the aggregate view past break-even, and a
    /// regret tracker reverts adaptations that regress. Build the
    /// runtime with `AdaptiveRuntime::new` (optionally
    /// `.with_export(sink)` to stream `adapt` events for
    /// `drugtree advisor`).
    pub fn with_adaptive(mut self, runtime: Arc<AdaptiveRuntime>) -> Self {
        self.adaptive = Some(runtime);
        self
    }

    /// Assemble the system.
    pub fn build(self) -> Result<DrugTree, DrugTreeError> {
        let dataset = match self.dataset {
            Some(d) => d,
            None => build_from_sources(
                self.registry,
                self.tree_method,
                self.distance_model,
                self.midpoint_rooting,
            )?,
        };
        let mut executor = Executor::with_cache_config(Optimizer::new(self.optimizer), self.cache);
        if let Some(observer) = self.observer {
            executor.set_observer(observer);
        }
        if let Some(adaptive) = self.adaptive {
            executor.enable_adaptive(adaptive);
        }
        if self.collect_stats {
            executor.collect_stats(&dataset)?;
        }
        if self.build_matview {
            executor.build_matview(&dataset)?;
        }
        if self.build_columnar {
            executor.build_columnar(&dataset)?;
        }
        Ok(DrugTree::from_parts(dataset, executor))
    }
}

/// The full pipeline: fetch proteins, build the tree from sequences,
/// fetch ligands, integrate, assemble.
fn build_from_sources(
    registry: SourceRegistry,
    tree_method: TreeMethod,
    distance_model: DistanceModel,
    midpoint_rooting: bool,
) -> Result<Dataset, DrugTreeError> {
    let clock = VirtualClock::new();

    // 1. Protein records (the integration pass pays real virtual time).
    let protein_src = registry
        .single(SourceKind::Protein)
        .map_err(|e| DrugTreeError::Builder(e.to_string()))?;
    let resp = protein_src
        .fetch(&FetchRequest::scan())
        .map_err(|e| DrugTreeError::Builder(e.to_string()))?;
    clock.advance(resp.cost);
    let proteins: Vec<_> = resp
        .rows
        .iter()
        .map(|r| {
            protein_from_row(r)
                .ok_or_else(|| DrugTreeError::Integrate("malformed protein row".into()))
        })
        .collect::<Result<_, _>>()?;
    if proteins.is_empty() {
        return Err(DrugTreeError::Builder("protein source is empty".into()));
    }

    // 2. The protein-motivated tree: align, estimate distances, join.
    let sequences: Vec<ProteinSequence> = proteins
        .iter()
        .map(|p: &drugtree_sources::protein_db::ProteinRecord| {
            ProteinSequence::parse(p.accession.clone(), &p.sequence).map_err(DrugTreeError::Phylo)
        })
        .collect::<Result<_, _>>()?;
    let dm = pairwise_distances(
        &sequences,
        &ScoringMatrix::blosum62(),
        GapPenalty::BLOSUM62_DEFAULT,
        distance_model,
    )
    .map_err(DrugTreeError::Phylo)?;
    let mut tree = match tree_method {
        TreeMethod::NeighborJoining => neighbor_joining(&dm),
        TreeMethod::Upgma => upgma(&dm),
    }
    .map_err(DrugTreeError::Phylo)?;
    if midpoint_rooting {
        tree = midpoint_root(&tree).map_err(DrugTreeError::Phylo)?;
    }
    let index = TreeIndex::build(&tree);

    // 3. Ligand records.
    let ligands = match registry.single(SourceKind::Ligand) {
        Ok(src) => {
            let resp = src
                .fetch(&FetchRequest::scan())
                .map_err(|e| DrugTreeError::Builder(e.to_string()))?;
            clock.advance(resp.cost);
            resp.rows
                .iter()
                .map(|r| {
                    ligand_from_row(r)
                        .ok_or_else(|| DrugTreeError::Integrate("malformed ligand row".into()))
                })
                .collect::<Result<Vec<_>, _>>()?
        }
        Err(_) => Vec::new(),
    };

    // 4. Integrate (activities stay federated; see drugtree-query).
    let overlay = OverlayBuilder::new(&tree, &index)
        .build(&proteins, &ligands, &[])
        .map_err(|e| DrugTreeError::Integrate(e.to_string()))?;

    Dataset::new(tree, index, overlay, registry, clock).map_err(DrugTreeError::Query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_chem::affinity::{ActivityRecord, ActivityType};
    use drugtree_phylo::index::LeafInterval;
    use drugtree_query::ast::{Query, Scope};
    use drugtree_sources::assay_db::assay_source;
    use drugtree_sources::latency::LatencyModel;
    use drugtree_sources::ligand_db::{ligand_source, LigandRecord};
    use drugtree_sources::protein_db::{protein_source, ProteinRecord};
    use drugtree_sources::source::SourceCapabilities;

    fn protein(acc: &str, seq: &str) -> ProteinRecord {
        ProteinRecord {
            accession: acc.into(),
            name: format!("protein {acc}"),
            organism: "test".into(),
            sequence: seq.into(),
            gene: None,
        }
    }

    fn sources() -> (
        Arc<dyn DataSource>,
        Arc<dyn DataSource>,
        Arc<dyn DataSource>,
    ) {
        // Two close pairs: (P1, P2) and (P3, P4).
        let proteins = vec![
            protein("P1", "MKVLATWQDEMKVLATWQDE"),
            protein("P2", "MKVLATWQDEMKVLATWQDK"),
            protein("P3", "GGGPPPYYYWGGGPPPYYYW"),
            protein("P4", "GGGPPPYYYWGGGPPPYYYA"),
        ];
        let ligands =
            vec![LigandRecord::from_smiles("L1", "aspirin", "CC(=O)Oc1ccccc1C(=O)O").unwrap()];
        let activities = vec![ActivityRecord {
            protein_accession: "P1".into(),
            ligand_id: "L1".into(),
            activity_type: ActivityType::Ki,
            value_nm: 50.0,
            source: "lab".into(),
            year: 2012,
        }];
        (
            Arc::new(
                protein_source(
                    "uniprot-sim",
                    &proteins,
                    SourceCapabilities::full(),
                    LatencyModel::intranet(1),
                )
                .unwrap(),
            ),
            Arc::new(
                ligand_source(
                    "chembl-sim",
                    &ligands,
                    SourceCapabilities::full(),
                    LatencyModel::intranet(2),
                )
                .unwrap(),
            ),
            Arc::new(
                assay_source(
                    "bindingdb-sim",
                    &activities,
                    SourceCapabilities::full(),
                    LatencyModel::intranet(3),
                )
                .unwrap(),
            ),
        )
    }

    #[test]
    fn from_sources_builds_tree_from_sequences() {
        let (p, l, a) = sources();
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .build()
            .unwrap();
        let d = system.dataset();
        assert_eq!(d.leaf_count(), 4);
        // Sequence similarity must group P1 with P2: their ranks are
        // adjacent under some internal node of size exactly 2.
        let r1 = d.rank_of_accession("P1").unwrap();
        let r2 = d.rank_of_accession("P2").unwrap();
        assert_eq!(r1.abs_diff(r2), 1, "P1/P2 should be siblings");
        let iv = LeafInterval {
            lo: r1.min(r2),
            hi: r1.max(r2) + 1,
        };
        let clade = d.index.tightest_clade(&d.tree, iv);
        assert_eq!(d.index.interval(clade), iv);

        // And the federated activity is queryable.
        let r = system.execute(&Query::activities(Scope::Tree)).unwrap();
        assert_eq!(r.rows.len(), 1);
        // Integration charged the clock.
        assert!(d.clock.now().0 > 0);
    }

    #[test]
    fn upgma_variant_builds() {
        let (p, l, a) = sources();
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .tree_method(TreeMethod::Upgma)
            .distance_model(DistanceModel::Kimura)
            .build()
            .unwrap();
        assert_eq!(system.dataset().leaf_count(), 4);
    }

    #[test]
    fn midpoint_rooting_balances_the_tree() {
        let (p, l, a) = sources();
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .with_midpoint_rooting()
            .build()
            .unwrap();
        let d = system.dataset();
        assert_eq!(d.leaf_count(), 4);
        // Midpoint rooting: the deepest leaf distance equals half the
        // tree diameter, so no leaf exceeds it.
        let depths: Vec<f64> = d
            .tree
            .leaves()
            .iter()
            .map(|&leaf| d.tree.root_distance(leaf).unwrap())
            .collect();
        let max = depths.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (x, y, diameter) = drugtree_phylo::reroot::longest_leaf_path(&d.tree).unwrap();
        let _ = (x, y);
        assert!((max - diameter / 2.0).abs() < 1e-9);
        // Family pairing still holds.
        let r1 = d.rank_of_accession("P1").unwrap();
        let r2 = d.rank_of_accession("P2").unwrap();
        assert_eq!(r1.abs_diff(r2), 1);
    }

    #[test]
    fn missing_protein_source_is_an_error() {
        let (_, _, a) = sources();
        let Err(err) = DrugTree::builder().register_source(a).build() else {
            panic!("build without a protein source must fail")
        };
        assert!(matches!(err, DrugTreeError::Builder(_)));
    }

    #[test]
    fn without_stats_disables_pruning() {
        let (p, l, a) = sources();
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .with_stats(false)
            .build()
            .unwrap();
        assert!(system.executor().stats().is_none());
        // Queries still work.
        assert!(system.query("activities in tree").is_ok());
    }

    #[test]
    fn with_names_cover_the_old_builder_surface() {
        // The PR-4 `#[deprecated]` shims (`without_stats`,
        // `midpoint_rooting`, `cost_based_planner`) are gone; this
        // pins that the `with_*` spellings reach the same
        // configuration the shims used to.
        let (p, l, a) = sources();
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .with_stats(false)
            .with_midpoint_rooting()
            .with_cost_based_planner()
            .build()
            .unwrap();
        assert!(system.executor().stats().is_none());
        assert!(system.executor().optimizer().config().cost_based);
    }

    #[test]
    fn with_matview_answers_aggregates_locally() {
        let (p, l, a) = sources();
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .with_matview()
            .build()
            .unwrap();
        let r = system.query("aggregate count in tree").unwrap();
        assert_eq!(r.metrics.source_requests, 0);
    }

    #[test]
    fn with_adaptive_auto_materializes_past_break_even() {
        use drugtree_query::obs::{Sink, VecSink};
        use drugtree_query::{AdaptiveConfig, AdaptiveRuntime};

        let (p, l, a) = sources();
        let sink = Arc::new(VecSink::new());
        let rt = Arc::new(
            AdaptiveRuntime::new(AdaptiveConfig::default())
                .with_export(Arc::clone(&sink) as Arc<dyn Sink>),
        );
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .with_adaptive(Arc::clone(&rt))
            .build()
            .unwrap();
        assert!(!rt.snapshot().view_built);
        // Repeated whole-tree aggregates (with cache invalidation in
        // between, as a refreshing deployment would see) accumulate
        // foregone cost until the advisor crosses break-even and
        // builds the view on its own.
        for _ in 0..50 {
            if rt.snapshot().view_built {
                break;
            }
            system.executor().invalidate();
            system.query("aggregate count in tree").unwrap();
        }
        assert!(rt.snapshot().view_built, "advisor built the view");
        assert!(sink
            .lines()
            .iter()
            .any(|l| l.contains("\"loop_name\":\"matview\"") && l.contains("break-even crossed")));
        // The next aggregate is served from the adaptive view: no
        // source work at all.
        system.executor().invalidate();
        let served = system.query("aggregate count in tree").unwrap();
        assert_eq!(served.metrics.source_requests, 0);
        assert!(rt.snapshot().advisor.hits > 0, "amortization is tracked");
    }

    #[test]
    fn with_columnar_serves_scans_locally() {
        let (p, l, a) = sources();
        let system = DrugTree::builder()
            .register_source(p)
            .register_source(l)
            .register_source(a)
            .with_columnar()
            .build()
            .unwrap();
        assert!(system.executor().columnar().is_some());
        let r = system.query("activities in tree").unwrap();
        assert_eq!(r.metrics.source_requests, 0, "mirror answers locally");
        assert!(!r.rows.is_empty());
    }
}
