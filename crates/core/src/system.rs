//! The assembled DrugTree system.

use drugtree_mobile::{MobileSession, NetworkProfile};
use drugtree_query::ast::Query;
use drugtree_query::cache::CacheStats;
use drugtree_query::{Dataset, Executor, QueryResult};
use drugtree_sources::clock::VirtualInstant;
use drugtree_sources::source::SourceKind;
use std::fmt;

/// Top-level error of the façade crate.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a
/// wildcard arm so new failure kinds can be added without a breaking
/// release. Wrapped lower-layer errors are reachable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DrugTreeError {
    /// Builder was misconfigured.
    Builder(String),
    /// Query parsing/planning/execution failed.
    Query(drugtree_query::QueryError),
    /// Tree construction failed.
    Phylo(drugtree_phylo::error::PhyloError),
    /// Integration failed.
    Integrate(String),
    /// A concurrent serving session failed.
    Serve(String),
}

impl fmt::Display for DrugTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrugTreeError::Builder(msg) => write!(f, "builder error: {msg}"),
            DrugTreeError::Query(e) => write!(f, "query error: {e}"),
            DrugTreeError::Phylo(e) => write!(f, "tree error: {e}"),
            DrugTreeError::Integrate(msg) => write!(f, "integration error: {msg}"),
            DrugTreeError::Serve(msg) => write!(f, "serving error: {msg}"),
        }
    }
}

impl std::error::Error for DrugTreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrugTreeError::Query(e) => Some(e),
            DrugTreeError::Phylo(e) => Some(e),
            DrugTreeError::Builder(_) | DrugTreeError::Integrate(_) | DrugTreeError::Serve(_) => {
                None
            }
        }
    }
}

impl From<drugtree_query::QueryError> for DrugTreeError {
    fn from(e: drugtree_query::QueryError) -> Self {
        DrugTreeError::Query(e)
    }
}

/// A deployment-level summary (printed by `DrugTree::report`).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Tree leaves.
    pub leaves: usize,
    /// Total tree nodes.
    pub nodes: usize,
    /// Locally materialized ligands.
    pub ligands: usize,
    /// Registered sources by kind (protein, ligand, assay).
    pub sources: (usize, usize, usize),
    /// Activity records known to statistics (0 if stats not collected).
    pub activity_records: u64,
    /// Cumulative semantic-cache counters.
    pub cache: CacheStats,
    /// Current virtual time.
    pub virtual_now: VirtualInstant,
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DrugTree: {} leaves / {} nodes, {} ligands, {} activity records",
            self.leaves, self.nodes, self.ligands, self.activity_records
        )?;
        writeln!(
            f,
            "sources: {} protein, {} ligand, {} assay",
            self.sources.0, self.sources.1, self.sources.2
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses / {} evictions",
            self.cache.hits, self.cache.misses, self.cache.evictions
        )?;
        write!(f, "virtual clock: {}", self.virtual_now)
    }
}

/// The assembled system: an integrated dataset plus its executor.
pub struct DrugTree {
    dataset: Dataset,
    executor: Executor,
}

impl DrugTree {
    /// Start building a system.
    ///
    /// # Examples
    ///
    /// ```
    /// use drugtree::prelude::*;
    ///
    /// let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(16).ligands(4));
    /// let system = DrugTree::builder()
    ///     .dataset(bundle.build_dataset())
    ///     .optimizer(OptimizerConfig::full())
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(system.report().leaves, 16);
    /// ```
    pub fn builder() -> crate::builder::DrugTreeBuilder {
        crate::builder::DrugTreeBuilder::new()
    }

    /// Assemble from pre-built parts (the builder calls this).
    pub(crate) fn from_parts(dataset: Dataset, executor: Executor) -> DrugTree {
        DrugTree { dataset, executor }
    }

    /// Decompose into the dataset/executor pair (the server harness
    /// calls this to move both behind `Arc`s).
    pub(crate) fn into_parts(self) -> (Dataset, Executor) {
        (self.dataset, self.executor)
    }

    /// Execute a structured query.
    pub fn execute(&self, query: &Query) -> Result<QueryResult, DrugTreeError> {
        Ok(self.executor.execute(&self.dataset, query)?)
    }

    /// Parse and execute a text query.
    ///
    /// # Examples
    ///
    /// ```
    /// use drugtree::prelude::*;
    ///
    /// # let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(16).ligands(4));
    /// # let system = DrugTree::builder().dataset(bundle.build_dataset()).build().unwrap();
    /// let result = system
    ///     .query("activities where p_activity >= 6 top 5 by p_activity desc")
    ///     .unwrap();
    /// assert!(result.rows.len() <= 5);
    /// println!("virtual latency: {:?}", result.metrics.virtual_cost);
    /// ```
    pub fn query(&self, text: &str) -> Result<QueryResult, DrugTreeError> {
        let query = Query::parse(text)?;
        self.execute(&query)
    }

    /// EXPLAIN a text query without running it.
    ///
    /// # Examples
    ///
    /// ```
    /// use drugtree::prelude::*;
    ///
    /// # let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(16).ligands(4));
    /// # let system = DrugTree::builder().dataset(bundle.build_dataset()).build().unwrap();
    /// let plan = system.explain("activities in tree").unwrap();
    /// assert!(plan.contains("est_cost="));
    /// ```
    pub fn explain(&self, text: &str) -> Result<String, DrugTreeError> {
        let query = Query::parse(text)?;
        Ok(self.executor.explain(&self.dataset, &query)?)
    }

    /// `EXPLAIN ANALYZE`: parse a text query, execute it with tracing,
    /// and return the plan, the per-stage span tree (on the virtual
    /// clock, so re-running is deterministic), and the result. Render
    /// with [`drugtree_query::AnalyzedResult::render`] to see
    /// estimate-vs-actual columns next to each plan node — the gap
    /// between them is exactly what cost-model calibration
    /// ([`DrugTree::calibration`]) drives down.
    ///
    /// # Examples
    ///
    /// ```
    /// use drugtree::prelude::*;
    ///
    /// # let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(16).ligands(4));
    /// # let system = DrugTree::builder().dataset(bundle.build_dataset()).build().unwrap();
    /// let analyzed = system.analyze("activities in tree").unwrap();
    /// assert!(analyzed.render().contains("| actual:"));
    /// assert_eq!(analyzed.trace.cache_hit, Some(false));
    /// ```
    pub fn analyze(&self, text: &str) -> Result<drugtree_query::AnalyzedResult, DrugTreeError> {
        let query = Query::parse(text)?;
        let mut analyzed = self.executor.analyze(&self.dataset, &query)?;
        let parse = drugtree_query::QuerySpan::new(
            drugtree_query::Stage::Parse,
            text,
            analyzed.trace.root.started,
        );
        analyzed.trace.root.children.insert(0, parse);
        Ok(analyzed)
    }

    /// Open an interactive mobile session over this system.
    ///
    /// # Examples
    ///
    /// ```
    /// use drugtree::prelude::*;
    ///
    /// # let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(16).ligands(4));
    /// # let system = DrugTree::builder().dataset(bundle.build_dataset()).build().unwrap();
    /// let mut session = system.mobile_session(NetworkProfile::CELL_4G);
    /// let frame = session.apply(&Gesture::InspectViewport).unwrap();
    /// assert!(frame.rows > 0);
    /// ```
    pub fn mobile_session(&self, network: NetworkProfile) -> MobileSession<'_> {
        MobileSession::new(&self.dataset, &self.executor, network)
    }

    /// The underlying dataset (tree, index, overlay, sources, clock).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The query executor (cache statistics, EXPLAIN, …).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Cost-model calibration snapshot: per-source fitted parameters
    /// plus the mean relative estimate error accumulated since the
    /// last reset. Meaningful once the cost-based planner has executed
    /// some queries; a fresh system reports zero observations.
    pub fn calibration(&self) -> drugtree_query::CalibrationReport {
        self.executor.calibration()
    }

    /// Drop cached results and re-collect statistics after the remote
    /// sources changed.
    pub fn refresh(&mut self) -> Result<(), DrugTreeError> {
        self.executor.invalidate();
        self.executor.collect_stats(&self.dataset)?;
        Ok(())
    }

    /// Serialize the local state (tree + overlay) to a JSON snapshot;
    /// restore with [`crate::snapshot::load_system`] plus a live
    /// source registry.
    pub fn snapshot(&self) -> Result<String, DrugTreeError> {
        crate::snapshot::save_system(&self.dataset)
    }

    /// Deployment summary.
    pub fn report(&self) -> SystemReport {
        let kind_count = |k: SourceKind| self.dataset.registry.by_kind(k).len();
        SystemReport {
            leaves: self.dataset.leaf_count(),
            nodes: self.dataset.tree.len(),
            ligands: self
                .dataset
                .overlay
                .catalog()
                .table(drugtree_integrate::overlay::tables::LIGAND)
                .map_or(0, drugtree_store::Table::len),
            sources: (
                kind_count(SourceKind::Protein),
                kind_count(SourceKind::Ligand),
                kind_count(SourceKind::Assay),
            ),
            activity_records: self
                .executor
                .stats()
                .map_or(0, drugtree_query::stats::OverlayStats::total_count),
            cache: self.executor.cache_stats(),
            virtual_now: self.dataset.clock.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_query::optimizer::OptimizerConfig;
    use drugtree_workload::{SyntheticBundle, WorkloadSpec};

    fn system() -> DrugTree {
        let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
        DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full())
            .build()
            .unwrap()
    }

    #[test]
    fn text_queries_run_end_to_end() {
        let s = system();
        let r = s.query("activities in tree").unwrap();
        assert!(!r.rows.is_empty());
        let r2 = s.query("activities where p_activity >= 6 top 5").unwrap();
        assert!(r2.rows.len() <= 5);
        assert!(s.query("frobnicate").is_err());
    }

    #[test]
    fn explain_describes_plan() {
        let s = system();
        let text = s.explain("activities in subtree('clade0')").unwrap();
        assert!(text.contains("interval"));
    }

    #[test]
    fn report_summarizes() {
        let s = system();
        s.query("activities in tree").unwrap();
        let report = s.report();
        assert_eq!(report.leaves, 32);
        assert_eq!(report.nodes, 63);
        assert_eq!(report.ligands, 8);
        assert_eq!(report.sources, (1, 1, 1));
        assert!(report.activity_records > 0, "builder collects stats");
        let text = report.to_string();
        assert!(text.contains("32 leaves"));
        assert!(text.contains("cache:"));
    }

    #[test]
    fn refresh_clears_cache() {
        let mut s = system();
        s.query("activities in tree").unwrap();
        s.query("activities in tree").unwrap();
        assert!(s.report().cache.hits >= 1);
        s.refresh().unwrap();
        let r = s.query("activities in tree").unwrap();
        assert_eq!(r.metrics.cache_hit, Some(false));
    }

    #[test]
    fn cost_based_planner_calibrates_from_executed_queries() {
        let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
        let s = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .with_cost_based_planner()
            .build()
            .unwrap();
        assert_eq!(s.calibration().observations, 0, "fresh system");
        let r = s.query("activities in tree").unwrap();
        assert!(!r.rows.is_empty());
        let cal = s.calibration();
        assert!(cal.observations > 0, "executed fetches feed the model");
        assert!(cal.mean_rel_error.is_finite());
        // EXPLAIN under the cost-based config surfaces the candidates.
        let text = s.explain("activities in subtree('clade0')").unwrap();
        assert!(text.contains("Candidate ["), "{text}");
        assert!(text.contains("est_cost="), "{text}");
    }

    #[test]
    fn mobile_session_opens() {
        let s = system();
        let mut session = s.mobile_session(NetworkProfile::CELL_4G);
        let r = session
            .apply(&drugtree_mobile::Gesture::InspectViewport)
            .unwrap();
        assert!(r.rows > 0);
    }
}
