#![deny(missing_docs)]

//! # DrugTree
//!
//! A reproduction of *"Mobile interaction and query optimization in a
//! protein-ligand data analysis system"* (SIGMOD 2013): ligand data
//! overlaid on a protein-motivated phylogenetic tree, fed by federated
//! data sources, queried through an optimizer built for interactive
//! (mobile) tree browsing.
//!
//! ```
//! use drugtree::prelude::*;
//!
//! // Generate a synthetic deployment (see `drugtree-workload`).
//! let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
//! let system = DrugTree::builder()
//!     .dataset(bundle.build_dataset())
//!     .optimizer(OptimizerConfig::full())
//!     .build()
//!     .unwrap();
//!
//! let result = system
//!     .query("activities where p_activity >= 6 top 5 by p_activity desc")
//!     .unwrap();
//! assert!(result.rows.len() <= 5);
//! println!("virtual latency: {:?}", result.metrics.virtual_cost);
//! ```
//!
//! The crate is a thin façade: the substrates live in their own crates
//! (`drugtree-phylo`, `drugtree-chem`, `drugtree-store`,
//! `drugtree-sources`, `drugtree-integrate`, `drugtree-query`,
//! `drugtree-mobile`) and are re-exported under [`prelude`].

pub mod builder;
pub mod obs;
pub mod sched;
pub mod serve;
pub mod snapshot;
pub mod system;

pub use builder::DrugTreeBuilder;
pub use obs::{AdvisorReport, JsonlFileSink, TopReport};
pub use sched::{AdmissionControl, DeadlinePolicy, HedgePolicy, SchedStats};
pub use serve::{FleetBuilder, ServeError, ServeReport};
pub use snapshot::{load_system, save_system};
pub use system::{DrugTree, DrugTreeError, SystemReport};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::builder::DrugTreeBuilder;
    pub use crate::obs::{AdvisorReport, JsonlFileSink, TopReport};
    pub use crate::sched::{AdmissionControl, DeadlinePolicy, HedgePolicy, SchedStats};
    pub use crate::serve::{FleetBuilder, ServeError, ServeReport};
    pub use crate::system::{DrugTree, DrugTreeError, SystemReport};
    pub use drugtree_mobile::gestures::{drill_down_script, GestureConfig};
    pub use drugtree_mobile::serve::{zipf_sessions, SessionWorkload};
    pub use drugtree_mobile::{Gesture, MobileSession, NetworkProfile};
    pub use drugtree_phylo::newick::{parse_newick, to_newick};
    pub use drugtree_phylo::{NodeId, Tree, TreeIndex};
    pub use drugtree_query::ast::{Metric, Query, QueryKind, Scope};
    pub use drugtree_query::optimizer::{Optimizer, OptimizerConfig};
    pub use drugtree_query::serve::{ServeConfig, ServeStats};
    pub use drugtree_query::{
        AnalyzedResult, GestureObservation, MetricsRegistry, Observer, QuerySpan, QueryTrace, Stage,
    };
    pub use drugtree_query::{Dataset, ExecMetrics, Executor, QueryResult};
    pub use drugtree_query::{
        FleetObserver, QueryClass, RollingWindows, ServeClassCounters, Sink, SloPolicy,
        SlowQueryLog, TraceExport, VecSink, WindowSummary,
    };
    pub use drugtree_store::expr::{CompareOp, Predicate};
    pub use drugtree_store::value::Value;
    // Re-exported for building deployments and benchmarks; an
    // application with real sources implements
    // `drugtree_sources::DataSource` instead.
    pub use drugtree_workload::{SyntheticBundle, WorkloadSpec};
}
