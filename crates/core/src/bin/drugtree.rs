//! The `drugtree` command-line shell.
//!
//! ```sh
//! cargo run --release -p drugtree --bin drugtree -- --leaves 256 --ligands 32
//! ```
//!
//! Builds a synthetic deployment and drops into a query REPL:
//!
//! ```text
//! drugtree> activities in subtree('clade1') where p_activity >= 6.5
//! drugtree> \explain aggregate count in tree
//! drugtree> \report
//! ```

use drugtree::prelude::*;
use std::io::{BufRead, Write};

struct Options {
    leaves: usize,
    ligands: usize,
    seed: u64,
    sources: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        leaves: 256,
        ligands: 32,
        seed: 7,
        sources: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--leaves" => opts.leaves = take("--leaves")? as usize,
            "--ligands" => opts.ligands = take("--ligands")? as usize,
            "--seed" => opts.seed = take("--seed")?,
            "--sources" => opts.sources = take("--sources")? as usize,
            "--help" | "-h" => {
                println!("usage: drugtree [--leaves N] [--ligands N] [--seed N] [--sources N]");
                println!("       drugtree top <export.jsonl>   fold a trace export into a workload summary");
                println!("       drugtree advisor <export.jsonl>  show what the self-driving layer decided");
                println!(
                    "       drugtree rules                list the rewrite-rule registry by phase"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn print_result(result: &QueryResult) {
    // Column widths over header + up to 40 shown rows.
    let shown = result.rows.len().min(40);
    let mut widths: Vec<usize> = result.columns.iter().map(String::len).collect();
    let cells: Vec<Vec<String>> = result.rows[..shown]
        .iter()
        .map(|row| row.iter().map(render_value).collect())
        .collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(&result.columns));
    for row in &cells {
        println!("{}", line(row));
    }
    if result.rows.len() > shown {
        println!("... ({} more rows)", result.rows.len() - shown);
    }
    println!(
        "{} rows in {:?} virtual | {} round-trips | cache_hit={:?} | pruned={}",
        result.rows.len(),
        result.metrics.virtual_cost,
        result.metrics.source_requests,
        result.metrics.cache_hit,
        result.metrics.pruned_leaves,
    );
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Float(f) => format!("{f:.3}"),
        Value::Text(s) if s.chars().count() > 24 => {
            let cut: String = s.chars().take(23).collect();
            format!("{cut}…")
        }
        other => other.to_string(),
    }
}

/// `drugtree rules`: dump the rewrite-rule registry, phase by phase.
fn run_rules() -> i32 {
    println!(
        "{:<12} {:<22} {:<9} description",
        "phase", "rule", "ablatable"
    );
    for phase in drugtree_query::phases::PHASE_ORDER {
        for rule in drugtree_query::phases::rules_in(phase) {
            println!(
                "{:<12} {:<22} {:<9} {}",
                phase.label(),
                rule.name,
                if rule.ablatable() { "yes" } else { "-" },
                rule.description,
            );
        }
    }
    0
}

/// `drugtree top <export.jsonl>`: fold a fleet-observability JSONL
/// export into a workload summary table.
fn run_top(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: drugtree top <export.jsonl>");
        return 2;
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return 2;
        }
    };
    let report = TopReport::from_lines(content.lines());
    if report.queries() == 0 && report.windows() == 0 {
        eprintln!("error: {path}: no query or window events found");
        return 1;
    }
    print!("{}", report.render());
    0
}

/// `drugtree advisor <export.jsonl>`: fold the adaptation decisions
/// out of a fleet-observability JSONL export.
fn run_advisor(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: drugtree advisor <export.jsonl>");
        return 2;
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return 2;
        }
    };
    let report = AdvisorReport::from_lines(content.lines());
    if report.adaptations() == 0 {
        eprintln!("error: {path}: no adaptation records found (is the adaptive layer enabled?)");
        return 1;
    }
    print!("{}", report.render());
    0
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("top") {
        std::process::exit(run_top(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("advisor") {
        std::process::exit(run_advisor(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("rules") {
        std::process::exit(run_rules());
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "generating synthetic deployment: {} leaves, {} ligands, {} assay source(s), seed {}",
        opts.leaves, opts.ligands, opts.sources, opts.seed
    );
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(opts.leaves)
            .ligands(opts.ligands)
            .seed(opts.seed)
            .assay_sources(opts.sources),
    );
    let mut system = match DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .with_matview()
        .build()
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("build failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}\n", system.report());
    println!("type a query, \\help for commands, \\q to quit\n");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("drugtree> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\q" | "\\quit" | "exit" => break,
            "\\help" => {
                println!("  <query>            run a query (see README for the language)");
                println!("  \\explain <query>   show the plan without running it");
                println!("  \\analyze <query>   run the query and show plan + metrics");
                println!("  \\report            deployment + cache summary");
                println!("  \\refresh           invalidate caches, re-collect statistics");
                println!("  \\newick            print the tree");
                println!("  \\q                 quit");
            }
            "\\report" => println!("{}", system.report()),
            "\\refresh" => match system.refresh() {
                Ok(()) => println!("caches invalidated, statistics re-collected"),
                Err(e) => println!("refresh failed: {e}"),
            },
            "\\newick" => println!("{}", to_newick(&system.dataset().tree)),
            other => {
                if let Some(q) = other.strip_prefix("\\explain ") {
                    match system.explain(q) {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                } else if let Some(q) = other.strip_prefix("\\analyze ") {
                    match system
                        .explain(q)
                        .and_then(|plan| system.query(q).map(|result| (plan, result)))
                    {
                        Ok((plan, result)) => {
                            println!("{plan}");
                            print_result(&result);
                        }
                        Err(e) => println!("error: {e}"),
                    }
                } else {
                    match system.query(other) {
                        Ok(result) => print_result(&result),
                        Err(e) => println!("error: {e}"),
                    }
                }
            }
        }
    }
}
