//! The event-driven fleet scheduler (D14).
//!
//! The original server spawned one OS thread per mobile session and
//! let the kernel interleave them — honest concurrency, but capped at
//! tens of sessions and nondeterministic in every replay. This module
//! replaces it with a discrete-event scheduler over *session state
//! machines* ([`drugtree_mobile::SessionMachine`]):
//!
//! * A **coordinator** owns a priority event queue keyed on
//!   virtual-clock deadlines `(due_ns, seq)`. A session's `due` is its
//!   private virtual cursor — the sum of the charged latencies it has
//!   accumulated — so the heap interleaves 4k–16k independent clients
//!   exactly as their virtual timelines dictate, deterministically.
//! * A small **worker pool** (not one thread per session) owns the
//!   session machines, sharded `session % workers`. The coordinator
//!   mails commands through each worker's [`EventQueue`] mailbox and
//!   workers mail replies back on one shared completion queue. Whole
//!   same-instant cohorts *begin* their gestures in parallel (private
//!   per-session state); everything that touches shared state — query
//!   execution, clock advances, observer emissions — is serialized by
//!   the coordinator in heap order, which is what makes two replays of
//!   the same fleet byte-identical.
//!
//! On top of the event loop sit the production failure scenarios:
//!
//! * **Virtual-time coalescing** — a query opens a *flight* keyed on
//!   the query's identity and held open for a coalesce window of
//!   virtual time; identical queries arriving inside the window join
//!   the flight and share one execution (the fleet-scale analogue of
//!   the executor's wall-clock single-flight, which a serialized
//!   scheduler can never trigger).
//! * **Admission control** — a bound on concurrently open flights;
//!   arrivals beyond it are *shed* with a degraded result and a small
//!   rejection cost, counted per query class.
//! * **Per-class deadlines** — a participant whose queue wait plus
//!   execution cost exceeds its class deadline times out with a
//!   degraded result charged exactly the deadline; completions that
//!   land past the deadline after delivery count as soft misses.
//! * **Hedged requests** — when a flight's execution cost exceeds the
//!   learned percentile of its class's cost history, the scheduler
//!   models a hedge against a replica: the effective cost is capped at
//!   `percentile + replica estimate`, and hedges that actually improve
//!   latency are counted as wins.
//! * **Outage storms** — a failed execution (e.g. a
//!   [`FlakySource`](drugtree_sources::flaky::FlakySource) storm
//!   window) degrades every participant with a partial result charged
//!   the failed attempt's virtual cost; the fleet keeps running.

use crate::serve::ServeError;
use drugtree_mobile::layout::TreeLayout;
use drugtree_mobile::serve::SessionWorkload;
use drugtree_mobile::{
    DegradedReason, GestureStep, MobileError, QueryOutcome, QueryPending, SessionMachine,
    ViewPending,
};
use drugtree_query::ast::Query;
use drugtree_query::obs::{QueryClass, ServeClassCounters};
use drugtree_query::{Dataset, Executor};
use drugtree_sources::sched::{EventQueue, EventQueueStats};
use drugtree_sources::telemetry::FixedHistogram;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Per-class client deadlines.
///
/// `None` (the default) means a class never times out. A uniform
/// default can be overridden per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadlinePolicy {
    default: Option<Duration>,
    per_class: [Option<Duration>; CLASSES],
}

impl DeadlinePolicy {
    /// No deadlines anywhere.
    pub fn none() -> DeadlinePolicy {
        DeadlinePolicy::default()
    }

    /// The same deadline for every class.
    pub fn uniform(deadline: Duration) -> DeadlinePolicy {
        DeadlinePolicy {
            default: Some(deadline),
            per_class: [None; CLASSES],
        }
    }

    /// Override one class's deadline.
    pub fn with_class(mut self, class: QueryClass, deadline: Duration) -> DeadlinePolicy {
        self.per_class[class_idx(class)] = Some(deadline);
        self
    }

    /// The deadline in effect for `class`.
    pub fn deadline_for(&self, class: QueryClass) -> Option<Duration> {
        self.per_class[class_idx(class)].or(self.default)
    }
}

/// Load shedding at the scheduler's front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Maximum concurrently open (not yet dispatched) flights; `0`
    /// means unlimited. Joining an already-open flight is always
    /// admitted — it adds no server work.
    pub max_open_flights: usize,
    /// Virtual cost charged to a shed query: the client's rejection
    /// round-trip.
    pub shed_cost: Duration,
}

impl Default for AdmissionControl {
    fn default() -> AdmissionControl {
        AdmissionControl {
            max_open_flights: 0,
            shed_cost: Duration::from_millis(5),
        }
    }
}

impl AdmissionControl {
    /// Admit everything.
    pub fn unlimited() -> AdmissionControl {
        AdmissionControl::default()
    }

    /// Shed arrivals beyond `max` open flights.
    pub fn max_open(max: usize) -> AdmissionControl {
        AdmissionControl {
            max_open_flights: max,
            ..AdmissionControl::default()
        }
    }
}

/// Hedged requests against replicas after a learned-percentile delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Whether hedging is armed at all.
    pub enabled: bool,
    /// Quantile (0.0–1.0) of the class's observed execution-cost
    /// history at which the hedge fires.
    pub quantile: f64,
    /// Observations a class needs before its percentile is trusted.
    pub warmup: u64,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy {
            enabled: false,
            quantile: 0.95,
            warmup: 16,
        }
    }
}

impl HedgePolicy {
    /// Hedge once a class's history is past warmup and an execution
    /// runs beyond its `quantile` (0.0–1.0) cost.
    pub fn at_quantile(quantile: f64) -> HedgePolicy {
        HedgePolicy {
            enabled: true,
            quantile: quantile.clamp(0.5, 0.9999),
            ..HedgePolicy::default()
        }
    }
}

/// Counters describing one fleet run's scheduling work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Worker threads in the pool (not sessions!).
    pub workers: usize,
    /// Heap events processed.
    pub events: u64,
    /// Flights dispatched (each is one shared execution).
    pub flights: u64,
    /// Queries that joined an already-open flight.
    pub flight_joins: u64,
    /// High-water mark of concurrently open flights.
    pub max_open_flights: u64,
    /// Aggregated worker-mailbox traffic.
    pub mailbox: EventQueueStats,
    /// Completion-queue traffic.
    pub completions: EventQueueStats,
}

/// Everything the scheduler needs beyond the workload itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SchedulerConfig {
    /// Worker threads; `0` picks the fixed default pool.
    pub workers: usize,
    pub deadline: DeadlinePolicy,
    pub admission: AdmissionControl,
    pub hedging: HedgePolicy,
    /// Virtual time a flight stays open for joiners.
    pub coalesce_window: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            workers: 0,
            deadline: DeadlinePolicy::none(),
            admission: AdmissionControl::default(),
            hedging: HedgePolicy::default(),
            coalesce_window: Duration::from_millis(2),
        }
    }
}

/// What one fleet run produced, before the serve layer wraps it in a
/// `ServeReport`.
pub(crate) struct FleetOutcome {
    pub session_totals: Vec<Duration>,
    pub latencies: Vec<Duration>,
    pub gestures: usize,
    pub classes: Vec<ServeClassCounters>,
    pub stats: SchedStats,
}

const CLASSES: usize = QueryClass::ALL.len();

fn class_idx(class: QueryClass) -> usize {
    match class {
        QueryClass::Listing => 0,
        QueryClass::Filtered => 1,
        QueryClass::Similarity => 2,
        QueryClass::TopK => 3,
        QueryClass::Aggregate => 4,
        QueryClass::CountPerLeaf => 5,
    }
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A session's virtual cursor reached `due`: begin its next
    /// gesture.
    Session(usize),
    /// A flight's coalesce window closed: dispatch it.
    Flight(u64),
}

/// Heap entries order by `(due, seq)`; `seq` is a monotonic tiebreak
/// so same-instant events replay in submission order.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    due: u64,
    seq: u64,
    kind: EventKind,
}

enum Command {
    Begin {
        session: usize,
    },
    CommitView {
        session: usize,
        pending: ViewPending,
    },
    CommitQuery {
        session: usize,
        pending: QueryPending,
        outcome: QueryOutcome,
    },
}

enum Reply {
    Begun {
        session: usize,
        step: Option<GestureStep>,
    },
    BeginFailed {
        session: usize,
        error: MobileError,
    },
    Committed {
        session: usize,
        charged: Duration,
        query: bool,
    },
}

struct Part {
    session: usize,
    pending: QueryPending,
    /// Fleet time (ns) the participant arrived — its queue wait is
    /// the dispatch time minus this.
    arrived: u64,
}

struct Flight {
    class: QueryClass,
    key: String,
    query: Query,
    parts: Vec<Part>,
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassAcc {
    admitted: u64,
    shed: u64,
    hedged: u64,
    hedges_won: u64,
    deadline_missed: u64,
    outages: u64,
}

impl ClassAcc {
    fn any(&self) -> bool {
        self.admitted != 0 || self.shed != 0
    }
}

/// Drive `workloads` to completion over the shared dataset/executor
/// pair. Deterministic: two calls with identical inputs produce
/// identical outcomes, clock schedules, and observer emissions.
pub(crate) fn run_fleet(
    dataset: &Dataset,
    executor: &Executor,
    workloads: &[SessionWorkload],
    config: &SchedulerConfig,
) -> Result<FleetOutcome, ServeError> {
    let sessions = workloads.len();
    let workers = if config.workers == 0 {
        4
    } else {
        config.workers
    }
    .min(sessions.max(1))
    .max(1);
    let layout = Arc::new(TreeLayout::compute(&dataset.tree, &dataset.index));
    let mailboxes: Vec<Arc<EventQueue<Command>>> =
        (0..workers).map(|_| Arc::new(EventQueue::new())).collect();
    let completions: Arc<EventQueue<Reply>> = Arc::new(EventQueue::new());

    std::thread::scope(|scope| {
        for (w, mailbox) in mailboxes.iter().enumerate() {
            let mailbox = Arc::clone(mailbox);
            let completions = Arc::clone(&completions);
            let layout = Arc::clone(&layout);
            scope.spawn(move || {
                worker_loop(
                    w,
                    workers,
                    dataset,
                    executor,
                    workloads,
                    layout,
                    &mailbox,
                    &completions,
                );
            });
        }
        let mut sched = Sched {
            dataset,
            executor,
            config,
            mailboxes: &mailboxes,
            completions: &completions,
            heap: BinaryHeap::new(),
            seq: 0,
            cursors: vec![0u64; sessions],
            totals: vec![Duration::ZERO; sessions],
            latencies: Vec::new(),
            counters: [ClassAcc::default(); CLASSES],
            hists: std::array::from_fn(|_| FixedHistogram::latency_buckets()),
            open_by_key: HashMap::new(),
            flights: HashMap::new(),
            next_flight: 0,
            gestures: 0,
            done: 0,
            stats: SchedStats {
                workers,
                ..SchedStats::default()
            },
        };
        let result = sched.drive(sessions);
        // Always unblock the pool, success or error: workers drain
        // their mailboxes and exit on `None`.
        for mailbox in &mailboxes {
            mailbox.close();
        }
        result?;
        let mut mailbox_stats = EventQueueStats::default();
        for mb in &mailboxes {
            let s = mb.stats();
            mailbox_stats.pushed += s.pushed;
            mailbox_stats.popped += s.popped;
            mailbox_stats.waits += s.waits;
        }
        sched.stats.mailbox = mailbox_stats;
        sched.stats.completions = completions.stats();
        Ok(sched.into_outcome())
    })
}

/// One worker: owns the machines of its shard (`session % workers`)
/// and executes coordinator commands until its mailbox closes.
#[allow(clippy::too_many_arguments)]
fn worker_loop<'a>(
    worker: usize,
    workers: usize,
    dataset: &'a Dataset,
    executor: &'a Executor,
    workloads: &[SessionWorkload],
    layout: Arc<TreeLayout>,
    mailbox: &EventQueue<Command>,
    completions: &EventQueue<Reply>,
) {
    // Fleet construction is the one genuinely parallel bulk phase:
    // each worker builds its shard's machines while the others do the
    // same.
    let mut machines: HashMap<usize, SessionMachine<'a>> = workloads
        .iter()
        .enumerate()
        .filter(|(i, _)| i % workers == worker)
        .map(|(i, w)| {
            (
                i,
                SessionMachine::new(dataset, executor, Arc::clone(&layout), w),
            )
        })
        .collect();
    while let Some(cmd) = mailbox.pop() {
        match cmd {
            // A command for a session outside this shard can only come
            // from a mis-routed coordinator; answer with a terminal /
            // zero-cost reply so the ping-pong protocol never stalls.
            Command::Begin { session } => {
                let Some(m) = machines.get_mut(&session) else {
                    completions.push(Reply::Begun {
                        session,
                        step: None,
                    });
                    continue;
                };
                match m.begin_next() {
                    Ok(step) => completions.push(Reply::Begun { session, step }),
                    Err(error) => completions.push(Reply::BeginFailed { session, error }),
                }
            }
            Command::CommitView { session, pending } => {
                let Some(m) = machines.get_mut(&session) else {
                    completions.push(Reply::Committed {
                        session,
                        charged: Duration::ZERO,
                        query: false,
                    });
                    continue;
                };
                let r = m.commit_view(pending);
                completions.push(Reply::Committed {
                    session,
                    charged: r.charged_latency,
                    query: false,
                });
            }
            Command::CommitQuery {
                session,
                pending,
                outcome,
            } => {
                let Some(m) = machines.get_mut(&session) else {
                    completions.push(Reply::Committed {
                        session,
                        charged: Duration::ZERO,
                        query: true,
                    });
                    continue;
                };
                let r = m.commit_query(pending, &outcome);
                completions.push(Reply::Committed {
                    session,
                    charged: r.charged_latency,
                    query: true,
                });
            }
        }
    }
}

struct Sched<'a> {
    dataset: &'a Dataset,
    executor: &'a Executor,
    config: &'a SchedulerConfig,
    mailboxes: &'a [Arc<EventQueue<Command>>],
    completions: &'a EventQueue<Reply>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Per-session fleet time (ns): the machine's virtual cursor.
    cursors: Vec<u64>,
    totals: Vec<Duration>,
    latencies: Vec<Duration>,
    counters: [ClassAcc; CLASSES],
    /// Learned per-class execution-cost history (hedging trigger).
    hists: [FixedHistogram; CLASSES],
    open_by_key: HashMap<String, u64>,
    flights: HashMap<u64, Flight>,
    next_flight: u64,
    gestures: usize,
    done: usize,
    stats: SchedStats,
}

impl<'a> Sched<'a> {
    fn mailbox_for(&self, session: usize) -> &EventQueue<Command> {
        &self.mailboxes[session % self.mailboxes.len()]
    }

    fn push_event(&mut self, due: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { due, seq, kind }));
    }

    /// Serialized commit: mail the command, block for its reply. The
    /// ping-pong is what makes clock advances and observer emissions
    /// replay in one deterministic total order.
    fn commit(&mut self, session: usize, cmd: Command) -> Result<(Duration, bool), ServeError> {
        self.mailbox_for(session).push(cmd);
        match self.completions.pop() {
            Some(Reply::Committed {
                session: s,
                charged,
                query,
            }) if s == session => Ok((charged, query)),
            _ => Err(ServeError::Worker(format!(
                "worker pool hung up while committing session {session}"
            ))),
        }
    }

    /// Account a committed interaction and schedule the session's
    /// next event at its new virtual cursor.
    fn settle(&mut self, session: usize, charged: Duration, query: bool) {
        self.totals[session] += charged;
        self.cursors[session] = self.cursors[session].saturating_add(nanos(charged));
        if query {
            self.latencies.push(charged);
        }
        self.push_event(self.cursors[session], EventKind::Session(session));
    }

    fn drive(&mut self, sessions: usize) -> Result<(), ServeError> {
        for s in 0..sessions {
            self.push_event(0, EventKind::Session(s));
        }
        while let Some(Reverse(event)) = self.heap.pop() {
            self.stats.events += 1;
            match event.kind {
                EventKind::Session(first) => self.begin_cohort(event.due, first)?,
                EventKind::Flight(id) => self.dispatch_flight(event.due, id)?,
            }
        }
        debug_assert_eq!(self.done, sessions, "every session ran to completion");
        Ok(())
    }

    /// Pop every same-instant session event, begin the whole cohort in
    /// parallel across the pool, then process the steps in heap order.
    fn begin_cohort(&mut self, due: u64, first: usize) -> Result<(), ServeError> {
        let mut cohort = vec![first];
        while let Some(Reverse(peek)) = self.heap.peek() {
            if peek.due != due || !matches!(peek.kind, EventKind::Session(_)) {
                break;
            }
            let Some(Reverse(next)) = self.heap.pop() else {
                break;
            };
            self.stats.events += 1;
            if let EventKind::Session(s) = next.kind {
                cohort.push(s);
            }
        }
        for &s in &cohort {
            self.mailbox_for(s).push(Command::Begin { session: s });
        }
        let mut steps: HashMap<usize, Result<Option<GestureStep>, MobileError>> =
            HashMap::with_capacity(cohort.len());
        for _ in 0..cohort.len() {
            match self.completions.pop() {
                Some(Reply::Begun { session, step }) => {
                    steps.insert(session, Ok(step));
                }
                Some(Reply::BeginFailed { session, error }) => {
                    steps.insert(session, Err(error));
                }
                _ => {
                    return Err(ServeError::Worker(
                        "worker pool hung up while beginning a cohort".into(),
                    ))
                }
            }
        }
        for s in cohort {
            let Some(step) = steps.remove(&s) else {
                return Err(ServeError::Worker(format!(
                    "worker pool never replied for session {s}"
                )));
            };
            match step {
                Err(source) => return Err(ServeError::Session { session: s, source }),
                Ok(None) => self.done += 1,
                Ok(Some(GestureStep::View(pending))) => {
                    self.gestures += 1;
                    let (charged, query) = self.commit(
                        s,
                        Command::CommitView {
                            session: s,
                            pending,
                        },
                    )?;
                    self.settle(s, charged, query);
                }
                Ok(Some(GestureStep::Query(pending))) => {
                    self.gestures += 1;
                    self.query_arrival(due, s, pending)?;
                }
            }
        }
        Ok(())
    }

    /// Route a begun query: join an open flight, shed, or open a new
    /// flight due after the coalesce window.
    fn query_arrival(
        &mut self,
        now: u64,
        session: usize,
        pending: QueryPending,
    ) -> Result<(), ServeError> {
        let class = QueryClass::of(&pending.query);
        let key = format!("{:?}", pending.query);
        if let Some(&id) = self.open_by_key.get(&key) {
            if let Some(flight) = self.flights.get_mut(&id) {
                self.stats.flight_joins += 1;
                flight.parts.push(Part {
                    session,
                    pending,
                    arrived: now,
                });
                return Ok(());
            }
            // Stale key (flight already dispatched): open a new flight.
            self.open_by_key.remove(&key);
        }
        let admission = self.config.admission;
        if admission.max_open_flights > 0 && self.open_by_key.len() >= admission.max_open_flights {
            self.counters[class_idx(class)].shed += 1;
            let outcome = QueryOutcome::Degraded {
                reason: DegradedReason::Shed,
                charged: admission.shed_cost,
            };
            let (charged, query) = self.commit(
                session,
                Command::CommitQuery {
                    session,
                    pending,
                    outcome,
                },
            )?;
            self.settle(session, charged, query);
            return Ok(());
        }
        let id = self.next_flight;
        self.next_flight += 1;
        let query = pending.query.clone();
        self.open_by_key.insert(key.clone(), id);
        self.flights.insert(
            id,
            Flight {
                class,
                key,
                query,
                parts: vec![Part {
                    session,
                    pending,
                    arrived: now,
                }],
            },
        );
        self.stats.max_open_flights = self
            .stats
            .max_open_flights
            .max(self.open_by_key.len() as u64);
        self.push_event(
            now.saturating_add(nanos(self.config.coalesce_window)),
            EventKind::Flight(id),
        );
        Ok(())
    }

    /// Close and execute a flight, then resolve every participant —
    /// deadline checks, hedging, or graceful outage degradation.
    fn dispatch_flight(&mut self, now: u64, id: u64) -> Result<(), ServeError> {
        let Some(flight) = self.flights.remove(&id) else {
            return Ok(());
        };
        self.open_by_key.remove(&flight.key);
        self.stats.flights += 1;
        let before = self.dataset.clock.now().0;
        let executed = self.executor.execute(self.dataset, &flight.query);
        let exec_delta = Duration::from_nanos(self.dataset.clock.now().0.saturating_sub(before));
        let idx = class_idx(flight.class);
        match executed {
            Ok(result) => {
                let result = Arc::new(result);
                let cost = result.metrics.charged_cost;
                let query_latency = result.metrics.virtual_cost;
                let (effective, hedged, hedge_won) = self.hedge(idx, &flight.query, cost);
                self.hists[idx].record_duration(cost);
                let deadline = self.config.deadline.deadline_for(flight.class);
                for part in flight.parts {
                    let wait = Duration::from_nanos(now.saturating_sub(part.arrived));
                    {
                        let acc = &mut self.counters[idx];
                        acc.admitted += 1;
                        if hedged {
                            acc.hedged += 1;
                            if hedge_won {
                                acc.hedges_won += 1;
                            }
                        }
                    }
                    let hard_miss = deadline.is_some_and(|d| wait + effective > d);
                    let outcome = if let (Some(d), true) = (deadline, hard_miss) {
                        self.counters[idx].deadline_missed += 1;
                        QueryOutcome::Degraded {
                            reason: DegradedReason::DeadlineExpired,
                            charged: d,
                        }
                    } else {
                        QueryOutcome::Rows {
                            result: Arc::clone(&result),
                            charged: wait + effective,
                            query_latency,
                        }
                    };
                    let (charged, query) = self.commit(
                        part.session,
                        Command::CommitQuery {
                            session: part.session,
                            pending: part.pending,
                            outcome,
                        },
                    )?;
                    // Soft miss: delivered, but transfer pushed the
                    // final charged latency past the deadline.
                    if !hard_miss && deadline.is_some_and(|d| charged > d) {
                        self.counters[idx].deadline_missed += 1;
                    }
                    self.settle(part.session, charged, query);
                }
            }
            Err(_outage) => {
                // Graceful partial results: every participant gets a
                // degraded (empty) answer charged its wait plus the
                // failed attempt's virtual cost, and the fleet keeps
                // running.
                for part in flight.parts {
                    let wait = Duration::from_nanos(now.saturating_sub(part.arrived));
                    {
                        let acc = &mut self.counters[idx];
                        acc.admitted += 1;
                        acc.outages += 1;
                    }
                    let outcome = QueryOutcome::Degraded {
                        reason: DegradedReason::SourceOutage,
                        charged: wait + exec_delta,
                    };
                    let (charged, query) = self.commit(
                        part.session,
                        Command::CommitQuery {
                            session: part.session,
                            pending: part.pending,
                            outcome,
                        },
                    )?;
                    self.settle(part.session, charged, query);
                }
            }
        }
        Ok(())
    }

    /// Hedging decision for one executed flight: `(effective cost,
    /// hedged?, won?)`.
    fn hedge(&self, idx: usize, query: &Query, cost: Duration) -> (Duration, bool, bool) {
        let policy = self.config.hedging;
        if !policy.enabled {
            return (cost, false, false);
        }
        let snapshot = self.hists[idx].snapshot();
        if snapshot.count < policy.warmup {
            return (cost, false, false);
        }
        let learned =
            Duration::from_nanos(snapshot.quantile(policy.quantile.clamp(0.0, 1.0)) as u64);
        if cost <= learned {
            return (cost, false, false);
        }
        // The primary ran long: a hedge fires against a replica after
        // the learned delay, so the client pays at most the delay plus
        // the replica's (estimated fresh) cost.
        let Ok(estimate) = self.executor.estimate(self.dataset, query) else {
            return (cost, true, false);
        };
        let bound = learned + estimate.cost;
        if bound < cost {
            (bound, true, true)
        } else {
            (cost, true, false)
        }
    }

    fn into_outcome(self) -> FleetOutcome {
        let classes = QueryClass::ALL
            .iter()
            .filter_map(|&class| {
                let acc = self.counters[class_idx(class)];
                acc.any().then(|| ServeClassCounters {
                    class: class.label().to_string(),
                    admitted: acc.admitted,
                    shed: acc.shed,
                    hedged: acc.hedged,
                    hedges_won: acc.hedges_won,
                    deadline_missed: acc.deadline_missed,
                    outages: acc.outages,
                })
            })
            .collect();
        FleetOutcome {
            session_totals: self.totals,
            latencies: self.latencies,
            gestures: self.gestures,
            classes,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_policy_layers_defaults_and_overrides() {
        let p = DeadlinePolicy::uniform(Duration::from_millis(100))
            .with_class(QueryClass::TopK, Duration::from_millis(250));
        assert_eq!(
            p.deadline_for(QueryClass::Listing),
            Some(Duration::from_millis(100))
        );
        assert_eq!(
            p.deadline_for(QueryClass::TopK),
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            DeadlinePolicy::none().deadline_for(QueryClass::Listing),
            None
        );
    }

    #[test]
    fn class_indices_cover_all_classes_uniquely() {
        let mut seen = [false; CLASSES];
        for class in QueryClass::ALL {
            let i = class_idx(class);
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn events_order_by_due_then_seq() {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Event {
            due: 10,
            seq: 1,
            kind: EventKind::Session(7),
        }));
        heap.push(Reverse(Event {
            due: 5,
            seq: 2,
            kind: EventKind::Flight(0),
        }));
        heap.push(Reverse(Event {
            due: 10,
            seq: 0,
            kind: EventKind::Session(3),
        }));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e.seq)).collect();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn hedge_policy_clamps_quantile() {
        let p = HedgePolicy::at_quantile(2.0);
        assert!(p.enabled);
        assert!(p.quantile <= 0.9999);
    }
}
