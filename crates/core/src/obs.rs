//! Fleet-observability I/O: the file-backed export sink and the
//! `drugtree top` workload report.
//!
//! The query crate's [`TraceExport`] is I/O-free by design — it writes
//! through the [`Sink`] trait. This module supplies the file half:
//! [`JsonlFileSink`] appends one JSON record per line, and
//! [`TopReport`] folds such an export back into the summary table the
//! `drugtree top` subcommand prints (per-class QPS and tail latency,
//! cache hit rate, the slowest plan fingerprints, and per-session SLO
//! breaches), and [`AdvisorReport`] folds the `"adapt"` records into
//! the `drugtree advisor` view of what the self-driving layer did
//! (which loops fired, what they touched, and why).
//!
//! [`TraceExport`]: drugtree_query::TraceExport

use drugtree_query::obs::{AdaptEvent, QueryEvent, ServeEvent, Sink, WindowEvent};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

/// A [`Sink`] appending JSONL records to a file through a buffered
/// writer. Call [`JsonlFileSink::flush`] (or drop the sink) before
/// reading the file back.
#[derive(Debug)]
pub struct JsonlFileSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlFileSink {
    /// Create (truncate) `path` and sink lines into it.
    pub fn create(path: &Path) -> std::io::Result<JsonlFileSink> {
        let file = File::create(path)?;
        Ok(JsonlFileSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().flush()
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl Sink for JsonlFileSink {
    fn write_line(&self, line: &str) {
        let mut writer = self.writer.lock();
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }
}

#[derive(Debug, Default)]
struct ClassAccumulator {
    charged_ns: Vec<u64>,
    breaches: u64,
    probes: u64,
    hits: u64,
}

#[derive(Debug, Default)]
struct ServeAccumulator {
    admitted: u64,
    shed: u64,
    hedged: u64,
    hedges_won: u64,
    deadline_missed: u64,
    outages: u64,
}

#[derive(Debug, Default)]
struct ShapeAccumulator {
    example: String,
    count: u64,
    max_charged_ns: u64,
}

/// A workload summary folded from a JSONL export: what `drugtree top`
/// renders.
#[derive(Debug, Default)]
pub struct TopReport {
    classes: BTreeMap<String, ClassAccumulator>,
    shapes: BTreeMap<String, ShapeAccumulator>,
    serve: BTreeMap<String, ServeAccumulator>,
    sessions: BTreeMap<u32, u64>,
    first_started_ns: Option<u64>,
    last_ended_ns: u64,
    queries: u64,
    windows: u64,
    rollups: u64,
    adapts: u64,
    skipped: u64,
}

impl TopReport {
    /// Fold an export, one JSONL line per item. Unparseable lines are
    /// counted, not fatal — a truncated export still reports.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> TopReport {
        let mut report = TopReport::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("{\"event\":\"query\"") {
                match serde_json::from_str::<QueryEvent>(line) {
                    Ok(event) => report.fold_query(&event),
                    Err(_) => report.skipped += 1,
                }
            } else if line.starts_with("{\"event\":\"window\"") {
                match serde_json::from_str::<WindowEvent>(line) {
                    Ok(event) => report.fold_window(&event),
                    Err(_) => report.skipped += 1,
                }
            } else if line.starts_with("{\"event\":\"serve\"") {
                match serde_json::from_str::<ServeEvent>(line) {
                    Ok(event) => report.fold_serve(&event),
                    Err(_) => report.skipped += 1,
                }
            } else if line.starts_with("{\"event\":\"adapt\"") {
                // Adaptation records belong to `drugtree advisor`;
                // here we only acknowledge them so a mixed export does
                // not report them as garbage.
                report.adapts += 1;
            } else {
                report.skipped += 1;
            }
        }
        report
    }

    fn fold_query(&mut self, event: &QueryEvent) {
        self.queries += 1;
        self.first_started_ns = Some(
            self.first_started_ns
                .map_or(event.started_ns, |first| first.min(event.started_ns)),
        );
        self.last_ended_ns = self.last_ended_ns.max(event.ended_ns);
        let class = self.classes.entry(event.class.clone()).or_default();
        class.charged_ns.push(event.charged_ns);
        if event.breach {
            class.breaches += 1;
        }
        if let Some(hit) = event.cache_hit {
            class.probes += 1;
            if hit {
                class.hits += 1;
            }
        }
        let shape = self.shapes.entry(event.fingerprint.clone()).or_default();
        shape.count += 1;
        if event.charged_ns >= shape.max_charged_ns {
            shape.max_charged_ns = event.charged_ns;
            shape.example = event.query.clone();
        }
    }

    fn fold_window(&mut self, event: &WindowEvent) {
        self.windows += 1;
        if let Some(id) = event.scope.strip_prefix("session:") {
            if let Ok(id) = id.parse::<u32>() {
                let breaches = self.sessions.entry(id).or_default();
                *breaches = (*breaches).max(event.breaches);
            }
        }
    }

    fn fold_serve(&mut self, event: &ServeEvent) {
        self.rollups += 1;
        let acc = self.serve.entry(event.class.clone()).or_default();
        acc.admitted += event.admitted;
        acc.shed += event.shed;
        acc.hedged += event.hedged;
        acc.hedges_won += event.hedges_won;
        acc.deadline_missed += event.deadline_missed;
        acc.outages += event.outages;
    }

    /// Query events folded in.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Window events folded in.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Per-class serve rollups folded in.
    pub fn rollups(&self) -> u64 {
        self.rollups
    }

    /// Lines that failed to parse.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The workload summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let span_ns = self
            .first_started_ns
            .map_or(0, |first| self.last_ended_ns.saturating_sub(first));
        let span_secs = span_ns as f64 / 1e9;
        let _ = writeln!(
            out,
            "workload: {} queries, {} window rollovers over {:.2}s virtual",
            self.queries, self.windows, span_secs
        );
        if self.adapts > 0 {
            let _ = writeln!(
                out,
                "({} adaptation records — see `drugtree advisor`)",
                self.adapts
            );
        }
        if self.skipped > 0 {
            let _ = writeln!(out, "({} unparseable lines skipped)", self.skipped);
        }
        let _ = writeln!(out);
        let header = [
            "class", "queries", "qps", "p50", "p95", "p99", "breach", "hit rate",
        ];
        let mut rows: Vec<[String; 8]> = Vec::new();
        for (label, acc) in &self.classes {
            let mut sorted = acc.charged_ns.clone();
            sorted.sort_unstable();
            let qps = if span_secs > 0.0 {
                sorted.len() as f64 / span_secs
            } else {
                0.0
            };
            let hit_rate = if acc.probes == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", acc.hits as f64 / acc.probes as f64)
            };
            rows.push([
                label.clone(),
                sorted.len().to_string(),
                format!("{qps:.1}"),
                fmt_ns(exact_percentile(&sorted, 0.50)),
                fmt_ns(exact_percentile(&sorted, 0.95)),
                fmt_ns(exact_percentile(&sorted, 0.99)),
                acc.breaches.to_string(),
                hit_rate,
            ]);
        }
        render_table(&mut out, &header, &rows);
        if !self.serve.is_empty() {
            let _ = writeln!(out, "\nserving (admission / hedging / deadlines):");
            let serve_header = [
                "class", "admitted", "shed", "hedged", "won", "deadline", "outages",
            ];
            let serve_rows: Vec<[String; 7]> = self
                .serve
                .iter()
                .map(|(label, acc)| {
                    [
                        label.clone(),
                        acc.admitted.to_string(),
                        acc.shed.to_string(),
                        acc.hedged.to_string(),
                        acc.hedges_won.to_string(),
                        acc.deadline_missed.to_string(),
                        acc.outages.to_string(),
                    ]
                })
                .collect();
            render_table(&mut out, &serve_header, &serve_rows);
        }
        let mut shapes: Vec<(&String, &ShapeAccumulator)> = self.shapes.iter().collect();
        shapes.sort_by(|a, b| {
            b.1.max_charged_ns
                .cmp(&a.1.max_charged_ns)
                .then_with(|| a.0.cmp(b.0))
        });
        let _ = writeln!(out, "\ntop slow plan shapes (by worst charged latency):");
        for (fingerprint, shape) in shapes.iter().take(5) {
            let _ = writeln!(
                out,
                "  {} x{:<4} worst={} {}",
                fingerprint,
                shape.count,
                fmt_ns(shape.max_charged_ns),
                truncate(&shape.example, 60),
            );
        }
        if !self.sessions.is_empty() {
            let breaching = self.sessions.values().filter(|&&b| b > 0).count();
            let worst = self
                .sessions
                .iter()
                .max_by_key(|(id, breaches)| (**breaches, std::cmp::Reverse(**id)));
            let _ = write!(
                out,
                "\nsessions: {} with window rollovers, {} breaching",
                self.sessions.len(),
                breaching
            );
            if let Some((id, breaches)) = worst {
                let _ = write!(out, "; worst session:{id} ({breaches} breaches)");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[derive(Debug, Default)]
struct LoopAccumulator {
    applies: u64,
    reverts: u64,
    evicts: u64,
    last_action: String,
    last_subject: String,
}

/// The self-driving layer's decision log folded from a JSONL export:
/// what `drugtree advisor` renders.
///
/// Folds only the `{"event":"adapt"}` records — a mixed export (query
/// spans, window rollovers, serve rollups interleaved with adapt
/// decisions) is the normal input, and the non-adapt records are
/// passed over silently.
#[derive(Debug, Default)]
pub struct AdvisorReport {
    loops: BTreeMap<String, LoopAccumulator>,
    timeline: Vec<AdaptEvent>,
    other_events: u64,
    skipped: u64,
}

impl AdvisorReport {
    /// Fold an export, one JSONL line per item. Non-adapt event
    /// records are counted but ignored; unparseable lines are counted,
    /// not fatal.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> AdvisorReport {
        let mut report = AdvisorReport::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("{\"event\":\"adapt\"") {
                match serde_json::from_str::<AdaptEvent>(line) {
                    Ok(event) => report.fold_adapt(event),
                    Err(_) => report.skipped += 1,
                }
            } else if line.starts_with("{\"event\":\"") {
                report.other_events += 1;
            } else {
                report.skipped += 1;
            }
        }
        report
    }

    fn fold_adapt(&mut self, event: AdaptEvent) {
        let acc = self.loops.entry(event.loop_name.clone()).or_default();
        match event.action.as_str() {
            "apply" => acc.applies += 1,
            "revert" => acc.reverts += 1,
            "evict" => acc.evicts += 1,
            _ => {}
        }
        acc.last_action = event.action.clone();
        acc.last_subject = event.subject.clone();
        self.timeline.push(event);
    }

    /// Adapt records folded in.
    pub fn adaptations(&self) -> u64 {
        self.timeline.len() as u64
    }

    /// Revert decisions across all loops — zero in steady state; a
    /// non-zero count means a guardrail fired.
    pub fn reverts(&self) -> u64 {
        self.loops.values().map(|a| a.reverts).sum()
    }

    /// Lines that failed to parse.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The advisor summary: per-loop decision counts, then the
    /// decision timeline in export order.
    pub fn render(&self) -> String {
        const TIMELINE_CAP: usize = 20;
        let mut out = String::new();
        let span_ns = match (self.timeline.first(), self.timeline.last()) {
            (Some(first), Some(last)) => last.at_ns.saturating_sub(first.at_ns),
            _ => 0,
        };
        let _ = writeln!(
            out,
            "self-driving layer: {} adaptation(s) across {} loop(s) over {:.2}s virtual",
            self.adaptations(),
            self.loops.len(),
            span_ns as f64 / 1e9,
        );
        if self.other_events > 0 {
            let _ = writeln!(
                out,
                "({} non-adapt events in export — see `drugtree top`)",
                self.other_events
            );
        }
        if self.skipped > 0 {
            let _ = writeln!(out, "({} unparseable lines skipped)", self.skipped);
        }
        let _ = writeln!(out);
        let header = ["loop", "apply", "revert", "evict", "last decision"];
        let rows: Vec<[String; 5]> = self
            .loops
            .iter()
            .map(|(name, acc)| {
                [
                    name.clone(),
                    acc.applies.to_string(),
                    acc.reverts.to_string(),
                    acc.evicts.to_string(),
                    format!("{} {}", acc.last_action, truncate(&acc.last_subject, 32)),
                ]
            })
            .collect();
        render_table(&mut out, &header, &rows);
        let _ = writeln!(out, "\ndecision timeline:");
        for event in self.timeline.iter().take(TIMELINE_CAP) {
            let _ = writeln!(
                out,
                "  [{:>9.3}s] {:<13} {:<7} {:<28} {}",
                event.at_ns as f64 / 1e9,
                event.loop_name,
                event.action,
                truncate(&event.subject, 28),
                truncate(&event.reason, 56),
            );
        }
        if self.timeline.len() > TIMELINE_CAP {
            let _ = writeln!(
                out,
                "  ... ({} more decisions)",
                self.timeline.len() - TIMELINE_CAP
            );
        }
        if self.reverts() == 0 {
            let _ = writeln!(
                out,
                "\nno reverts: every adaptation held past its guardrail"
            );
        } else {
            let _ = writeln!(
                out,
                "\n{} revert(s): the regret guardrail rolled back at least one loop",
                self.reverts()
            );
        }
        out
    }
}

/// Exact percentile over sorted samples (nearest-rank; 0 when empty).
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn fmt_ns(ns: u64) -> String {
    let ms = ns as f64 / 1e6;
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn render_table<const N: usize>(out: &mut String, header: &[&str; N], rows: &[[String; N]]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{c:<w$}", w = widths[i])
                } else {
                    format!("{c:>w$}", w = widths[i])
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| (*h).to_string()).collect();
    let _ = writeln!(out, "{}", line(&header_cells));
    for row in rows {
        let _ = writeln!(out, "{}", line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_query::obs::VecSink;
    use drugtree_query::{FleetObserver, Observer, SloPolicy};
    use std::sync::Arc;

    fn export_lines() -> Vec<String> {
        use drugtree_query::optimizer::{Optimizer, OptimizerConfig};
        use drugtree_query::parser::parse_query;
        use drugtree_query::Executor;
        use drugtree_sources::source::SourceCapabilities;
        let dataset =
            drugtree_query::dataset::test_fixtures::small_dataset(SourceCapabilities::full());
        let sink = Arc::new(VecSink::new());
        let observer = Arc::new(
            FleetObserver::with_windows(
                std::time::Duration::from_millis(10),
                8,
                SloPolicy::default(),
            )
            .with_slowlog(4)
            .with_export(Arc::clone(&sink) as Arc<dyn drugtree_query::Sink>),
        );
        let mut executor = Executor::new(Optimizer::new(OptimizerConfig::full()));
        executor.set_observer(observer as Arc<dyn Observer>);
        for text in [
            "activities in tree",
            "activities in tree where p_activity >= 6",
            "activities in tree where p_activity >= 7",
            "activities in tree top 3 by p_activity",
        ] {
            executor
                .execute(&dataset, &parse_query(text).unwrap())
                .unwrap();
        }
        sink.lines()
    }

    #[test]
    fn file_sink_round_trips_lines() {
        let dir = std::env::temp_dir().join("drugtree-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("export.jsonl");
        let sink = JsonlFileSink::create(&path).unwrap();
        sink.write_line("{\"event\":\"query\"}");
        sink.write_line("{\"event\":\"window\"}");
        sink.flush().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"event\":\"query\"}\n{\"event\":\"window\"}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn top_report_folds_an_export() {
        let lines = export_lines();
        assert!(!lines.is_empty());
        let report = TopReport::from_lines(lines.iter().map(String::as_str));
        assert_eq!(report.queries(), 4);
        assert_eq!(report.skipped(), 0);
        let rendered = report.render();
        assert!(rendered.contains("workload: 4 queries"));
        assert!(rendered.contains("listing"));
        assert!(rendered.contains("filtered"));
        assert!(rendered.contains("top_k"));
        assert!(rendered.contains("top slow plan shapes"));
        // The two filtered queries share one fingerprint line.
        assert!(rendered.contains("x2"));
    }

    #[test]
    fn top_report_folds_serve_rollups() {
        let lines = [
            r#"{"event":"serve","seq":0,"class":"similarity","admitted":90,"shed":10,"hedged":4,"hedges_won":3,"deadline_missed":2,"outages":1}"#,
            r#"{"event":"serve","seq":1,"class":"similarity","admitted":10,"shed":5,"hedged":1,"hedges_won":0,"deadline_missed":0,"outages":0}"#,
            r#"{"event":"serve","seq":2,"class":"listing","admitted":7,"shed":0,"hedged":0,"hedges_won":0,"deadline_missed":0,"outages":0}"#,
        ];
        let report = TopReport::from_lines(lines);
        assert_eq!(report.rollups(), 3);
        assert_eq!(report.skipped(), 0);
        let rendered = report.render();
        assert!(rendered.contains("serving (admission / hedging / deadlines):"));
        // Same-class rollups are summed: 10 + 5 shed similarity queries.
        let row = rendered
            .lines()
            .find(|l| l.starts_with("similarity"))
            .unwrap();
        assert!(row.contains("100"), "admitted summed: {row}");
        assert!(row.contains("15"), "shed summed: {row}");
    }

    #[test]
    fn top_report_acknowledges_adapt_records() {
        let lines = [
            r#"{"event":"adapt","seq":0,"at_ns":100,"loop_name":"matview","action":"apply","subject":"aggregate(count)","reason":"break-even crossed","before_ns":10,"after_ns":2}"#,
        ];
        let report = TopReport::from_lines(lines);
        assert_eq!(report.skipped(), 0, "adapt records are not garbage");
        assert!(report.render().contains("see `drugtree advisor`"));
    }

    #[test]
    fn advisor_report_folds_adapt_decisions() {
        let lines = [
            r#"{"event":"query","seq":0,"class":"listing","query":"q","fingerprint":"f","started_ns":0,"ended_ns":1,"charged_ns":1,"breach":false}"#,
            r#"{"event":"adapt","seq":1,"at_ns":1000000,"loop_name":"learned-stats","action":"apply","subject":"p_activity >=","reason":"calibrated from 8 observations","before_ns":0,"after_ns":0}"#,
            r#"{"event":"adapt","seq":2,"at_ns":5000000,"loop_name":"matview","action":"apply","subject":"aggregate(count)","reason":"break-even crossed","before_ns":900000,"after_ns":12000}"#,
            r#"{"event":"adapt","seq":3,"at_ns":9000000,"loop_name":"matview","action":"evict","subject":"aggregate(count)","reason":"idle past ttl","before_ns":0,"after_ns":0}"#,
        ];
        let report = AdvisorReport::from_lines(lines);
        assert_eq!(report.adaptations(), 3);
        assert_eq!(report.reverts(), 0);
        assert_eq!(report.skipped(), 0);
        let rendered = report.render();
        assert!(rendered.contains("3 adaptation(s) across 2 loop(s)"));
        assert!(rendered.contains("learned-stats"));
        assert!(rendered.contains("break-even crossed"));
        assert!(rendered.contains("idle past ttl"));
        assert!(rendered.contains("no reverts"));
        // The matview row counts one apply and one evict.
        let row = rendered.lines().find(|l| l.starts_with("matview")).unwrap();
        assert!(
            row.contains("evict aggregate(count)"),
            "last decision: {row}"
        );
    }

    #[test]
    fn advisor_report_counts_reverts() {
        let lines = [
            r#"{"event":"adapt","seq":0,"at_ns":100,"loop_name":"learned-stats","action":"apply","subject":"p_activity","reason":"calibrated","before_ns":0,"after_ns":0}"#,
            r#"{"event":"adapt","seq":1,"at_ns":200,"loop_name":"learned-stats","action":"revert","subject":"p_activity","reason":"regret threshold","before_ns":0,"after_ns":0}"#,
            "garbage",
        ];
        let report = AdvisorReport::from_lines(lines);
        assert_eq!(report.reverts(), 1);
        assert_eq!(report.skipped(), 1);
        assert!(report.render().contains("1 revert(s)"));
    }

    #[test]
    fn top_report_tolerates_garbage_lines() {
        let report = TopReport::from_lines(["not json", "", "{\"event\":\"query\",broken"]);
        assert_eq!(report.queries(), 0);
        assert_eq!(report.skipped(), 2, "blank lines are not counted");
        assert!(report.render().contains("2 unparseable"));
    }
}
