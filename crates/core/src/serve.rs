//! The serving API: session fleets over one shared executor.
//!
//! [`FleetBuilder`] is the public face of the event-driven scheduler
//! in [`crate::sched`]: it owns a dataset/executor pair, takes a fleet
//! of [`SessionWorkload`]s, and drives every session as a poll-able
//! state machine on the virtual clock — 4k–16k Zipf sessions replay
//! deterministically on a worker pool the size of a desk, not a
//! datacenter. The builder's `with_*` methods opt into the production
//! failure scenarios (per-class deadlines, admission control with load
//! shedding, hedged requests, graceful outage degradation) and the
//! cache shard-count sweep; [`FleetBuilder::run`] returns a
//! [`ServeReport`] whose per-class [`ServeClassCounters`] expose the
//! shed/hedged/deadline-missed counts, also emitted to any attached
//! observer as `{"event":"serve"}` JSONL records for `drugtree top`.

use crate::sched::{run_fleet, SchedStats, SchedulerConfig};
use crate::system::{DrugTree, DrugTreeError};
use drugtree_mobile::serve::SessionWorkload;
use drugtree_mobile::MobileError;
use drugtree_query::cache::CacheStats;
use drugtree_query::obs::ServeClassCounters;
use drugtree_query::serve::ServeStats;
use drugtree_query::trace::Observer;
use drugtree_query::{Dataset, Executor, ServeConfig};
use drugtree_sources::clock::wall_now;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

pub use crate::sched::{AdmissionControl, DeadlinePolicy, HedgePolicy};

/// Errors from the serving layer.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard
/// arm. Wrapped lower-layer errors are reachable through
/// [`std::error::Error::source`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A session failed while beginning a gesture (e.g. an unknown
    /// node in its script).
    Session {
        /// The failing session's index.
        session: usize,
        /// The underlying mobile-layer error.
        source: MobileError,
    },
    /// The fleet was misconfigured.
    Config(String),
    /// The worker pool failed mid-run.
    Worker(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Session { session, source } => {
                write!(f, "session {session} failed: {source}")
            }
            ServeError::Config(msg) => write!(f, "fleet misconfigured: {msg}"),
            ServeError::Worker(msg) => write!(f, "worker pool error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session { source, .. } => Some(source),
            ServeError::Config(_) | ServeError::Worker(_) => None,
        }
    }
}

impl From<ServeError> for DrugTreeError {
    fn from(e: ServeError) -> DrugTreeError {
        DrugTreeError::Serve(e.to_string())
    }
}

/// What a serving run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Total gestures replayed across all sessions.
    pub gestures: usize,
    /// Real (wall-clock) time the run took. The only
    /// machine-dependent field — exclude it when comparing replays.
    pub wall: Duration,
    /// Charged latency of every query-bearing interaction (including
    /// degraded ones), unsorted.
    pub latencies: Vec<Duration>,
    /// Per-session virtual completion time: the sum of every
    /// interaction's charged latency in that session. Sessions are
    /// independent clients, so they overlap; the fleet's virtual
    /// makespan is the maximum entry.
    pub session_totals: Vec<Duration>,
    /// Cache counters after the run.
    pub cache: CacheStats,
    /// Coordinator counters after the run (when serving was enabled).
    pub serve: Option<ServeStats>,
    /// Per-class shed/hedge/deadline/outage counters, in class display
    /// order, omitting classes that saw no traffic.
    pub classes: Vec<ServeClassCounters>,
    /// Scheduler counters (events, flights, queue traffic).
    pub sched: Option<SchedStats>,
}

impl ServeReport {
    /// The fleet's virtual makespan: the slowest session's completion
    /// time (sessions overlap; the server is done when the last one is).
    pub fn virtual_makespan(&self) -> Duration {
        self.session_totals
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
    }

    /// Gestures per *virtual* second: total gestures over the virtual
    /// makespan. Deterministic and machine-independent, like every
    /// latency in the experiment suite; wall-clock CPU is Criterion's
    /// job.
    pub fn throughput(&self) -> f64 {
        let secs = self.virtual_makespan().as_secs_f64();
        if secs > 0.0 {
            self.gestures as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// The `p`-th percentile (0–100, clamped) of charged query
    /// latency, linearly interpolated between order statistics:
    /// `p = 0` is the minimum, `p = 100` the maximum, a single sample
    /// answers every `p`, and an empty report answers
    /// [`Duration::ZERO`].
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let position = (p / 100.0) * (sorted.len() - 1) as f64;
        let lower = position.floor() as usize;
        let upper = position.ceil() as usize;
        if lower == upper {
            return sorted[lower];
        }
        let fraction = position - lower as f64;
        let a = sorted[lower].as_secs_f64();
        let b = sorted[upper].as_secs_f64();
        Duration::from_secs_f64(a + (b - a) * fraction)
    }

    /// Total queries shed by admission control, across classes.
    pub fn total_shed(&self) -> u64 {
        self.classes.iter().map(|c| c.shed).sum()
    }

    /// Total deadline misses (hard timeouts plus soft overruns).
    pub fn total_deadline_missed(&self) -> u64 {
        self.classes.iter().map(|c| c.deadline_missed).sum()
    }

    /// Total hedged queries across classes.
    pub fn total_hedged(&self) -> u64 {
        self.classes.iter().map(|c| c.hedged).sum()
    }

    /// Total outage-degraded queries across classes.
    pub fn total_outages(&self) -> u64 {
        self.classes.iter().map(|c| c.outages).sum()
    }
}

/// Builder for a deterministic session-fleet run.
///
/// ```
/// use drugtree::prelude::*;
///
/// let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
/// let fleet = DrugTree::builder()
///     .dataset(bundle.build_dataset())
///     .optimizer(OptimizerConfig::full())
///     .build()
///     .unwrap()
///     .fleet();
/// let workloads = zipf_sessions(
///     &fleet.dataset().tree,
///     &fleet.dataset().index,
///     8,
///     &GestureConfig { len: 10, ..Default::default() },
/// );
/// let report = fleet
///     .with_sessions(workloads)
///     .with_deadline_policy(DeadlinePolicy::uniform(std::time::Duration::from_secs(2)))
///     .run()
///     .unwrap();
/// assert_eq!(report.sessions, 8);
/// ```
pub struct FleetBuilder {
    dataset: Dataset,
    executor: Executor,
    workloads: Vec<SessionWorkload>,
    config: SchedulerConfig,
    shards: Option<usize>,
    serve_config: ServeConfig,
}

impl FleetBuilder {
    pub(crate) fn new(dataset: Dataset, executor: Executor) -> FleetBuilder {
        FleetBuilder {
            dataset,
            executor,
            workloads: Vec::new(),
            config: SchedulerConfig::default(),
            shards: None,
            // The scheduler serializes execution, so the executor's
            // wall-clock coalescing delay buys nothing: cross-session
            // sharing happens in virtual time at the flight layer.
            serve_config: ServeConfig {
                delay_yields: 0,
                ..ServeConfig::default()
            },
        }
    }

    /// The fleet's workloads (replaces any previous set).
    pub fn with_sessions(mut self, workloads: Vec<SessionWorkload>) -> FleetBuilder {
        self.workloads = workloads;
        self
    }

    /// Per-class client deadlines.
    pub fn with_deadline_policy(mut self, deadline: DeadlinePolicy) -> FleetBuilder {
        self.config.deadline = deadline;
        self
    }

    /// Admission control and load shedding.
    pub fn with_admission_control(mut self, admission: AdmissionControl) -> FleetBuilder {
        self.config.admission = admission;
        self
    }

    /// Hedged requests against replicas.
    pub fn with_hedging(mut self, hedging: HedgePolicy) -> FleetBuilder {
        self.config.hedging = hedging;
        self
    }

    /// Pin the semantic cache's shard count (the E11 shard sweep).
    /// Without this the serving default
    /// ([`Executor::SERVING_CACHE_SHARDS`]) applies.
    pub fn with_shards(mut self, shards: usize) -> FleetBuilder {
        self.shards = Some(shards);
        self
    }

    /// Worker threads in the scheduler pool (`0` = default pool of 4).
    /// The pool size never affects results — only wall-clock speed.
    pub fn with_workers(mut self, workers: usize) -> FleetBuilder {
        self.config.workers = workers;
        self
    }

    /// Virtual time a flight stays open for same-query joiners.
    pub fn with_coalesce_window(mut self, window: Duration) -> FleetBuilder {
        self.config.coalesce_window = window;
        self
    }

    /// Override the executor-level fetch-coordination tuning.
    pub fn with_serve_config(mut self, config: ServeConfig) -> FleetBuilder {
        self.serve_config = config;
        self
    }

    /// Attach an observer (e.g. a
    /// [`FleetObserver`](drugtree_query::obs::FleetObserver) with a
    /// JSONL export) to the executor; the run's per-class serve
    /// counters are rolled up to it at the end.
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> FleetBuilder {
        self.executor.set_observer(observer);
        self
    }

    /// The dataset the fleet will serve (e.g. for generating
    /// workloads over its tree).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Mutable dataset access, for failure injection: tests swap the
    /// source registry for
    /// [`FlakySource`](drugtree_sources::flaky::FlakySource)-wrapped
    /// replicas with scripted outage storms.
    pub fn dataset_mut(&mut self) -> &mut Dataset {
        &mut self.dataset
    }

    /// Run the fleet to completion and roll up the measurements.
    pub fn run(mut self) -> Result<ServeReport, ServeError> {
        self.executor.enable_serving(self.serve_config);
        if let Some(shards) = self.shards {
            self.executor.set_cache_shards(shards);
        }
        let started = wall_now();
        let outcome = run_fleet(&self.dataset, &self.executor, &self.workloads, &self.config)?;
        let wall = wall_now().duration_since(started);
        if let Some(observer) = self.executor.observer() {
            for class in &outcome.classes {
                observer.on_serve_rollup(class);
            }
        }
        Ok(ServeReport {
            sessions: self.workloads.len(),
            gestures: outcome.gestures,
            wall,
            latencies: outcome.latencies,
            session_totals: outcome.session_totals,
            cache: self.executor.cache_stats(),
            serve: self.executor.serve_stats(),
            classes: outcome.classes,
            sched: Some(outcome.stats),
        })
    }
}

impl DrugTree {
    /// Convert into a fleet builder: the entry point of the serving
    /// API.
    pub fn fleet(self) -> FleetBuilder {
        let (dataset, executor) = self.into_parts();
        FleetBuilder::new(dataset, executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_mobile::gestures::GestureConfig;
    use drugtree_mobile::serve::{hot_clade_ranking, zipf_sessions};
    use drugtree_mobile::{Gesture, NetworkProfile};
    use drugtree_query::optimizer::OptimizerConfig;
    use drugtree_sources::flaky::{FlakySource, OutageWindow};
    use drugtree_sources::SourceRegistry;
    use drugtree_workload::{SyntheticBundle, WorkloadSpec};

    fn system() -> DrugTree {
        let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
        DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full())
            .build()
            .unwrap()
    }

    fn fleet_workloads(fleet: &FleetBuilder, sessions: usize, len: usize) -> Vec<SessionWorkload> {
        zipf_sessions(
            &fleet.dataset().tree,
            &fleet.dataset().index,
            sessions,
            &GestureConfig {
                len,
                ..Default::default()
            },
        )
    }

    fn report_with(latencies: Vec<Duration>) -> ServeReport {
        ServeReport {
            sessions: 0,
            gestures: 0,
            wall: Duration::ZERO,
            latencies,
            session_totals: Vec::new(),
            cache: CacheStats::default(),
            serve: None,
            classes: Vec::new(),
            sched: None,
        }
    }

    #[test]
    fn fleet_serves_zipf_sessions() {
        let fleet = system().fleet();
        let workloads = fleet_workloads(&fleet, 4, 20);
        let report = fleet.with_sessions(workloads).run().unwrap();
        assert_eq!(report.sessions, 4);
        assert_eq!(report.gestures, 80);
        assert!(!report.latencies.is_empty());
        assert!(report.throughput() > 0.0);
        let stats = report.cache;
        assert_eq!(stats.hits + stats.misses, stats.probes);
        assert!(report.serve.is_some(), "run enables fetch coordination");
        let sched = report.sched.expect("scheduler stats present");
        assert!(sched.flights > 0);
        assert!(sched.events as usize >= report.gestures);
        assert!(!report.classes.is_empty(), "query classes saw traffic");
        assert_eq!(report.total_shed(), 0, "no admission control configured");
    }

    #[test]
    fn fleet_replays_are_deterministic() {
        let run = || {
            let fleet = system().fleet();
            let workloads = fleet_workloads(&fleet, 8, 15);
            let report = fleet.with_sessions(workloads).run().unwrap();
            (
                report.session_totals.clone(),
                report.latencies.clone(),
                format!("{:?}", report.classes),
                report.cache,
            )
        };
        assert_eq!(run(), run(), "two fleet replays must match exactly");
    }

    #[test]
    fn admission_control_sheds_per_class() {
        let fleet = system().fleet();
        // Eight sessions expanding eight *distinct* clades at the same
        // virtual instant: distinct query keys, so only one flight can
        // be open and the rest are shed.
        let clades = hot_clade_ranking(&fleet.dataset().tree, &fleet.dataset().index);
        assert!(clades.len() >= 8, "need distinct clades for the test");
        let workloads: Vec<SessionWorkload> = clades
            .iter()
            .take(8)
            .enumerate()
            .map(|(i, node)| SessionWorkload {
                session: i,
                network: NetworkProfile::CELL_4G,
                script: vec![Gesture::Expand { node: *node }],
            })
            .collect();
        let report = fleet
            .with_sessions(workloads)
            .with_admission_control(AdmissionControl::max_open(1))
            .run()
            .unwrap();
        assert_eq!(report.total_shed(), 7, "one admitted, seven shed");
        let admitted: u64 = report.classes.iter().map(|c| c.admitted).sum();
        assert_eq!(admitted, 1);
        // Shed queries still produce (degraded) latencies.
        assert_eq!(report.latencies.len(), 8);
    }

    #[test]
    fn deadlines_expire_and_are_counted() {
        let fleet = system().fleet();
        let workloads = fleet_workloads(&fleet, 4, 10);
        let deadline = Duration::from_nanos(1);
        let report = fleet
            .with_sessions(workloads)
            .with_deadline_policy(DeadlinePolicy::uniform(deadline))
            .run()
            .unwrap();
        assert!(report.total_deadline_missed() > 0);
        // Every query either timed out (charged exactly the deadline)
        // or was a view gesture; timed-out queries charge the deadline.
        assert!(report.latencies.iter().all(|l| *l >= deadline));
    }

    #[test]
    fn hedging_arms_on_the_learned_percentile() {
        let fleet = system().fleet();
        let workloads = fleet_workloads(&fleet, 4, 20);
        let report = fleet
            .with_sessions(workloads)
            .with_hedging(HedgePolicy {
                enabled: true,
                quantile: 0.0,
                warmup: 1,
            })
            .run()
            .unwrap();
        let hedged = report.total_hedged();
        let won: u64 = report.classes.iter().map(|c| c.hedges_won).sum();
        assert!(hedged > 0, "a floor-percentile hedge must fire");
        assert!(won <= hedged);
    }

    #[test]
    fn outage_storms_degrade_gracefully() {
        let mut fleet = system().fleet();
        let workloads = fleet_workloads(&fleet, 4, 12);
        // Wrap every source in a permanent storm: all fetches fail.
        let clock = Arc::clone(&fleet.dataset().clock);
        let mut stormy = SourceRegistry::new();
        for source in fleet.dataset().registry.all().to_vec() {
            stormy
                .register(Arc::new(
                    FlakySource::new(source, 0.0, Duration::from_millis(200), 7).with_storms(
                        Arc::clone(&clock),
                        vec![OutageWindow::at(
                            Duration::ZERO,
                            Duration::from_secs(1 << 30),
                        )],
                    ),
                ))
                .unwrap();
        }
        fleet.dataset_mut().registry = stormy;
        let report = fleet.with_sessions(workloads).run().unwrap();
        assert!(
            report.total_outages() > 0,
            "storms must degrade some queries"
        );
        assert_eq!(report.sessions, 4, "the fleet rides through the storm");
    }

    #[test]
    fn percentiles_are_ordered() {
        let fleet = system().fleet();
        let workloads = fleet_workloads(&fleet, 2, 30);
        let report = fleet.with_sessions(workloads).run().unwrap();
        let p50 = report.latency_percentile(50.0);
        let p95 = report.latency_percentile(95.0);
        let p99 = report.latency_percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn latency_percentile_handles_empty_and_single() {
        let empty = report_with(Vec::new());
        assert_eq!(empty.latency_percentile(50.0), Duration::ZERO);
        let single = report_with(vec![Duration::from_millis(7)]);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(single.latency_percentile(p), Duration::from_millis(7));
        }
    }

    #[test]
    fn latency_percentile_interpolates_linearly() {
        let r = report_with(vec![Duration::from_millis(20), Duration::from_millis(10)]);
        assert_eq!(r.latency_percentile(0.0), Duration::from_millis(10));
        assert_eq!(r.latency_percentile(100.0), Duration::from_millis(20));
        assert_eq!(r.latency_percentile(50.0), Duration::from_millis(15));
        assert_eq!(r.latency_percentile(25.0), Duration::from_micros(12_500));
        // Three samples: p50 is exactly the middle order statistic.
        let r3 = report_with(vec![
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
        ]);
        assert_eq!(r3.latency_percentile(50.0), Duration::from_millis(20));
        assert_eq!(r3.latency_percentile(75.0), Duration::from_millis(25));
    }

    #[test]
    fn latency_percentile_clamps_out_of_range() {
        let r = report_with(vec![Duration::from_millis(10), Duration::from_millis(20)]);
        assert_eq!(r.latency_percentile(-5.0), Duration::from_millis(10));
        assert_eq!(r.latency_percentile(250.0), Duration::from_millis(20));
        assert_eq!(r.latency_percentile(f64::NAN), Duration::from_millis(10));
    }

    #[test]
    fn serve_error_chains_sources() {
        let fleet = system().fleet();
        let bogus = SessionWorkload {
            session: 0,
            network: NetworkProfile::WIFI,
            script: vec![Gesture::Expand {
                node: drugtree_phylo::NodeId(u32::MAX),
            }],
        };
        let err = fleet.with_sessions(vec![bogus]).run().unwrap_err();
        match &err {
            ServeError::Session { session, .. } => assert_eq!(*session, 0),
            other => panic!("expected session error, got {other:?}"),
        }
        assert!(
            std::error::Error::source(&err).is_some(),
            "source() chains to the mobile error"
        );
    }
}
