//! The concurrent server: M mobile sessions over one shared executor.
//!
//! Everything below the session layer is already thread-safe — the
//! executor's sharded cache, the fetch coordinator, the virtual clock,
//! the simulated sources. [`ServerHandle`] is the harness that proves
//! it: it owns the dataset/executor pair behind `Arc`s and drives one
//! OS thread per [`SessionWorkload`], each replaying its gesture
//! script through its own [`MobileSession`]
//! against the shared executor. The per-interaction numbers every
//! thread records roll up into a [`ServeReport`] with wall-clock
//! throughput and charged-latency percentiles — the measurements
//! experiment E11 tables.

use crate::system::{DrugTree, DrugTreeError};
use drugtree_mobile::serve::SessionWorkload;
use drugtree_mobile::MobileSession;
use drugtree_query::cache::CacheStats;
use drugtree_query::serve::ServeStats;
use drugtree_query::{Dataset, Executor, ServeConfig};
use drugtree_sources::clock::wall_now;
use std::sync::Arc;
use std::time::Duration;

/// What a serving run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Total gestures replayed across all sessions.
    pub gestures: usize,
    /// Real (wall-clock) time the run took.
    pub wall: Duration,
    /// Charged latency of every query-bearing interaction, unsorted.
    pub latencies: Vec<Duration>,
    /// Per-session virtual completion time: the sum of every
    /// interaction's charged latency in that session. Sessions are
    /// independent clients, so they overlap; the fleet's virtual
    /// makespan is the maximum entry.
    pub session_totals: Vec<Duration>,
    /// Cache counters after the run.
    pub cache: CacheStats,
    /// Coordinator counters after the run (when serving was enabled).
    pub serve: Option<ServeStats>,
}

impl ServeReport {
    /// The fleet's virtual makespan: the slowest session's completion
    /// time (sessions overlap; the server is done when the last one is).
    pub fn virtual_makespan(&self) -> Duration {
        self.session_totals
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
    }

    /// Gestures per *virtual* second: total gestures over the virtual
    /// makespan. Deterministic and machine-independent, like every
    /// latency in the experiment suite; wall-clock CPU is Criterion's
    /// job.
    pub fn throughput(&self) -> f64 {
        let secs = self.virtual_makespan().as_secs_f64();
        if secs > 0.0 {
            self.gestures as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// The `p`-th percentile (0–100) of charged query latency.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// A shareable server over one dataset/executor pair.
pub struct ServerHandle {
    dataset: Arc<Dataset>,
    executor: Arc<Executor>,
}

impl ServerHandle {
    /// Wrap an already-configured pair. Call
    /// [`Executor::enable_serving`] first if cross-session coalescing
    /// is wanted; [`DrugTree::into_server`] does both.
    pub fn new(dataset: Arc<Dataset>, executor: Arc<Executor>) -> ServerHandle {
        ServerHandle { dataset, executor }
    }

    /// The shared dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The shared executor.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// Replay every workload concurrently, one OS thread per session,
    /// all sharing this server's executor. Returns the rolled-up
    /// measurements; the first session error, if any, fails the run.
    pub fn run(&self, workloads: &[SessionWorkload]) -> Result<ServeReport, DrugTreeError> {
        type SessionOutcome = Result<(Duration, Vec<Duration>), DrugTreeError>;
        let started = wall_now();
        let mut per_session: Vec<SessionOutcome> = Vec::with_capacity(workloads.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = workloads
                .iter()
                .map(|w| {
                    let dataset = &self.dataset;
                    let executor = &self.executor;
                    scope.spawn(move || -> SessionOutcome {
                        let mut session = MobileSession::new(dataset, executor, w.network);
                        session.set_session_id(w.session as u32);
                        let mut total = Duration::ZERO;
                        let mut latencies = Vec::with_capacity(w.script.len());
                        for gesture in &w.script {
                            let r = session
                                .apply(gesture)
                                .map_err(|e| DrugTreeError::Serve(e.to_string()))?;
                            total += r.charged_latency;
                            if r.cache_hit.is_some() {
                                latencies.push(r.charged_latency);
                            }
                        }
                        Ok((total, latencies))
                    })
                })
                .collect();
            for h in handles {
                per_session.push(h.join().unwrap_or_else(|_| {
                    Err(DrugTreeError::Serve("session thread panicked".into()))
                }));
            }
        });
        let wall = wall_now().duration_since(started);
        let mut latencies = Vec::new();
        let mut session_totals = Vec::with_capacity(per_session.len());
        for r in per_session {
            let (total, mine) = r?;
            session_totals.push(total);
            latencies.extend(mine);
        }
        Ok(ServeReport {
            sessions: workloads.len(),
            gestures: workloads.iter().map(|w| w.script.len()).sum(),
            wall,
            latencies,
            session_totals,
            cache: self.executor.cache_stats(),
            serve: self.executor.serve_stats(),
        })
    }
}

impl DrugTree {
    /// Convert into a concurrent server: enables cross-session fetch
    /// coordination on the executor and moves the pair behind `Arc`s.
    pub fn into_server(self, config: ServeConfig) -> ServerHandle {
        let (dataset, mut executor) = self.into_parts();
        executor.enable_serving(config);
        ServerHandle::new(Arc::new(dataset), Arc::new(executor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_mobile::gestures::GestureConfig;
    use drugtree_mobile::serve::zipf_sessions;
    use drugtree_query::optimizer::OptimizerConfig;
    use drugtree_workload::{SyntheticBundle, WorkloadSpec};

    fn server() -> ServerHandle {
        let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
        DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full())
            .build()
            .unwrap()
            .into_server(ServeConfig::default())
    }

    #[test]
    fn serves_concurrent_sessions() {
        let server = server();
        let workloads = zipf_sessions(
            &server.dataset().tree,
            &server.dataset().index,
            4,
            &GestureConfig {
                len: 20,
                ..Default::default()
            },
        );
        let report = server.run(&workloads).unwrap();
        assert_eq!(report.sessions, 4);
        assert_eq!(report.gestures, 80);
        assert!(!report.latencies.is_empty());
        assert!(report.throughput() > 0.0);
        let stats = report.cache;
        assert_eq!(stats.hits + stats.misses, stats.probes);
        assert!(report.serve.is_some(), "into_server enables coordination");
    }

    #[test]
    fn percentiles_are_ordered() {
        let server = server();
        let workloads = zipf_sessions(
            &server.dataset().tree,
            &server.dataset().index,
            2,
            &GestureConfig {
                len: 30,
                ..Default::default()
            },
        );
        let report = server.run(&workloads).unwrap();
        let p50 = report.latency_percentile(50.0);
        let p95 = report.latency_percentile(95.0);
        let p99 = report.latency_percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99);
    }
}
