#![warn(missing_docs)]

//! Wrapper/mediator data integration for the DrugTree reproduction.
//!
//! The paper: *"the data is being obtained from multiple sources,
//! integrated and then presented to the user with the [ligand data]
//! imposed upon the phylogenetic analysis layer."* This crate is that
//! integration step:
//!
//! * [`entity`] — entity resolution: accession normalization, synonym
//!   tables, and fuzzy string matching for the cross-source joins.
//! * [`mapping`] — declarative schema mappings from source rows into
//!   the unified overlay schema.
//! * [`conflict`] — conflict resolution when multiple sources report
//!   the same measurement (source priority, recency, median).
//! * [`ligand_identity`] — structure-level ligand unification: records
//!   whose canonical SMILES match collapse to one id.
//! * [`adapter`] — the source wrapper: present a legacy-schema source
//!   under the unified schema, translating pushdown predicates.
//! * [`overlay`] — the overlay join: attach ligand/activity records to
//!   tree leaves and materialize the result into the local store,
//!   indexed by leaf rank (the coordinate the query layer uses).

pub mod adapter;
pub mod conflict;
pub mod entity;
pub mod error;
pub mod ligand_identity;
pub mod mapping;
pub mod overlay;

pub use entity::EntityResolver;
pub use error::IntegrateError;
pub use overlay::{Overlay, OverlayBuilder};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IntegrateError>;
