//! The overlay join: ligand data imposed on the phylogenetic layer.
//!
//! This is DrugTree's defining data structure. Activities are resolved
//! to tree leaves, collapsed through conflict resolution, and
//! materialized into local store tables *keyed by leaf rank* — the 1-D
//! coordinate that turns "in this subtree" into a range predicate
//! (design decision D1). Ligand structures are parsed once and their
//! fingerprints cached for similarity queries.

use crate::conflict::{resolve_conflicts, ConflictPolicy, ConflictReport};
use crate::entity::EntityResolver;
use crate::ligand_identity::{dedupe_ligands, LigandIdentityReport};
use crate::{IntegrateError, Result};
use drugtree_chem::affinity::ActivityRecord;
use drugtree_chem::fingerprint::Fingerprint;
use drugtree_chem::mol::Molecule;
use drugtree_chem::smiles::parse_smiles;
use drugtree_phylo::index::TreeIndex;
use drugtree_phylo::tree::Tree;
use drugtree_sources::ligand_db::LigandRecord;
use drugtree_sources::protein_db::ProteinRecord;
use drugtree_store::schema::{Column, Schema};
use drugtree_store::table::{IndexKind, Table};
use drugtree_store::value::{Value, ValueType};
use drugtree_store::Catalog;
use rustc_hash::FxHashMap;

/// Store table names of the overlay.
pub mod tables {
    /// Activities keyed by leaf rank.
    pub const ACTIVITY: &str = "overlay_activity";
    /// Unified ligand records.
    pub const LIGAND: &str = "ligand";
    /// Proteins with their leaf assignment.
    pub const PROTEIN: &str = "protein";
}

/// Schema of [`tables::ACTIVITY`].
pub fn activity_schema() -> Schema {
    Schema::new(vec![
        Column::required("leaf_rank", ValueType::Int),
        Column::required("protein_accession", ValueType::Text),
        Column::required("ligand_id", ValueType::Text),
        Column::required("activity_type", ValueType::Text),
        Column::required("value_nm", ValueType::Float),
        Column::required("p_activity", ValueType::Float),
        Column::required("source", ValueType::Text),
        Column::required("year", ValueType::Int),
    ])
}

/// Schema of [`tables::LIGAND`].
pub fn ligand_schema() -> Schema {
    Schema::new(vec![
        Column::required("ligand_id", ValueType::Text),
        Column::required("name", ValueType::Text),
        Column::required("smiles", ValueType::Text),
        Column::required("mw", ValueType::Float),
        Column::required("hbd", ValueType::Int),
        Column::required("hba", ValueType::Int),
        Column::required("rings", ValueType::Int),
    ])
}

/// Schema of [`tables::PROTEIN`].
pub fn protein_schema() -> Schema {
    Schema::new(vec![
        Column::required("accession", ValueType::Text),
        Column::required("name", ValueType::Text),
        Column::required("organism", ValueType::Text),
        Column::required("leaf_rank", ValueType::Int),
    ])
}

/// Build statistics, reported to the user after integration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlayReport {
    /// Activity records attached to leaves.
    pub activities_overlaid: usize,
    /// Activity records whose protein reference did not resolve.
    pub activities_unresolved: usize,
    /// Ligand records ingested.
    pub ligands: usize,
    /// Ligands whose SMILES failed to parse (kept, but without a
    /// fingerprint — similarity queries skip them).
    pub ligands_unparsed: usize,
    /// Ligand ids merged away by structure-level identity.
    pub ligands_merged: usize,
    /// Conflict-resolution statistics.
    pub conflicts: ConflictReport,
}

/// The integrated overlay: local store tables plus the fingerprint
/// cache.
pub struct Overlay {
    catalog: Catalog,
    fingerprints: FxHashMap<String, Fingerprint>,
    molecules: FxHashMap<String, Molecule>,
    report: OverlayReport,
}

impl Overlay {
    /// The local store holding the overlay tables.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access (materialized-view maintenance, refreshes).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Fingerprint of a ligand, when its structure parsed.
    pub fn fingerprint(&self, ligand_id: &str) -> Option<&Fingerprint> {
        self.fingerprints.get(ligand_id)
    }

    /// Parsed molecule of a ligand, when its structure parsed.
    pub fn molecule(&self, ligand_id: &str) -> Option<&Molecule> {
        self.molecules.get(ligand_id)
    }

    /// All (ligand id, fingerprint) pairs.
    pub fn fingerprints(&self) -> impl Iterator<Item = (&str, &Fingerprint)> {
        self.fingerprints.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Build statistics.
    pub fn report(&self) -> OverlayReport {
        self.report
    }

    /// Reconstruct an overlay from a previously materialized catalog
    /// (e.g. restored through `drugtree_store::snapshot`). Fingerprints
    /// and molecules are recomputed from the ligand table's SMILES; the
    /// build report reflects only what is recoverable.
    pub fn from_catalog(catalog: Catalog) -> Result<Overlay> {
        for required in [tables::PROTEIN, tables::LIGAND] {
            catalog.table(required)?;
        }
        let mut fingerprints = FxHashMap::default();
        let mut molecules = FxHashMap::default();
        let mut ligands_unparsed = 0;
        let ligand_table = catalog.table(tables::LIGAND)?;
        let id_col = ligand_table.schema().column_index("ligand_id")?;
        let smiles_col = ligand_table.schema().column_index("smiles")?;
        let mut ligands = 0;
        for (_, row) in ligand_table.scan() {
            ligands += 1;
            let (Some(id), Some(smiles)) = (row[id_col].as_text(), row[smiles_col].as_text())
            else {
                ligands_unparsed += 1;
                continue;
            };
            match parse_smiles(smiles) {
                Ok(mol) => {
                    fingerprints.insert(id.to_string(), Fingerprint::of_molecule(&mol));
                    molecules.insert(id.to_string(), mol);
                }
                Err(_) => ligands_unparsed += 1,
            }
        }
        Ok(Overlay {
            catalog,
            fingerprints,
            molecules,
            report: OverlayReport {
                ligands,
                ligands_unparsed,
                ..Default::default()
            },
        })
    }
}

/// Builds an [`Overlay`] from resolved inputs.
pub struct OverlayBuilder<'a> {
    tree: &'a Tree,
    index: &'a TreeIndex,
    resolver: EntityResolver,
    conflict_policy: ConflictPolicy,
}

impl<'a> OverlayBuilder<'a> {
    /// Start a builder over an indexed tree. The canonical entity
    /// universe is the set of leaf labels.
    pub fn new(tree: &'a Tree, index: &'a TreeIndex) -> OverlayBuilder<'a> {
        let leaf_labels = tree
            .leaves()
            .into_iter()
            .filter_map(|l| tree.node_unchecked(l).label.clone());
        OverlayBuilder {
            tree,
            index,
            resolver: EntityResolver::new(leaf_labels),
            conflict_policy: ConflictPolicy::MostRecent,
        }
    }

    /// Replace the conflict policy (default: most recent).
    pub fn conflict_policy(mut self, policy: ConflictPolicy) -> Self {
        self.conflict_policy = policy;
        self
    }

    /// Register a protein-name synonym for entity resolution.
    pub fn synonym(mut self, alias: &str, canonical: &str) -> Self {
        self.resolver.add_synonym(alias, canonical);
        self
    }

    /// Run the integration: resolve, de-conflict, and materialize.
    pub fn build(
        self,
        proteins: &[ProteinRecord],
        ligands: &[LigandRecord],
        activities: &[ActivityRecord],
    ) -> Result<Overlay> {
        let mut catalog = Catalog::new();

        // Leaf assignment for proteins.
        let mut protein_table = Table::new(tables::PROTEIN, protein_schema());
        protein_table.create_index("accession", IndexKind::Hash)?;
        let mut leaf_of: FxHashMap<String, u32> = FxHashMap::default();
        for p in proteins {
            let resolution = self.resolver.resolve(&p.accession)?;
            let leaf = self.index.by_label(resolution.canonical())?;
            let rank = self.index.rank_of(leaf).ok_or_else(|| {
                IntegrateError::Overlay(format!(
                    "protein {} resolved to internal node {leaf}",
                    p.accession
                ))
            })?;
            leaf_of.insert(p.accession.clone(), rank);
            protein_table.insert(vec![
                Value::from(p.accession.clone()),
                Value::from(p.name.clone()),
                Value::from(p.organism.clone()),
                Value::from(rank),
            ])?;
        }

        // Ligands: unify structurally identical records across sources
        // (canonical-SMILES identity), then fingerprint.
        let (ligands, ligand_aliases, identity_report): (
            Vec<_>,
            FxHashMap<String, String>,
            LigandIdentityReport,
        ) = dedupe_ligands(ligands);
        let mut ligand_table = Table::new(tables::LIGAND, ligand_schema());
        ligand_table.create_index("ligand_id", IndexKind::Hash)?;
        ligand_table.create_index("mw", IndexKind::BTree)?;
        let mut fingerprints = FxHashMap::default();
        let mut molecules = FxHashMap::default();
        let mut ligands_unparsed = 0;
        for l in &ligands {
            match parse_smiles(&l.smiles) {
                Ok(mol) => {
                    fingerprints.insert(l.ligand_id.clone(), Fingerprint::of_molecule(&mol));
                    molecules.insert(l.ligand_id.clone(), mol);
                }
                Err(_) => ligands_unparsed += 1,
            }
            ligand_table.insert(vec![
                Value::from(l.ligand_id.clone()),
                Value::from(l.name.clone()),
                Value::from(l.smiles.clone()),
                Value::Float(l.molecular_weight),
                Value::from(l.hbd),
                Value::from(l.hba),
                Value::from(l.rings),
            ])?;
        }

        // Activities: resolve proteins, remap merged ligand ids,
        // de-conflict, attach by leaf rank.
        let mut resolved: Vec<ActivityRecord> = Vec::with_capacity(activities.len());
        let mut unresolved = 0;
        for a in activities {
            match self.resolver.resolve(&a.protein_accession) {
                Ok(resolution) => {
                    let mut rec = a.clone();
                    rec.protein_accession = resolution.canonical().to_string();
                    if let Some(canonical) = ligand_aliases.get(&rec.ligand_id) {
                        rec.ligand_id = canonical.clone();
                    }
                    resolved.push(rec);
                }
                Err(_) => unresolved += 1,
            }
        }
        let (deduped, conflicts) = resolve_conflicts(&resolved, &self.conflict_policy);

        let mut activity_table = Table::new(tables::ACTIVITY, activity_schema());
        activity_table.create_index("leaf_rank", IndexKind::BTree)?;
        activity_table.create_index("p_activity", IndexKind::BTree)?;
        activity_table.create_index("ligand_id", IndexKind::Hash)?;
        let mut overlaid = 0;
        for rec in &deduped {
            let leaf = self.index.by_label(&rec.protein_accession)?;
            let rank = self.index.rank_of(leaf).ok_or_else(|| {
                IntegrateError::Overlay(format!(
                    "activity target {} is not a leaf",
                    rec.protein_accession
                ))
            })?;
            activity_table.insert(vec![
                Value::from(rank),
                Value::from(rec.protein_accession.clone()),
                Value::from(rec.ligand_id.clone()),
                Value::from(rec.activity_type.label()),
                Value::Float(rec.value_nm),
                Value::Float(rec.p_activity()),
                Value::from(rec.source.clone()),
                Value::Int(rec.year as i64),
            ])?;
            overlaid += 1;
        }

        catalog.create_table(protein_table)?;
        catalog.create_table(ligand_table)?;
        catalog.create_table(activity_table)?;

        // Sanity: every activity leaf rank is inside the tree.
        debug_assert!(deduped.iter().all(|r| {
            self.index
                .by_label(&r.protein_accession)
                .ok()
                .and_then(|l| self.index.rank_of(l))
                .is_some()
        }));
        let _ = self.tree; // tree retained for future structural checks

        Ok(Overlay {
            catalog,
            fingerprints,
            molecules,
            report: OverlayReport {
                activities_overlaid: overlaid,
                activities_unresolved: unresolved,
                ligands: ligands.len(),
                ligands_unparsed,
                ligands_merged: identity_report.merged,
                conflicts,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_chem::ActivityType;
    use drugtree_phylo::newick::parse_newick;
    use drugtree_store::expr::Predicate;

    fn setup() -> (Tree, TreeIndex) {
        let tree = parse_newick("((P1:1,P2:1)cladeA:1,(P3:1,P4:1)cladeB:1)root;").unwrap();
        let index = TreeIndex::build(&tree);
        (tree, index)
    }

    fn proteins() -> Vec<ProteinRecord> {
        ["P1", "P2", "P3", "P4"]
            .iter()
            .map(|acc| ProteinRecord {
                accession: (*acc).into(),
                name: format!("protein {acc}"),
                organism: "synthetic".into(),
                sequence: "MKVLAT".into(),
                gene: None,
            })
            .collect()
    }

    fn ligands() -> Vec<LigandRecord> {
        vec![
            LigandRecord::from_smiles("L1", "aspirin", "CC(=O)Oc1ccccc1C(=O)O").unwrap(),
            LigandRecord::from_smiles("L2", "ethanol", "CCO").unwrap(),
        ]
    }

    fn activity(acc: &str, ligand: &str, value: f64, year: u16) -> ActivityRecord {
        ActivityRecord {
            protein_accession: acc.into(),
            ligand_id: ligand.into(),
            activity_type: ActivityType::Ki,
            value_nm: value,
            source: "sim".into(),
            year,
        }
    }

    #[test]
    fn full_build() {
        let (tree, index) = setup();
        let acts = vec![
            activity("P1", "L1", 10.0, 2012),
            activity("P2", "L1", 100.0, 2012),
            activity("P3", "L2", 50.0, 2012),
        ];
        let overlay = OverlayBuilder::new(&tree, &index)
            .build(&proteins(), &ligands(), &acts)
            .unwrap();

        let report = overlay.report();
        assert_eq!(report.activities_overlaid, 3);
        assert_eq!(report.activities_unresolved, 0);
        assert_eq!(report.ligands, 2);
        assert_eq!(report.ligands_unparsed, 0);

        let t = overlay.catalog().table(tables::ACTIVITY).unwrap();
        assert_eq!(t.len(), 3);
        // Leaf-rank keying: clade A = ranks 0..2.
        let in_clade_a = Predicate::between("leaf_rank", 0i64, 1i64)
            .bind(t.schema())
            .unwrap();
        assert_eq!(t.select(&in_clade_a).count(), 2);
        // Fingerprints cached.
        assert!(overlay.fingerprint("L1").is_some());
        assert!(overlay.fingerprint("L9").is_none());
        assert_eq!(overlay.fingerprints().count(), 2);
    }

    #[test]
    fn fuzzy_references_resolve() {
        let (tree, index) = setup();
        // "p1.2" normalizes to P1; "P9" cannot resolve.
        let acts = vec![
            activity("p1.2", "L1", 10.0, 2012),
            activity("ZZZZZ", "L1", 1.0, 2012),
        ];
        let overlay = OverlayBuilder::new(&tree, &index)
            .build(&proteins(), &ligands(), &acts)
            .unwrap();
        assert_eq!(overlay.report().activities_overlaid, 1);
        assert_eq!(overlay.report().activities_unresolved, 1);
    }

    #[test]
    fn synonyms_feed_resolution() {
        let (tree, index) = setup();
        let acts = vec![activity("alpha kinase", "L1", 10.0, 2012)];
        let overlay = OverlayBuilder::new(&tree, &index)
            .synonym("alpha kinase", "P1")
            .build(&proteins(), &ligands(), &acts)
            .unwrap();
        assert_eq!(overlay.report().activities_overlaid, 1);
        // Attached to P1's leaf rank (0).
        let t = overlay.catalog().table(tables::ACTIVITY).unwrap();
        let (_, row) = t.scan().next().unwrap();
        assert_eq!(row[0], Value::Int(0));
        assert_eq!(row[1], Value::from("P1"));
    }

    #[test]
    fn conflicts_are_resolved_before_overlay() {
        let (tree, index) = setup();
        let acts = vec![
            activity("P1", "L1", 10.0, 2010),
            activity("P1", "L1", 20.0, 2013),
        ];
        let overlay = OverlayBuilder::new(&tree, &index)
            .conflict_policy(ConflictPolicy::MostRecent)
            .build(&proteins(), &ligands(), &acts)
            .unwrap();
        assert_eq!(overlay.report().activities_overlaid, 1);
        assert_eq!(overlay.report().conflicts.conflicting_groups, 1);
        let t = overlay.catalog().table(tables::ACTIVITY).unwrap();
        let (_, row) = t.scan().next().unwrap();
        assert_eq!(row[4], Value::Float(20.0));
    }

    #[test]
    fn p_activity_column_precomputed() {
        let (tree, index) = setup();
        let acts = vec![activity("P1", "L1", 1000.0, 2012)];
        let overlay = OverlayBuilder::new(&tree, &index)
            .build(&proteins(), &ligands(), &acts)
            .unwrap();
        let t = overlay.catalog().table(tables::ACTIVITY).unwrap();
        let (_, row) = t.scan().next().unwrap();
        let p = row[5].as_f64().unwrap();
        assert!((p - 6.0).abs() < 1e-9, "1 µM -> pActivity 6, got {p}");
    }

    #[test]
    fn unparseable_smiles_counted_but_kept() {
        let (tree, index) = setup();
        let mut ls = ligands();
        ls.push(LigandRecord {
            ligand_id: "L3".into(),
            name: "broken".into(),
            smiles: "C(((".into(),
            molecular_weight: 100.0,
            hbd: 0,
            hba: 0,
            rings: 0,
        });
        let overlay = OverlayBuilder::new(&tree, &index)
            .build(&proteins(), &ls, &[])
            .unwrap();
        assert_eq!(overlay.report().ligands, 3);
        assert_eq!(overlay.report().ligands_unparsed, 1);
        assert!(overlay.fingerprint("L3").is_none());
        assert_eq!(overlay.catalog().table(tables::LIGAND).unwrap().len(), 3);
    }

    #[test]
    fn duplicate_structures_unify_across_sources() {
        let (tree, index) = setup();
        // The same compound under two ids from two databases; activity
        // records reference both.
        let ligands = vec![
            LigandRecord::from_smiles("CHEMBL25", "aspirin", "CC(=O)Oc1ccccc1C(=O)O").unwrap(),
            LigandRecord::from_smiles("DB00945", "aspirin again", "OC(=O)c1ccccc1OC(C)=O").unwrap(),
        ];
        let acts = vec![
            activity("P1", "CHEMBL25", 10.0, 2012),
            activity("P2", "DB00945", 50.0, 2012),
        ];
        let overlay = OverlayBuilder::new(&tree, &index)
            .build(&proteins(), &ligands, &acts)
            .unwrap();
        assert_eq!(overlay.report().ligands_merged, 1);
        assert_eq!(overlay.report().ligands, 1, "one compound survives");
        // Both activities now reference the surviving id.
        let t = overlay.catalog().table(tables::ACTIVITY).unwrap();
        let ids: Vec<String> = t
            .scan()
            .map(|(_, r)| r[2].as_text().unwrap().to_string())
            .collect();
        assert_eq!(ids, vec!["CHEMBL25", "CHEMBL25"]);
        assert!(overlay.fingerprint("CHEMBL25").is_some());
        assert!(overlay.fingerprint("DB00945").is_none());
    }

    #[test]
    fn unknown_protein_record_fails_build() {
        let (tree, index) = setup();
        let mut ps = proteins();
        ps.push(ProteinRecord {
            accession: "QQQQQ".into(),
            name: "mystery".into(),
            organism: "none".into(),
            sequence: "MK".into(),
            gene: None,
        });
        // Protein records are authoritative; an unresolvable one is an
        // error, unlike activity references which are skipped.
        assert!(OverlayBuilder::new(&tree, &index)
            .build(&ps, &[], &[])
            .is_err());
    }
}
