//! Conflict resolution for duplicate measurements.
//!
//! Two sources frequently report the same (protein, ligand, assay-type)
//! measurement with different values. The mediator must pick (or
//! combine) one before overlaying, or the tree shows contradictory
//! potencies.

use drugtree_chem::affinity::ActivityRecord;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// How to collapse a conflicting group to one record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// Prefer the earliest-listed source; recency breaks ties.
    SourcePriority(Vec<String>),
    /// Always take the most recent measurement.
    MostRecent,
    /// Keep the group's median value (synthesizing provenance from the
    /// median record).
    Median,
}

/// The identity under which measurements conflict.
fn conflict_key(r: &ActivityRecord) -> (String, String, drugtree_chem::ActivityType) {
    (
        r.protein_accession.clone(),
        r.ligand_id.clone(),
        r.activity_type,
    )
}

/// Statistics from one resolution pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConflictReport {
    /// Input records.
    pub input: usize,
    /// Output records (one per distinct measurement identity).
    pub output: usize,
    /// Groups that actually contained more than one record.
    pub conflicting_groups: usize,
}

/// Collapse duplicates according to the policy. Output order is
/// deterministic (sorted by conflict key).
pub fn resolve_conflicts(
    records: &[ActivityRecord],
    policy: &ConflictPolicy,
) -> (Vec<ActivityRecord>, ConflictReport) {
    let mut groups: FxHashMap<_, Vec<&ActivityRecord>> = FxHashMap::default();
    for r in records {
        groups.entry(conflict_key(r)).or_default().push(r);
    }

    let mut keys: Vec<_> = groups.keys().cloned().collect();
    keys.sort();

    let mut out = Vec::with_capacity(keys.len());
    let mut conflicting = 0;
    for key in keys {
        let group = &groups[&key];
        if group.len() > 1 {
            conflicting += 1;
        }
        out.extend(pick(group, policy));
    }
    let report = ConflictReport {
        input: records.len(),
        output: out.len(),
        conflicting_groups: conflicting,
    };
    (out, report)
}

/// The winning record of one conflict group; `None` only for an empty
/// group, which the grouping step never produces.
fn pick(group: &[&ActivityRecord], policy: &ConflictPolicy) -> Option<ActivityRecord> {
    match policy {
        ConflictPolicy::SourcePriority(order) => {
            let rank = |r: &ActivityRecord| {
                order
                    .iter()
                    .position(|s| s == &r.source)
                    .unwrap_or(order.len())
            };
            group
                .iter()
                .min_by(|a, b| {
                    rank(a)
                        .cmp(&rank(b))
                        .then(b.year.cmp(&a.year))
                        .then(a.value_nm.total_cmp(&b.value_nm))
                })
                .map(|r| (*r).clone())
        }
        ConflictPolicy::MostRecent => group
            .iter()
            .max_by(|a, b| a.year.cmp(&b.year).then(b.value_nm.total_cmp(&a.value_nm)))
            .map(|r| (*r).clone()),
        ConflictPolicy::Median => {
            let mut sorted: Vec<&ActivityRecord> = group.to_vec();
            sorted.sort_by(|a, b| a.value_nm.total_cmp(&b.value_nm));
            sorted.get(sorted.len() / 2).map(|r| (*r).clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_chem::ActivityType;

    fn rec(ligand: &str, value: f64, source: &str, year: u16) -> ActivityRecord {
        ActivityRecord {
            protein_accession: "P1".into(),
            ligand_id: ligand.into(),
            activity_type: ActivityType::Ki,
            value_nm: value,
            source: source.into(),
            year,
        }
    }

    #[test]
    fn no_conflicts_pass_through() {
        let records = vec![rec("L1", 10.0, "a", 2010), rec("L2", 20.0, "a", 2011)];
        let (out, report) = resolve_conflicts(&records, &ConflictPolicy::MostRecent);
        assert_eq!(out.len(), 2);
        assert_eq!(report.conflicting_groups, 0);
        assert_eq!(report.input, 2);
        assert_eq!(report.output, 2);
    }

    #[test]
    fn source_priority_wins() {
        let records = vec![
            rec("L1", 10.0, "bindingdb", 2012),
            rec("L1", 99.0, "curated", 2005),
        ];
        let policy = ConflictPolicy::SourcePriority(vec!["curated".into(), "bindingdb".into()]);
        let (out, report) = resolve_conflicts(&records, &policy);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].source, "curated");
        assert_eq!(report.conflicting_groups, 1);
    }

    #[test]
    fn unknown_sources_rank_last() {
        let records = vec![
            rec("L1", 10.0, "mystery", 2012),
            rec("L1", 20.0, "curated", 2005),
        ];
        let policy = ConflictPolicy::SourcePriority(vec!["curated".into()]);
        let (out, _) = resolve_conflicts(&records, &policy);
        assert_eq!(out[0].source, "curated");
    }

    #[test]
    fn priority_ties_break_by_recency() {
        let records = vec![
            rec("L1", 10.0, "curated", 2008),
            rec("L1", 20.0, "curated", 2012),
        ];
        let policy = ConflictPolicy::SourcePriority(vec!["curated".into()]);
        let (out, _) = resolve_conflicts(&records, &policy);
        assert_eq!(out[0].year, 2012);
    }

    #[test]
    fn most_recent() {
        let records = vec![
            rec("L1", 10.0, "a", 2010),
            rec("L1", 20.0, "b", 2013),
            rec("L1", 30.0, "c", 2011),
        ];
        let (out, _) = resolve_conflicts(&records, &ConflictPolicy::MostRecent);
        assert_eq!(out[0].year, 2013);
    }

    #[test]
    fn median_of_group() {
        let records = vec![
            rec("L1", 100.0, "a", 2010),
            rec("L1", 10.0, "b", 2011),
            rec("L1", 50.0, "c", 2012),
        ];
        let (out, _) = resolve_conflicts(&records, &ConflictPolicy::Median);
        assert_eq!(out[0].value_nm, 50.0);
        // Even group: upper median.
        let records = vec![rec("L1", 10.0, "a", 2010), rec("L1", 30.0, "b", 2011)];
        let (out, _) = resolve_conflicts(&records, &ConflictPolicy::Median);
        assert_eq!(out[0].value_nm, 30.0);
    }

    #[test]
    fn different_assay_types_do_not_conflict() {
        let mut r2 = rec("L1", 20.0, "b", 2011);
        r2.activity_type = ActivityType::Ic50;
        let records = vec![rec("L1", 10.0, "a", 2010), r2];
        let (out, report) = resolve_conflicts(&records, &ConflictPolicy::MostRecent);
        assert_eq!(out.len(), 2);
        assert_eq!(report.conflicting_groups, 0);
    }

    #[test]
    fn deterministic_output_order() {
        let records = vec![
            rec("L2", 1.0, "a", 2010),
            rec("L1", 2.0, "a", 2010),
            rec("L3", 3.0, "a", 2010),
        ];
        let (out, _) = resolve_conflicts(&records, &ConflictPolicy::MostRecent);
        let ids: Vec<&str> = out.iter().map(|r| r.ligand_id.as_str()).collect();
        assert_eq!(ids, ["L1", "L2", "L3"]);
    }
}
