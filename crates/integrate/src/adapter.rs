//! The source adapter: present a legacy-schema source under the
//! unified schema.
//!
//! Real federations are messy: one assay database calls the protein
//! column `acc`, reports Ki in micromolar, and spells its compound ids
//! lowercase. [`MappedSource`] wraps any [`DataSource`] with a
//! [`SchemaMapping`] and presents the *target* schema to the rest of
//! the system — the classic wrapper of a wrapper/mediator
//! architecture. Rows are mapped on the way out; pushdown predicates
//! are translated back into source columns when the mapping permits
//! (identity and positive scaling), and evaluated wrapper-side
//! otherwise, so the adapter never weakens correctness.

use crate::mapping::{SchemaMapping, Transform};
use crate::Result as IntegrateResult;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::source::{
    DataSource, FetchRequest, FetchResponse, MetricsSnapshot, SourceCapabilities, SourceKind,
};
use drugtree_sources::{Result, SourceError};
use drugtree_store::expr::Predicate;
use drugtree_store::schema::Schema;
use drugtree_store::value::Value;
use std::sync::Arc;

/// A source presented under a mapped (unified) schema.
pub struct MappedSource {
    inner: Arc<dyn DataSource>,
    mapping: SchemaMapping,
    target_schema: Schema,
    target_key: String,
}

impl MappedSource {
    /// Wrap `inner`. The mapping must cover the target key column with
    /// an `Identity` transform from the inner source's key column (key
    /// values must be forwardable verbatim for batched lookups).
    pub fn new(
        inner: Arc<dyn DataSource>,
        mapping: SchemaMapping,
        target_schema: Schema,
        target_key: impl Into<String>,
    ) -> IntegrateResult<MappedSource> {
        let target_key = target_key.into();
        target_schema
            .column_index(&target_key)
            .map_err(|e| crate::IntegrateError::Mapping(e.to_string()))?;
        let key_field = mapping
            .fields()
            .iter()
            .find(|f| f.target_column == target_key)
            .ok_or_else(|| {
                crate::IntegrateError::Mapping(format!(
                    "mapping does not produce key column {target_key:?}"
                ))
            })?;
        if key_field.transform != Transform::Identity {
            return Err(crate::IntegrateError::Mapping(format!(
                "key column {target_key:?} must map by identity, got {:?}",
                key_field.transform
            )));
        }
        if key_field.source_column != inner.key_column() {
            return Err(crate::IntegrateError::Mapping(format!(
                "key column {target_key:?} must map from the source key {:?}, got {:?}",
                inner.key_column(),
                key_field.source_column
            )));
        }
        Ok(MappedSource {
            inner,
            mapping,
            target_schema,
            target_key,
        })
    }

    /// Translate a target-schema predicate into the source schema, when
    /// every referenced column maps by identity or positive scale.
    fn translate(&self, pred: &Predicate) -> Option<Predicate> {
        let field = |target: &str| {
            self.mapping
                .fields()
                .iter()
                .find(|f| f.target_column == target)
        };
        let literal = |target: &str, v: &Value| -> Option<Value> {
            match &field(target)?.transform {
                Transform::Identity => Some(v.clone()),
                Transform::Scale(k) if *k > 0.0 => {
                    // target = source * k  =>  source bound = target / k.
                    Some(Value::Float(v.as_f64()? / k))
                }
                _ => None,
            }
        };
        let column = |target: &str| Some(field(target)?.source_column.clone());
        Some(match pred {
            Predicate::True => Predicate::True,
            Predicate::Compare {
                column: c,
                op,
                value,
            } => Predicate::Compare {
                column: column(c)?,
                op: *op,
                value: literal(c, value)?,
            },
            Predicate::Between { column: c, lo, hi } => Predicate::Between {
                column: column(c)?,
                lo: literal(c, lo)?,
                hi: literal(c, hi)?,
            },
            Predicate::InSet { column: c, values } => Predicate::InSet {
                column: column(c)?,
                values: values
                    .iter()
                    .map(|v| literal(c, v))
                    .collect::<Option<_>>()?,
            },
            Predicate::IsNull { column: c } => Predicate::IsNull { column: column(c)? },
            Predicate::And(ps) => Predicate::And(
                ps.iter()
                    .map(|p| self.translate(p))
                    .collect::<Option<_>>()?,
            ),
            Predicate::Or(ps) => Predicate::Or(
                ps.iter()
                    .map(|p| self.translate(p))
                    .collect::<Option<_>>()?,
            ),
            Predicate::Not(p) => Predicate::Not(Box::new(self.translate(p)?)),
        })
    }
}

impl DataSource for MappedSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }

    fn schema(&self) -> &Schema {
        &self.target_schema
    }

    fn key_column(&self) -> &str {
        &self.target_key
    }

    fn capabilities(&self) -> SourceCapabilities {
        self.inner.capabilities()
    }

    fn fetch(&self, request: &FetchRequest) -> Result<FetchResponse> {
        // Push the predicate down only when it translates into the
        // source schema; otherwise fetch unfiltered and apply it to
        // the mapped rows wrapper-side.
        let translated = request.predicate.as_ref().map(|p| self.translate(p));
        let mut inner_req = FetchRequest {
            keys: request.keys.clone(),
            predicate: None,
            // Projections reference target columns; the wrapper always
            // needs the full source row to map, so projection is
            // applied after mapping.
            projection: None,
        };
        if let Some(Some(p)) = &translated {
            if self.inner.capabilities().supports_predicate(p) {
                inner_req.predicate = Some(p.clone());
            }
        }
        let pushed = inner_req.predicate.is_some();
        let resp = self.inner.fetch(&inner_req)?;

        let mut rows = Vec::with_capacity(resp.rows.len());
        for raw in &resp.rows {
            let mapped = self
                .mapping
                .map_row(self.inner.schema(), &resp.columns, raw, &self.target_schema)
                .map_err(|e| SourceError::Adapter(e.to_string()))?;
            rows.push(mapped);
        }

        // Wrapper-side residual when the pushdown did not happen.
        if !pushed {
            if let Some(pred) = &request.predicate {
                let bound = pred.bind(&self.target_schema).map_err(SourceError::Store)?;
                rows.retain(|r| bound.matches(r));
            }
        }

        // Apply the requested projection over the target schema.
        let columns: Vec<String> = match &request.projection {
            Some(cols) => cols.clone(),
            None => self
                .target_schema
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        };
        if request.projection.is_some() {
            let idx: Vec<usize> = columns
                .iter()
                .map(|c| self.target_schema.column_index(c))
                .collect::<std::result::Result<_, _>>()
                .map_err(SourceError::Store)?;
            rows = rows
                .into_iter()
                .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                .collect();
        }

        Ok(FetchResponse {
            columns,
            rows,
            rows_scanned: resp.rows_scanned,
            cost: resp.cost,
        })
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics()
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }

    fn latency_model(&self) -> LatencyModel {
        self.inner.latency_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::FieldMapping;
    use drugtree_sources::source::SimulatedSource;
    use drugtree_store::expr::CompareOp;
    use drugtree_store::schema::Column;
    use drugtree_store::table::Table;
    use drugtree_store::value::ValueType;

    /// A legacy assay source: `acc` / `compound` / `ki_um` (micromolar).
    fn legacy_source() -> Arc<dyn DataSource> {
        let schema = Schema::new(vec![
            Column::required("acc", ValueType::Text),
            Column::required("compound", ValueType::Text),
            Column::required("ki_um", ValueType::Float),
        ]);
        let mut t = Table::new("legacy", schema);
        for (acc, compound, ki_um) in [("P1", "l1", 0.01), ("P1", "l2", 2.0), ("P2", "l1", 0.1)] {
            t.insert(vec![
                Value::from(acc),
                Value::from(compound),
                Value::Float(ki_um),
            ])
            .unwrap();
        }
        Arc::new(
            SimulatedSource::new(
                "legacy-lab",
                SourceKind::Assay,
                t,
                "acc",
                SourceCapabilities::full(),
                LatencyModel::free(),
            )
            .unwrap(),
        )
    }

    fn target_schema() -> Schema {
        Schema::new(vec![
            Column::required("protein_accession", ValueType::Text),
            Column::required("ligand_id", ValueType::Text),
            Column::required("value_nm", ValueType::Float),
        ])
    }

    fn mapping() -> SchemaMapping {
        SchemaMapping::new(vec![
            FieldMapping {
                source_column: "acc".into(),
                target_column: "protein_accession".into(),
                transform: Transform::Identity,
            },
            FieldMapping {
                source_column: "compound".into(),
                target_column: "ligand_id".into(),
                transform: Transform::Uppercase,
            },
            FieldMapping {
                source_column: "ki_um".into(),
                target_column: "value_nm".into(),
                transform: Transform::Scale(1000.0), // µM -> nM
            },
        ])
    }

    fn adapter() -> MappedSource {
        MappedSource::new(
            legacy_source(),
            mapping(),
            target_schema(),
            "protein_accession",
        )
        .unwrap()
    }

    #[test]
    fn rows_arrive_in_target_schema() {
        let a = adapter();
        let resp = a
            .fetch(&FetchRequest::lookup(vec![Value::from("P1")]))
            .unwrap();
        assert_eq!(
            resp.columns,
            vec!["protein_accession", "ligand_id", "value_nm"]
        );
        assert_eq!(resp.rows.len(), 2);
        // Units converted, ids uppercased.
        assert!(resp
            .rows
            .iter()
            .any(|r| r[1] == Value::from("L1") && r[2] == Value::Float(10.0)));
        assert!(resp.rows.iter().any(|r| r[2] == Value::Float(2000.0)));
    }

    #[test]
    fn scaled_predicate_pushes_down() {
        let a = adapter();
        // value_nm <= 100 translates to ki_um <= 0.1, evaluated at the
        // source: only 2 rows ship.
        let req =
            FetchRequest::scan().with_predicate(Predicate::cmp("value_nm", CompareOp::Le, 100.0));
        let resp = a.fetch(&req).unwrap();
        assert_eq!(resp.rows.len(), 2);
        assert!(resp.rows.iter().all(|r| r[2].as_f64().unwrap() <= 100.0));
    }

    #[test]
    fn untranslatable_predicate_filters_wrapper_side() {
        let a = adapter();
        // ligand_id maps through Uppercase: not invertible, so the
        // wrapper fetches everything and filters the mapped rows.
        let req = FetchRequest::scan().with_predicate(Predicate::eq("ligand_id", "L1"));
        let resp = a.fetch(&req).unwrap();
        assert_eq!(resp.rows.len(), 2);
        assert!(resp.rows.iter().all(|r| r[1] == Value::from("L1")));
        // All three source rows were shipped (no pushdown).
        assert_eq!(resp.rows_scanned, 3);
    }

    #[test]
    fn projection_applies_to_target_columns() {
        let a = adapter();
        let resp = a
            .fetch(&FetchRequest::scan().with_projection(vec!["value_nm".into()]))
            .unwrap();
        assert_eq!(resp.columns, vec!["value_nm"]);
        assert!(resp.rows.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn key_mapping_validated() {
        // Key must be identity-mapped from the inner key column.
        let bad = SchemaMapping::new(vec![FieldMapping {
            source_column: "acc".into(),
            target_column: "protein_accession".into(),
            transform: Transform::Uppercase,
        }]);
        assert!(
            MappedSource::new(legacy_source(), bad, target_schema(), "protein_accession").is_err()
        );

        let wrong_source = SchemaMapping::new(vec![FieldMapping {
            source_column: "compound".into(),
            target_column: "protein_accession".into(),
            transform: Transform::Identity,
        }]);
        assert!(MappedSource::new(
            legacy_source(),
            wrong_source,
            target_schema(),
            "protein_accession"
        )
        .is_err());
    }

    #[test]
    fn between_translates_with_scale() {
        let a = adapter();
        let req = FetchRequest::scan().with_predicate(Predicate::between("value_nm", 50.0, 5000.0));
        let resp = a.fetch(&req).unwrap();
        assert_eq!(resp.rows.len(), 2); // 100 nM and 2000 nM qualify
    }
}
