//! Entity resolution: matching protein references across sources.
//!
//! Source A keys assays by `sp|P00533|EGFR_HUMAN`, source B labels tree
//! leaves `P00533.2`, and a curator's spreadsheet says `EGFR human`.
//! Resolution proceeds in three stages, cheapest first:
//!
//! 1. **Normalization** — strip database prefixes/version suffixes,
//!    case-fold.
//! 2. **Synonym table** — curated alias → canonical mappings.
//! 3. **Fuzzy match** — Jaro–Winkler over the candidate set, accepted
//!    above a configurable threshold.

use crate::{IntegrateError, Result};
use rustc_hash::FxHashMap;

/// Normalize an accession-like reference: strip `db|…|name` framing,
/// version suffixes (`P00533.2` → `P00533`), and whitespace; uppercase.
pub fn normalize_accession(raw: &str) -> String {
    let raw = raw.trim();
    // "sp|P00533|EGFR_HUMAN" -> middle field.
    let core = if raw.contains('|') {
        raw.split('|')
            .nth(1)
            .filter(|s| !s.is_empty())
            .unwrap_or(raw)
    } else {
        raw
    };
    // Version suffix: a trailing ".<digits>".
    let core = match core.rsplit_once('.') {
        Some((head, tail)) if !head.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) => head,
        _ => core,
    };
    core.to_ascii_uppercase()
}

/// Levenshtein edit distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter(|(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted for common prefixes.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// How a reference was resolved (for provenance/explain output).
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// Exact match after normalization.
    Exact(String),
    /// Matched via the synonym table.
    Synonym(String),
    /// Fuzzy match with the achieved similarity.
    Fuzzy {
        /// The canonical id matched.
        canonical: String,
        /// Jaro–Winkler similarity achieved.
        similarity: f64,
    },
}

impl Resolution {
    /// The canonical identifier the reference resolved to.
    pub fn canonical(&self) -> &str {
        match self {
            Resolution::Exact(c) | Resolution::Synonym(c) => c,
            Resolution::Fuzzy { canonical, .. } => canonical,
        }
    }
}

/// Resolves free-form protein references against a canonical id set.
#[derive(Debug, Clone)]
pub struct EntityResolver {
    /// Canonical ids, normalized -> original form.
    canonical: FxHashMap<String, String>,
    /// Alias (normalized) -> canonical id.
    synonyms: FxHashMap<String, String>,
    /// Minimum Jaro–Winkler similarity for a fuzzy accept.
    fuzzy_threshold: f64,
}

impl EntityResolver {
    /// Build a resolver over the canonical id universe.
    pub fn new(canonical_ids: impl IntoIterator<Item = String>) -> EntityResolver {
        let canonical = canonical_ids
            .into_iter()
            .map(|id| (normalize_accession(&id), id))
            .collect();
        EntityResolver {
            canonical,
            synonyms: FxHashMap::default(),
            fuzzy_threshold: 0.90,
        }
    }

    /// Register an alias for a canonical id.
    pub fn add_synonym(&mut self, alias: &str, canonical: &str) {
        self.synonyms
            .insert(normalize_accession(alias), canonical.to_string());
    }

    /// Adjust the fuzzy acceptance threshold (default 0.90).
    pub fn set_fuzzy_threshold(&mut self, threshold: f64) {
        self.fuzzy_threshold = threshold.clamp(0.0, 1.0);
    }

    /// Resolve a reference, trying exact, synonym, then fuzzy.
    pub fn resolve(&self, reference: &str) -> Result<Resolution> {
        let norm = normalize_accession(reference);
        if let Some(orig) = self.canonical.get(&norm) {
            return Ok(Resolution::Exact(orig.clone()));
        }
        if let Some(canon) = self.synonyms.get(&norm) {
            return Ok(Resolution::Synonym(canon.clone()));
        }
        let mut best: Option<(&String, f64)> = None;
        for (cand_norm, cand_orig) in &self.canonical {
            let sim = jaro_winkler(&norm, cand_norm);
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((cand_orig, sim));
            }
        }
        match best {
            Some((orig, sim)) if sim >= self.fuzzy_threshold => Ok(Resolution::Fuzzy {
                canonical: orig.clone(),
                similarity: sim,
            }),
            best => Err(IntegrateError::Unresolved {
                reference: reference.to_string(),
                best_candidate: best.map(|(orig, _)| orig.clone()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalize_accession("sp|P00533|EGFR_HUMAN"), "P00533");
        assert_eq!(normalize_accession("P00533.2"), "P00533");
        assert_eq!(normalize_accession("  p00533 "), "P00533");
        assert_eq!(normalize_accession("tr|Q12345|X.3"), "Q12345");
        // A dot followed by non-digits is part of the id.
        assert_eq!(normalize_accession("NAME.X"), "NAME.X");
        assert_eq!(normalize_accession("plain"), "PLAIN");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "acb"), 2);
    }

    #[test]
    fn jaro_winkler_basics() {
        assert_eq!(jaro_winkler("x", "x"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        // Known value: MARTHA/MARHTA ≈ 0.9611 under Jaro-Winkler.
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!((jw - 0.9611).abs() < 0.001, "got {jw}");
        // Similar strings beat dissimilar ones.
        assert!(jaro_winkler("KINASE1", "KINASE2") > jaro_winkler("KINASE1", "PHOSPHATASE"));
    }

    #[test]
    fn exact_resolution_after_normalization() {
        let r = EntityResolver::new(vec!["P00533".into(), "Q12345".into()]);
        let res = r.resolve("sp|P00533|EGFR_HUMAN").unwrap();
        assert_eq!(res, Resolution::Exact("P00533".into()));
        assert_eq!(res.canonical(), "P00533");
        assert_eq!(r.resolve("q12345.9").unwrap().canonical(), "Q12345");
    }

    #[test]
    fn synonym_resolution() {
        let mut r = EntityResolver::new(vec!["P00533".into()]);
        r.add_synonym("EGFR human", "P00533");
        let res = r.resolve("egfr HUMAN").unwrap();
        assert_eq!(res, Resolution::Synonym("P00533".into()));
    }

    #[test]
    fn fuzzy_resolution_with_threshold() {
        let mut r = EntityResolver::new(vec!["KINASE_ALPHA".into(), "PHOSPHATASE_B".into()]);
        // One-character typo: accepted at default threshold.
        let res = r.resolve("KINASE_ALPHS").unwrap();
        match res {
            Resolution::Fuzzy {
                canonical,
                similarity,
            } => {
                assert_eq!(canonical, "KINASE_ALPHA");
                assert!(similarity >= 0.9);
            }
            other => panic!("expected fuzzy, got {other:?}"),
        }
        // Garbage: rejected, with the best candidate reported.
        let err = r.resolve("ZZZZZZ").unwrap_err();
        assert!(matches!(err, IntegrateError::Unresolved { .. }));
        // Tighten the threshold and the typo fails too.
        r.set_fuzzy_threshold(0.999);
        assert!(r.resolve("KINASE_ALPHS").is_err());
    }

    #[test]
    fn empty_universe_reports_no_candidates() {
        let r = EntityResolver::new(Vec::new());
        match r.resolve("X").unwrap_err() {
            IntegrateError::Unresolved { best_candidate, .. } => {
                assert_eq!(best_candidate, None);
            }
            other => panic!("{other:?}"),
        }
    }
}
