//! Cross-source ligand identity: unify records that are the *same
//! compound* under different identifiers.
//!
//! ChEMBL calls aspirin `CHEMBL25`, DrugBank calls it `DB00945`, and a
//! lab spreadsheet writes its SMILES backwards. Without unification the
//! overlay shows three "different" ligands with one-third of the
//! evidence each. Canonical SMILES ([`drugtree_chem::canonical`])
//! gives a structure-level identity: records whose canonical forms
//! match collapse into one, and an alias map rewrites activity
//! references onto the surviving id.

use drugtree_chem::canonical::canonical_smiles;
use drugtree_chem::smiles::parse_smiles;
use drugtree_sources::ligand_db::LigandRecord;
use rustc_hash::FxHashMap;

/// Result of a ligand-identity pass.
#[derive(Debug, Clone, Default)]
pub struct LigandIdentityReport {
    /// Input records.
    pub input: usize,
    /// Distinct compounds after unification.
    pub output: usize,
    /// Ids merged away (alias → canonical id entries).
    pub merged: usize,
    /// Records whose SMILES did not parse (kept as-is, never merged).
    pub unparsed: usize,
}

/// Collapse structurally identical ligand records.
///
/// The first record of each structure (in input order) survives;
/// later ids map to it in the returned alias table. Unparseable
/// structures are passed through untouched.
pub fn dedupe_ligands(
    records: &[LigandRecord],
) -> (
    Vec<LigandRecord>,
    FxHashMap<String, String>,
    LigandIdentityReport,
) {
    let mut survivors: Vec<LigandRecord> = Vec::with_capacity(records.len());
    let mut by_structure: FxHashMap<String, String> = FxHashMap::default();
    let mut aliases: FxHashMap<String, String> = FxHashMap::default();
    let mut report = LigandIdentityReport {
        input: records.len(),
        ..Default::default()
    };

    for record in records {
        match parse_smiles(&record.smiles) {
            Ok(mol) => {
                let canon = canonical_smiles(&mol);
                match by_structure.get(&canon) {
                    Some(canonical_id) => {
                        aliases.insert(record.ligand_id.clone(), canonical_id.clone());
                        report.merged += 1;
                    }
                    None => {
                        by_structure.insert(canon, record.ligand_id.clone());
                        survivors.push(record.clone());
                    }
                }
            }
            Err(_) => {
                report.unparsed += 1;
                survivors.push(record.clone());
            }
        }
    }
    report.output = survivors.len();
    (survivors, aliases, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, smiles: &str) -> LigandRecord {
        LigandRecord::from_smiles(id, format!("name-{id}"), smiles).unwrap()
    }

    #[test]
    fn identical_structures_merge() {
        // Aspirin three ways: as written, from the ring, and reversed.
        let records = vec![
            record("CHEMBL25", "CC(=O)Oc1ccccc1C(=O)O"),
            record("DB00945", "OC(=O)c1ccccc1OC(C)=O"),
            record("LAB-7", "O=C(O)c1ccccc1OC(=O)C"),
            record("OTHER", "CCO"),
        ];
        let (survivors, aliases, report) = dedupe_ligands(&records);
        assert_eq!(report.input, 4);
        assert_eq!(report.output, 2);
        assert_eq!(report.merged, 2);
        assert_eq!(survivors[0].ligand_id, "CHEMBL25");
        assert_eq!(aliases["DB00945"], "CHEMBL25");
        assert_eq!(aliases["LAB-7"], "CHEMBL25");
        assert!(!aliases.contains_key("OTHER"));
    }

    #[test]
    fn distinct_structures_survive() {
        let records = vec![record("A", "CCO"), record("B", "CCN"), record("C", "COC")];
        let (survivors, aliases, report) = dedupe_ligands(&records);
        assert_eq!(survivors.len(), 3);
        assert!(aliases.is_empty());
        assert_eq!(report.merged, 0);
    }

    #[test]
    fn unparseable_records_pass_through() {
        let mut broken = record("X", "CCO");
        broken.smiles = "C(((".into();
        let records = vec![broken.clone(), broken];
        let (survivors, aliases, report) = dedupe_ligands(&records);
        // Both kept: without a structure there is no identity evidence.
        assert_eq!(survivors.len(), 2);
        assert!(aliases.is_empty());
        assert_eq!(report.unparsed, 2);
    }

    #[test]
    fn first_id_wins_deterministically() {
        let records = vec![record("Z-LATE", "CCO"), record("A-EARLY", "OCC")];
        let (survivors, aliases, _) = dedupe_ligands(&records);
        assert_eq!(
            survivors[0].ligand_id, "Z-LATE",
            "input order, not lexicographic"
        );
        assert_eq!(aliases["A-EARLY"], "Z-LATE");
    }
}
