//! Error type for the integration layer.

use std::fmt;

/// Errors from entity resolution, mapping, or overlay construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrateError {
    /// No acceptable match for an entity reference.
    Unresolved {
        /// The unresolvable reference.
        reference: String,
        /// The nearest rejected candidate, if any.
        best_candidate: Option<String>,
    },
    /// A schema mapping referenced a missing column.
    Mapping(String),
    /// Underlying store failure.
    Store(String),
    /// Underlying source failure.
    Source(String),
    /// Tree/overlay inconsistency.
    Overlay(String),
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::Unresolved {
                reference,
                best_candidate,
            } => match best_candidate {
                Some(c) => write!(
                    f,
                    "could not resolve {reference:?} (closest candidate: {c:?})"
                ),
                None => write!(f, "could not resolve {reference:?} (no candidates)"),
            },
            IntegrateError::Mapping(msg) => write!(f, "schema mapping error: {msg}"),
            IntegrateError::Store(msg) => write!(f, "store error: {msg}"),
            IntegrateError::Source(msg) => write!(f, "source error: {msg}"),
            IntegrateError::Overlay(msg) => write!(f, "overlay error: {msg}"),
        }
    }
}

impl std::error::Error for IntegrateError {}

impl From<drugtree_store::StoreError> for IntegrateError {
    fn from(e: drugtree_store::StoreError) -> Self {
        IntegrateError::Store(e.to_string())
    }
}

impl From<drugtree_sources::SourceError> for IntegrateError {
    fn from(e: drugtree_sources::SourceError) -> Self {
        IntegrateError::Source(e.to_string())
    }
}

impl From<drugtree_phylo::PhyloError> for IntegrateError {
    fn from(e: drugtree_phylo::PhyloError) -> Self {
        IntegrateError::Overlay(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = IntegrateError::Unresolved {
            reference: "kinaze A".into(),
            best_candidate: Some("kinase A".into()),
        };
        assert!(e.to_string().contains("kinase A"));
        let e = IntegrateError::Unresolved {
            reference: "x".into(),
            best_candidate: None,
        };
        assert!(e.to_string().contains("no candidates"));
    }
}
