//! Error type for the integration layer.

use std::fmt;

/// Errors from entity resolution, mapping, or overlay construction.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a
/// wildcard arm so new failure kinds can be added without a breaking
/// release. Wrapped lower-layer errors are reachable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IntegrateError {
    /// No acceptable match for an entity reference.
    Unresolved {
        /// The unresolvable reference.
        reference: String,
        /// The nearest rejected candidate, if any.
        best_candidate: Option<String>,
    },
    /// A schema mapping referenced a missing column.
    Mapping(String),
    /// Underlying store failure.
    Store(drugtree_store::StoreError),
    /// Underlying source failure.
    Source(drugtree_sources::SourceError),
    /// Underlying tree failure.
    Phylo(drugtree_phylo::PhyloError),
    /// Tree/overlay inconsistency.
    Overlay(String),
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::Unresolved {
                reference,
                best_candidate,
            } => match best_candidate {
                Some(c) => write!(
                    f,
                    "could not resolve {reference:?} (closest candidate: {c:?})"
                ),
                None => write!(f, "could not resolve {reference:?} (no candidates)"),
            },
            IntegrateError::Mapping(msg) => write!(f, "schema mapping error: {msg}"),
            IntegrateError::Store(e) => write!(f, "store error: {e}"),
            IntegrateError::Source(e) => write!(f, "source error: {e}"),
            IntegrateError::Phylo(e) => write!(f, "tree error: {e}"),
            IntegrateError::Overlay(msg) => write!(f, "overlay error: {msg}"),
        }
    }
}

impl std::error::Error for IntegrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IntegrateError::Store(e) => Some(e),
            IntegrateError::Source(e) => Some(e),
            IntegrateError::Phylo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drugtree_store::StoreError> for IntegrateError {
    fn from(e: drugtree_store::StoreError) -> Self {
        IntegrateError::Store(e)
    }
}

impl From<drugtree_sources::SourceError> for IntegrateError {
    fn from(e: drugtree_sources::SourceError) -> Self {
        IntegrateError::Source(e)
    }
}

impl From<drugtree_phylo::PhyloError> for IntegrateError {
    fn from(e: drugtree_phylo::PhyloError) -> Self {
        IntegrateError::Phylo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = IntegrateError::Unresolved {
            reference: "kinaze A".into(),
            best_candidate: Some("kinase A".into()),
        };
        assert!(e.to_string().contains("kinase A"));
        let e = IntegrateError::Unresolved {
            reference: "x".into(),
            best_candidate: None,
        };
        assert!(e.to_string().contains("no candidates"));
    }
}
