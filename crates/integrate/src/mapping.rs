//! Declarative schema mappings from source rows to unified rows.
//!
//! Each wrapper declares, per target column, which source column feeds
//! it and which transform applies. This is the "standards" half of the
//! paper's approach: classic wrapper/mediator field mapping rather than
//! hand-written per-source glue.

use crate::{IntegrateError, Result};
use drugtree_store::schema::Schema;
use drugtree_store::value::Value;
use serde::{Deserialize, Serialize};

/// Cell-level transform applied during mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Transform {
    /// Copy unchanged.
    Identity,
    /// Uppercase a text cell.
    Uppercase,
    /// Lowercase a text cell.
    Lowercase,
    /// Multiply a numeric cell by a constant (unit conversion).
    Scale(f64),
    /// Replace NULL with a default.
    NullTo(Value),
}

impl Transform {
    /// Apply to one cell.
    pub fn apply(&self, value: Value) -> Result<Value> {
        Ok(match self {
            Transform::Identity => value,
            Transform::Uppercase => match value {
                Value::Text(s) => Value::Text(s.to_uppercase()),
                Value::Null => Value::Null,
                other => {
                    return Err(IntegrateError::Mapping(format!(
                        "Uppercase needs text, got {other:?}"
                    )))
                }
            },
            Transform::Lowercase => match value {
                Value::Text(s) => Value::Text(s.to_lowercase()),
                Value::Null => Value::Null,
                other => {
                    return Err(IntegrateError::Mapping(format!(
                        "Lowercase needs text, got {other:?}"
                    )))
                }
            },
            Transform::Scale(k) => match value {
                Value::Int(i) => Value::Float(i as f64 * k),
                Value::Float(f) => Value::Float(f * k),
                Value::Null => Value::Null,
                other => {
                    return Err(IntegrateError::Mapping(format!(
                        "Scale needs a number, got {other:?}"
                    )))
                }
            },
            Transform::NullTo(default) => {
                if value.is_null() {
                    default.clone()
                } else {
                    value
                }
            }
        })
    }
}

/// One target column's provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldMapping {
    /// Column in the source schema.
    pub source_column: String,
    /// Column in the target schema.
    pub target_column: String,
    /// Transform to apply.
    pub transform: Transform,
}

/// A full source→target row mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaMapping {
    fields: Vec<FieldMapping>,
}

impl SchemaMapping {
    /// Build from field mappings.
    pub fn new(fields: Vec<FieldMapping>) -> SchemaMapping {
        SchemaMapping { fields }
    }

    /// The identity mapping for columns sharing names in both schemas.
    pub fn identity(columns: &[&str]) -> SchemaMapping {
        SchemaMapping {
            fields: columns
                .iter()
                .map(|c| FieldMapping {
                    source_column: c.to_string(),
                    target_column: c.to_string(),
                    transform: Transform::Identity,
                })
                .collect(),
        }
    }

    /// Field mappings, in target order.
    pub fn fields(&self) -> &[FieldMapping] {
        &self.fields
    }

    /// Map one source row into a target row laid out by
    /// `target_schema`. Unmapped target columns become NULL (they must
    /// be nullable or the caller's insert will reject the row — the
    /// store remains the single validation authority).
    pub fn map_row(
        &self,
        source_schema: &Schema,
        source_columns: &[String],
        row: &[Value],
        target_schema: &Schema,
    ) -> Result<Vec<Value>> {
        // Rows may arrive projected; resolve positions against the
        // response's column list, falling back to the schema order.
        let position = |name: &str| -> Result<usize> {
            if !source_columns.is_empty() {
                source_columns
                    .iter()
                    .position(|c| c == name)
                    .ok_or_else(|| {
                        IntegrateError::Mapping(format!(
                            "source column {name:?} absent from response"
                        ))
                    })
            } else {
                source_schema
                    .column_index(name)
                    .map_err(|e| IntegrateError::Mapping(e.to_string()))
            }
        };

        let mut out = vec![Value::Null; target_schema.arity()];
        for field in &self.fields {
            let src_idx = position(&field.source_column)?;
            let dst_idx = target_schema
                .column_index(&field.target_column)
                .map_err(|e| IntegrateError::Mapping(e.to_string()))?;
            let cell = row.get(src_idx).cloned().ok_or_else(|| {
                IntegrateError::Mapping(format!(
                    "row too short for source column {:?}",
                    field.source_column
                ))
            })?;
            out[dst_idx] = field.transform.apply(cell)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_store::schema::Column;
    use drugtree_store::value::ValueType;

    fn source_schema() -> Schema {
        Schema::new(vec![
            Column::required("Acc", ValueType::Text),
            Column::required("ki_um", ValueType::Float),
            Column::nullable("note", ValueType::Text),
        ])
    }

    fn target_schema() -> Schema {
        Schema::new(vec![
            Column::required("accession", ValueType::Text),
            Column::required("value_nm", ValueType::Float),
            Column::nullable("note", ValueType::Text),
        ])
    }

    fn mapping() -> SchemaMapping {
        SchemaMapping::new(vec![
            FieldMapping {
                source_column: "Acc".into(),
                target_column: "accession".into(),
                transform: Transform::Uppercase,
            },
            FieldMapping {
                source_column: "ki_um".into(),
                target_column: "value_nm".into(),
                transform: Transform::Scale(1000.0), // µM -> nM
            },
            FieldMapping {
                source_column: "note".into(),
                target_column: "note".into(),
                transform: Transform::NullTo(Value::from("unannotated")),
            },
        ])
    }

    #[test]
    fn maps_with_transforms() {
        let row = vec![Value::from("p00533"), Value::Float(0.5), Value::Null];
        let out = mapping()
            .map_row(&source_schema(), &[], &row, &target_schema())
            .unwrap();
        assert_eq!(
            out,
            vec![
                Value::from("P00533"),
                Value::Float(500.0),
                Value::from("unannotated")
            ]
        );
    }

    #[test]
    fn respects_projected_column_order() {
        // The response shipped only (ki_um, Acc), reordered.
        let columns = vec!["ki_um".to_string(), "Acc".to_string()];
        let row = vec![Value::Float(2.0), Value::from("x1")];
        let m = SchemaMapping::new(vec![
            FieldMapping {
                source_column: "Acc".into(),
                target_column: "accession".into(),
                transform: Transform::Identity,
            },
            FieldMapping {
                source_column: "ki_um".into(),
                target_column: "value_nm".into(),
                transform: Transform::Scale(1000.0),
            },
        ]);
        let out = m
            .map_row(&source_schema(), &columns, &row, &target_schema())
            .unwrap();
        assert_eq!(out[0], Value::from("x1"));
        assert_eq!(out[1], Value::Float(2000.0));
        assert_eq!(
            out[2],
            Value::Null,
            "unmapped target column defaults to NULL"
        );
    }

    #[test]
    fn transform_errors() {
        assert!(Transform::Uppercase.apply(Value::Int(3)).is_err());
        assert!(Transform::Scale(2.0).apply(Value::from("x")).is_err());
        // NULL passes through numeric/text transforms.
        assert_eq!(
            Transform::Scale(2.0).apply(Value::Null).unwrap(),
            Value::Null
        );
        assert_eq!(
            Transform::Uppercase.apply(Value::Null).unwrap(),
            Value::Null
        );
        // Int scales into float.
        assert_eq!(
            Transform::Scale(2.5).apply(Value::Int(4)).unwrap(),
            Value::Float(10.0)
        );
        assert_eq!(
            Transform::Lowercase.apply(Value::from("AbC")).unwrap(),
            Value::from("abc")
        );
    }

    #[test]
    fn unknown_columns_rejected() {
        let m = SchemaMapping::identity(&["nope"]);
        let err = m
            .map_row(
                &source_schema(),
                &[],
                &vec![Value::Null; 3],
                &target_schema(),
            )
            .unwrap_err();
        assert!(matches!(err, IntegrateError::Mapping(_)));
    }

    #[test]
    fn identity_mapping() {
        let m = SchemaMapping::identity(&["note"]);
        let row = vec![Value::from("a"), Value::Float(1.0), Value::from("n")];
        let out = m
            .map_row(&source_schema(), &[], &row, &target_schema())
            .unwrap();
        assert_eq!(out, vec![Value::Null, Value::Null, Value::from("n")]);
    }
}
