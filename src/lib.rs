//! Umbrella package for the DrugTree reproduction repository.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library
//! surface lives in the `drugtree` crate and its substrates.

pub use drugtree;
