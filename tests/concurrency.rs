//! Concurrency: one DrugTree system served to many simultaneous
//! clients. The executor's semantic cache is shared state; answers
//! must stay correct and the cache coherent under parallel load.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;
use drugtree_workload::queries::{mixed_stream, QueryWorkloadConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn parallel_clients_get_identical_answers() {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(96).ligands(24).seed(77));
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();
    let queries = mixed_stream(
        &bundle.tree,
        &bundle.index,
        &bundle.ligands,
        &QueryWorkloadConfig {
            len: 24,
            seed: 3,
            scope_theta: 1.0,
        },
    );

    // Reference answers, computed single-threaded on a separate system.
    let reference_system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();
    let reference: Vec<Vec<Vec<Value>>> = queries
        .iter()
        .map(|q| {
            let mut rows = reference_system.execute(q).unwrap().rows;
            rows.sort();
            rows
        })
        .collect();

    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..8 {
            let system = &system;
            let queries = &queries;
            let reference = &reference;
            let mismatches = &mismatches;
            s.spawn(move || {
                // Each thread walks the workload from a different phase
                // so cache hits and misses interleave.
                for i in 0..queries.len() {
                    let idx = (i + t * 3) % queries.len();
                    let mut rows = system.execute(&queries[idx]).unwrap().rows;
                    rows.sort();
                    if rows != reference[idx] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::Relaxed), 0);

    // The shared cache saw real traffic from all threads.
    let stats = system.report().cache;
    assert!(stats.hits + stats.misses >= queries.len() as u64);
}

#[test]
fn parallel_sessions_share_the_cache() {
    let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(64).ligands(16).seed(5));
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();

    // Warm the cache from one "client".
    system.query("activities in tree").unwrap();

    // Many clients drill into subtrees concurrently: every query is a
    // containment hit, so no thread ever touches the sources.
    let requests_before: u64 = system
        .dataset()
        .registry
        .all()
        .iter()
        .map(|s| s.metrics().requests)
        .sum();
    std::thread::scope(|s| {
        for _ in 0..6 {
            let system = &system;
            s.spawn(move || {
                for label in ["clade1", "clade2", "clade3"] {
                    let r = system
                        .query(&format!("activities in subtree('{label}')"))
                        .unwrap();
                    assert_eq!(r.metrics.cache_hit, Some(true));
                }
            });
        }
    });
    let requests_after: u64 = system
        .dataset()
        .registry
        .all()
        .iter()
        .map(|s| s.metrics().requests)
        .sum();
    assert_eq!(requests_before, requests_after);
}
