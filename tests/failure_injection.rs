//! Failure injection: the executor must ride through transient source
//! failures (retry + backoff), pay for them in virtual time, and
//! surface a clean error when a source is truly down.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;
use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_integrate::overlay::OverlayBuilder;
use drugtree_phylo::newick::parse_newick;
use drugtree_query::exec::RetryPolicy;
use drugtree_sources::assay_db::assay_source;
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_sources::flaky::FlakySource;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::protein_db::ProteinRecord;
use drugtree_sources::source::{DataSource, SourceCapabilities};
use std::sync::Arc;
use std::time::Duration;

/// A 4-leaf dataset whose assay source fails `rate` of requests.
fn flaky_dataset(rate: f64, seed: u64) -> (Dataset, Arc<FlakySource>) {
    let tree = parse_newick("((P1:1,P2:1)cladeA:1,(P3:1,P4:1)cladeB:1)root;").unwrap();
    let index = drugtree_phylo::TreeIndex::build(&tree);
    let proteins: Vec<ProteinRecord> = ["P1", "P2", "P3", "P4"]
        .iter()
        .map(|acc| ProteinRecord {
            accession: (*acc).into(),
            name: (*acc).into(),
            organism: "t".into(),
            sequence: "MK".into(),
            gene: None,
        })
        .collect();
    let activities: Vec<ActivityRecord> = [("P1", 10.0), ("P2", 100.0), ("P3", 1.0)]
        .iter()
        .map(|(acc, nm)| ActivityRecord {
            protein_accession: (*acc).into(),
            ligand_id: "L1".into(),
            activity_type: ActivityType::Ki,
            value_nm: *nm,
            source: "sim".into(),
            year: 2012,
        })
        .collect();
    let inner = Arc::new(
        assay_source(
            "assay-flaky",
            &activities,
            SourceCapabilities::full(),
            LatencyModel {
                base_rtt: Duration::from_millis(10),
                per_row: Duration::from_millis(1),
                per_row_scanned: Duration::ZERO,
                jitter: 0.0,
                seed: 0,
            },
        )
        .unwrap(),
    );
    let flaky = Arc::new(FlakySource::new(
        inner,
        rate,
        Duration::from_millis(200),
        seed,
    ));
    let mut registry = SourceRegistry::new();
    registry
        .register(flaky.clone() as Arc<dyn DataSource>)
        .unwrap();
    let overlay = OverlayBuilder::new(&tree, &index)
        .build(&proteins, &[], &[])
        .unwrap();
    let dataset = Dataset::new(tree, index, overlay, registry, VirtualClock::new()).unwrap();
    (dataset, flaky)
}

#[test]
fn retries_ride_through_intermittent_failures() {
    // 35% failure rate: with 5 attempts the executor should complete
    // every query in a long stream.
    let (dataset, flaky) = flaky_dataset(0.35, 9);
    let mut executor = Executor::new(Optimizer::new(OptimizerConfig::naive()));
    executor.set_retry_policy(RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(25),
    });

    let mut total_retries = 0usize;
    for _ in 0..20 {
        let r = executor
            .execute(&dataset, &Query::activities(Scope::Tree))
            .unwrap();
        assert_eq!(r.rows.len(), 3, "results unaffected by flakiness");
        total_retries += r.metrics.retries;
    }
    assert!(
        total_retries > 0,
        "the flaky source must have failed sometimes"
    );
    assert!(flaky.failures() > 0);
}

#[test]
fn retries_cost_virtual_time() {
    let stable = {
        let (dataset, _) = flaky_dataset(0.0, 5);
        let e = Executor::new(Optimizer::new(OptimizerConfig::naive()));
        e.execute(&dataset, &Query::activities(Scope::Tree))
            .unwrap()
            .metrics
            .virtual_cost
    };
    // Deterministically failing first request: seed/rate chosen so the
    // first roll fails (rate ~1 for the first attempt only is hard to
    // construct; instead compare aggregate cost at a high rate).
    let (dataset, _) = flaky_dataset(0.5, 5);
    let mut e = Executor::new(Optimizer::new(OptimizerConfig::naive()));
    e.set_retry_policy(RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(25),
    });
    let mut flaky_total = Duration::ZERO;
    let mut retries = 0;
    for _ in 0..10 {
        let r = e
            .execute(&dataset, &Query::activities(Scope::Tree))
            .unwrap();
        flaky_total += r.metrics.virtual_cost;
        retries += r.metrics.retries;
    }
    assert!(retries > 0);
    assert!(
        flaky_total > stable * 10,
        "failures must make the session slower: {flaky_total:?} vs 10x{stable:?}"
    );
}

#[test]
fn hard_down_source_surfaces_an_error() {
    let (dataset, flaky) = flaky_dataset(1.0, 3);
    let mut executor = Executor::new(Optimizer::new(OptimizerConfig::naive()));
    executor.set_retry_policy(RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(10),
    });
    let err = executor
        .execute(&dataset, &Query::activities(Scope::Tree))
        .unwrap_err();
    assert!(
        err.to_string().contains("transient"),
        "error should identify the transient failure: {err}"
    );
    // All three attempts were burned before giving up.
    assert_eq!(flaky.attempts(), 3);
    drop(dataset);
}

#[test]
fn cache_hits_bypass_flaky_sources_entirely() {
    let (dataset, flaky) = flaky_dataset(0.4, 11);
    let mut executor = Executor::new(Optimizer::new(OptimizerConfig::full()));
    executor.set_retry_policy(RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(25),
    });
    // Warm the cache (may take retries).
    executor
        .execute(&dataset, &Query::activities(Scope::Tree))
        .unwrap();
    let attempts_after_warm = flaky.attempts();
    // Drill-downs are now immune to the source's health.
    for label in ["cladeA", "cladeB", "P1"] {
        let r = executor
            .execute(&dataset, &Query::activities(Scope::Subtree(label.into())))
            .unwrap();
        assert_eq!(r.metrics.cache_hit, Some(true));
        assert_eq!(r.metrics.retries, 0);
    }
    assert_eq!(
        flaky.attempts(),
        attempts_after_warm,
        "no further source traffic"
    );
}
