//! Mobile-session integration tests: deterministic replay, cache
//! behaviour over realistic gesture scripts, and delivery-mode
//! invariants.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;
use std::time::Duration;

fn bundle() -> SyntheticBundle {
    SyntheticBundle::generate(&WorkloadSpec::default().leaves(128).ligands(32).seed(13))
}

fn system(bundle: &SyntheticBundle, config: OptimizerConfig) -> DrugTree {
    DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(config)
        .build()
        .unwrap()
}

fn script(bundle: &SyntheticBundle, seed: u64) -> Vec<Gesture> {
    drill_down_script(
        &bundle.tree,
        &bundle.index,
        &GestureConfig {
            len: 60,
            seed,
            zipf_theta: 1.0,
            revisit_prob: 0.3,
        },
    )
}

#[test]
fn replaying_a_script_is_deterministic() {
    let b = bundle();
    let gestures = script(&b, 4);

    let run = || {
        let s = system(&b, OptimizerConfig::full());
        let mut session = s.mobile_session(NetworkProfile::CELL_4G);
        gestures
            .iter()
            .map(|g| {
                let r = session.apply(g).unwrap();
                (
                    r.rows,
                    r.first_usable,
                    r.complete,
                    r.payload_bytes,
                    r.cache_hit,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn optimized_session_outperforms_naive() {
    let b = bundle();
    let gestures = script(&b, 8);

    let total = |config: OptimizerConfig| {
        let s = system(&b, config);
        let mut session = s.mobile_session(NetworkProfile::CELL_4G);
        let mut total = Duration::ZERO;
        for g in &gestures {
            total += session.apply(g).unwrap().complete;
        }
        total
    };
    let naive = total(OptimizerConfig::naive());
    let optimized = total(OptimizerConfig::full());
    assert!(
        optimized < naive / 2,
        "optimized session {optimized:?} should be far below naive {naive:?}"
    );
}

#[test]
fn drill_down_scripts_achieve_cache_hits() {
    let b = bundle();
    let s = system(&b, OptimizerConfig::full());
    let mut session = s.mobile_session(NetworkProfile::WIFI);
    for g in &script(&b, 15) {
        session.apply(g).unwrap();
    }
    let stats = s.report().cache;
    assert!(
        stats.hits > 0,
        "drill-down locality must produce hits: {stats:?}"
    );
    let queries: usize = session
        .log()
        .iter()
        .filter(|r| r.cache_hit.is_some())
        .count();
    assert!(queries > 10, "script should contain many queries");
}

#[test]
fn view_only_gestures_never_touch_sources() {
    let b = bundle();
    let s = system(&b, OptimizerConfig::full());
    let requests_before: u64 = s
        .dataset()
        .registry
        .all()
        .iter()
        .map(|src| src.metrics().requests)
        .sum();
    let mut session = s.mobile_session(NetworkProfile::WIFI);
    session.apply(&Gesture::Pan { dy: 5.0 }).unwrap();
    session.apply(&Gesture::ZoomIn { focus_y: 10.0 }).unwrap();
    session.apply(&Gesture::ZoomOut { focus_y: 10.0 }).unwrap();
    let requests_after: u64 = s
        .dataset()
        .registry
        .all()
        .iter()
        .map(|src| src.metrics().requests)
        .sum();
    assert_eq!(
        requests_before, requests_after,
        "pan/zoom are pure client-side view changes"
    );
}

#[test]
fn slower_networks_cost_more_never_change_results() {
    let b = bundle();
    let mut row_counts: Vec<Vec<usize>> = Vec::new();
    let mut totals: Vec<Duration> = Vec::new();
    for profile in NetworkProfile::ALL {
        let s = system(&b, OptimizerConfig::full());
        let mut session = s.mobile_session(profile);
        let mut rows = Vec::new();
        let mut total = Duration::ZERO;
        for g in &script(&b, 22) {
            let r = session.apply(g).unwrap();
            rows.push(r.rows);
            total += r.complete;
        }
        row_counts.push(rows);
        totals.push(total);
    }
    // Identical answers across networks.
    assert!(row_counts.windows(2).all(|w| w[0] == w[1]));
    // Monotonically slower networks.
    assert!(
        totals.windows(2).all(|w| w[0] <= w[1]),
        "totals not monotone: {totals:?}"
    );
}
