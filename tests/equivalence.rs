//! The golden optimizer-correctness test: **every optimizer
//! configuration must return exactly the naive plan's results** for
//! every query in a generated workload. Optimizations may only change
//! *cost*, never *answers*.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;
use drugtree_query::ast::QueryKind;
use drugtree_workload::queries::{mixed_stream, QueryWorkloadConfig};

fn sorted_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Rank-insensitive comparison for top-k: equal-key rows may tie-break
/// differently between plans, so compare the multiset of ranking keys
/// instead of exact rows.
fn topk_keys(rows: &[Vec<Value>], column: usize) -> Vec<Value> {
    let mut keys: Vec<Value> = rows.iter().map(|r| r[column].clone()).collect();
    keys.sort();
    keys
}

#[test]
fn all_optimizer_configs_agree_with_naive() {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(96).ligands(24).seed(17));
    let queries = mixed_stream(
        &bundle.tree,
        &bundle.index,
        &bundle.ligands,
        &QueryWorkloadConfig {
            len: 48,
            seed: 23,
            scope_theta: 0.8,
        },
    );

    // Reference: the naive executor.
    let naive = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::naive())
        .with_stats(false)
        .build()
        .unwrap();

    // Challengers: full, plus each single-rule ablation, each with its
    // own dataset/cache so runs are independent.
    let mut challengers = vec![("full".to_string(), OptimizerConfig::full())];
    for rule in drugtree_query::phases::ablatable_rules() {
        challengers.push((
            format!("full-minus-{}", rule.name),
            OptimizerConfig::ablate(rule.name).expect("known rule"),
        ));
    }

    for (name, config) in challengers {
        let challenger = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(config)
            .with_matview()
            .build()
            .unwrap();
        for (i, query) in queries.iter().enumerate() {
            let expected = naive.execute(query).unwrap();
            let got = challenger.execute(query).unwrap();
            assert_eq!(
                expected.columns, got.columns,
                "[{name}] query {i} columns differ: {query:?}"
            );
            match &query.kind {
                QueryKind::TopK { by, .. } => {
                    let col = expected.columns.iter().position(|c| c == by).unwrap();
                    assert_eq!(
                        topk_keys(&expected.rows, col),
                        topk_keys(&got.rows, col),
                        "[{name}] query {i} top-k keys differ: {query:?}"
                    );
                }
                _ => {
                    assert_eq!(
                        sorted_rows(expected.rows.clone()),
                        sorted_rows(got.rows.clone()),
                        "[{name}] query {i} rows differ: {query:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn repeated_execution_is_idempotent_under_caching() {
    let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(64).ligands(16));
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();
    let queries = mixed_stream(
        &bundle.tree,
        &bundle.index,
        &bundle.ligands,
        &QueryWorkloadConfig {
            len: 24,
            seed: 31,
            scope_theta: 1.2,
        },
    );
    // First pass warms the cache; second pass must return identical
    // answers (many now from the cache).
    let first: Vec<_> = queries
        .iter()
        .map(|q| system.execute(q).unwrap().rows)
        .collect();
    let second: Vec<_> = queries
        .iter()
        .map(|q| system.execute(q).unwrap().rows)
        .collect();
    assert_eq!(first, second);
    assert!(
        system.report().cache.hits > 0,
        "second pass should hit the cache"
    );
}

#[test]
fn multi_source_partitioning_is_transparent() {
    // The same records served by 1 source or split across 4 must give
    // identical query answers.
    let one = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(64)
            .ligands(16)
            .assay_sources(1),
    );
    let four = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(64)
            .ligands(16)
            .assay_sources(4),
    );
    assert_eq!(one.activities, four.activities);

    let sys_one = DrugTree::builder()
        .dataset(one.build_dataset())
        .build()
        .unwrap();
    let sys_four = DrugTree::builder()
        .dataset(four.build_dataset())
        .build()
        .unwrap();
    for text in [
        "activities in tree",
        "activities where p_activity >= 6.5",
        "aggregate count in tree",
        "count per leaf in tree",
    ] {
        let a = sorted_rows(sys_one.query(text).unwrap().rows);
        let b = sorted_rows(sys_four.query(text).unwrap().rows);
        assert_eq!(a, b, "{text}");
    }
}
