//! A legacy-schema assay source joins the federation through the
//! [`drugtree_integrate::adapter::MappedSource`] wrapper and behaves
//! exactly like a native source: same answers, translated pushdown.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;
use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_integrate::adapter::MappedSource;
use drugtree_integrate::mapping::{FieldMapping, SchemaMapping, Transform};
use drugtree_integrate::overlay::OverlayBuilder;
use drugtree_phylo::newick::parse_newick;
use drugtree_sources::assay_db::{assay_schema, assay_source};
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::protein_db::ProteinRecord;
use drugtree_sources::source::{DataSource, SimulatedSource, SourceCapabilities, SourceKind};
use drugtree_store::schema::{Column, Schema};
use drugtree_store::table::Table;
use drugtree_store::value::ValueType;
use std::sync::Arc;

/// The lab's records, in canonical form.
fn records() -> Vec<ActivityRecord> {
    [
        ("P1", "L1", 10.0),
        ("P1", "L2", 2000.0),
        ("P2", "L1", 100.0),
        ("P3", "L3", 1.0),
    ]
    .iter()
    .map(|(acc, lig, nm)| ActivityRecord {
        protein_accession: (*acc).to_string(),
        ligand_id: (*lig).to_string(),
        activity_type: ActivityType::Ki,
        value_nm: *nm,
        source: "legacy-lab".into(),
        year: 2010,
    })
    .collect()
}

/// The same records in the lab's own schema: different column names,
/// Ki in micromolar.
fn legacy_source() -> Arc<dyn DataSource> {
    let schema = Schema::new(vec![
        Column::required("acc", ValueType::Text),
        Column::required("compound", ValueType::Text),
        Column::required("assay", ValueType::Text),
        Column::required("ki_um", ValueType::Float),
        Column::required("db", ValueType::Text),
        Column::required("yr", ValueType::Int),
    ]);
    let mut t = Table::new("legacy", schema);
    for r in records() {
        t.insert(vec![
            Value::from(r.protein_accession),
            Value::from(r.ligand_id),
            Value::from(r.activity_type.label()),
            Value::Float(r.value_nm / 1000.0), // stored in µM
            Value::from(r.source),
            Value::Int(r.year as i64),
        ])
        .unwrap();
    }
    let inner = Arc::new(
        SimulatedSource::new(
            "legacy-lab",
            SourceKind::Assay,
            t,
            "acc",
            SourceCapabilities::full(),
            LatencyModel::intranet(4),
        )
        .unwrap(),
    );
    let mapping = SchemaMapping::new(vec![
        FieldMapping {
            source_column: "acc".into(),
            target_column: "protein_accession".into(),
            transform: Transform::Identity,
        },
        FieldMapping {
            source_column: "compound".into(),
            target_column: "ligand_id".into(),
            transform: Transform::Identity,
        },
        FieldMapping {
            source_column: "assay".into(),
            target_column: "activity_type".into(),
            transform: Transform::Identity,
        },
        FieldMapping {
            source_column: "ki_um".into(),
            target_column: "value_nm".into(),
            transform: Transform::Scale(1000.0),
        },
        FieldMapping {
            source_column: "db".into(),
            target_column: "source".into(),
            transform: Transform::Identity,
        },
        FieldMapping {
            source_column: "yr".into(),
            target_column: "year".into(),
            transform: Transform::Identity,
        },
    ]);
    Arc::new(MappedSource::new(inner, mapping, assay_schema(), "protein_accession").unwrap())
}

fn dataset_with(source: Arc<dyn DataSource>) -> Dataset {
    let tree = parse_newick("((P1:1,P2:1)cladeA:1,(P3:1,P4:1)cladeB:1)root;").unwrap();
    let index = drugtree_phylo::TreeIndex::build(&tree);
    let proteins: Vec<ProteinRecord> = ["P1", "P2", "P3", "P4"]
        .iter()
        .map(|acc| ProteinRecord {
            accession: (*acc).into(),
            name: (*acc).into(),
            organism: "t".into(),
            sequence: "MK".into(),
            gene: None,
        })
        .collect();
    let overlay = OverlayBuilder::new(&tree, &index)
        .build(&proteins, &[], &[])
        .unwrap();
    let mut registry = SourceRegistry::new();
    registry.register(source).unwrap();
    Dataset::new(tree, index, overlay, registry, VirtualClock::new()).unwrap()
}

fn native_source() -> Arc<dyn DataSource> {
    Arc::new(
        assay_source(
            "native-lab",
            &records(),
            SourceCapabilities::full(),
            LatencyModel::intranet(4),
        )
        .unwrap(),
    )
}

#[test]
fn wrapped_legacy_source_answers_like_a_native_one() {
    let legacy = dataset_with(legacy_source());
    let native = dataset_with(native_source());
    let e1 = Executor::new(Optimizer::new(OptimizerConfig::full()));
    let e2 = Executor::new(Optimizer::new(OptimizerConfig::full()));

    for text in [
        "activities in tree",
        "activities in subtree('cladeA')",
        "activities where p_activity >= 7",
        "activities where year >= 2005 top 2 by p_activity desc",
        "count per leaf in tree",
    ] {
        let q = Query::parse(text).unwrap();
        let a = e1.execute(&legacy, &q).unwrap();
        let b = e2.execute(&native, &q).unwrap();
        let strip_source = |rows: &[Vec<Value>]| -> Vec<Vec<Value>> {
            // Provenance column naturally differs in source naming; all
            // data columns must agree.
            rows.iter()
                .map(|r| {
                    r.iter()
                        .enumerate()
                        .filter(|(i, _)| *i != 6)
                        .map(|(_, v)| v.clone())
                        .collect()
                })
                .collect()
        };
        assert_eq!(strip_source(&a.rows), strip_source(&b.rows), "{text}");
    }
}

#[test]
fn translated_pushdown_reduces_shipped_rows() {
    let legacy = dataset_with(legacy_source());
    let mut e = Executor::new(Optimizer::new(OptimizerConfig::full()));
    e.collect_stats(&legacy).unwrap();
    // p_activity >= 8 -> value_nm <= 10 (+slack) -> ki_um <= 0.01: the
    // legacy source evaluates it and ships only the qualifying rows.
    let q = Query::parse("activities where p_activity >= 8").unwrap();
    let r = e.execute(&legacy, &q).unwrap();
    assert_eq!(r.rows.len(), 2); // 10 nM and 1 nM
    assert!(
        r.metrics.rows_fetched <= 2,
        "pushdown should have filtered at the source, shipped {}",
        r.metrics.rows_fetched
    );
}
