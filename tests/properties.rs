//! Cross-crate property tests: optimizer equivalence and cache
//! coherence on randomly generated deployments and queries.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;
use proptest::prelude::*;

/// Build a small deployment from proptest-chosen parameters.
fn deployment(leaves: usize, ligands: usize, seed: u64) -> (SyntheticBundle, DrugTree, DrugTree) {
    let spec = WorkloadSpec::default()
        .leaves(leaves)
        .ligands(ligands)
        .seed(seed);
    let bundle = SyntheticBundle::generate(&spec);
    let naive = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::naive())
        .with_stats(false)
        .build()
        .unwrap();
    let full = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();
    (bundle, naive, full)
}

fn arb_query(max_leaves: usize) -> impl Strategy<Value = Query> {
    let scope = prop_oneof![
        Just(Scope::Tree),
        (0u32..max_leaves as u32, 1u32..8).prop_map(move |(lo, len)| {
            Scope::Interval(drugtree_phylo::index::LeafInterval {
                lo,
                hi: (lo + len).min(max_leaves as u32),
            })
        }),
    ];
    let predicate = prop_oneof![
        Just(Predicate::True),
        (4.0f64..9.0).prop_map(|p| Predicate::cmp("p_activity", CompareOp::Ge, p)),
        (100.0f64..600.0).prop_map(|mw| Predicate::cmp("mw", CompareOp::Lt, mw)),
        (1995i64..2013).prop_map(|y| Predicate::cmp("year", CompareOp::Ge, y)),
        (4.0f64..7.0, 0.5f64..2.5)
            .prop_map(|(lo, span)| { Predicate::between("p_activity", lo, lo + span) }),
    ];
    (scope, predicate, proptest::option::of(1usize..10)).prop_map(|(scope, predicate, topk)| {
        let q = Query::activities(scope).filter(predicate);
        match topk {
            Some(k) => q.top_k("p_activity", k, true),
            None => q,
        }
    })
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fundamental soundness property: for random queries over a
    /// random deployment, the fully optimized executor returns exactly
    /// what the naive executor returns.
    #[test]
    fn optimizer_preserves_answers(
        seed in 0u64..500,
        queries in proptest::collection::vec(arb_query(48), 1..6),
    ) {
        let (_, naive, full) = deployment(48, 12, seed);
        for q in &queries {
            let expected = naive.execute(q).unwrap();
            let got = full.execute(q).unwrap();
            if let QueryKind::TopK { .. } = q.kind {
                // Tie-breaks may differ; compare ranking keys.
                let keys = |r: &QueryResult| {
                    let mut ks: Vec<Value> =
                        r.rows.iter().map(|row| row[5].clone()).collect();
                    ks.sort();
                    ks
                };
                prop_assert_eq!(keys(&expected), keys(&got), "{:?}", q);
            } else {
                prop_assert_eq!(
                    sorted(expected.rows),
                    sorted(got.rows),
                    "{:?}", q
                );
            }
        }
    }

    /// Cache coherence: interleaving random queries, every repeat of an
    /// earlier query returns the same rows it returned the first time.
    #[test]
    fn cache_is_coherent_under_interleaving(
        seed in 0u64..200,
        queries in proptest::collection::vec(arb_query(32), 2..8),
        replay_order in proptest::collection::vec(0usize..8, 4..12),
    ) {
        let spec = WorkloadSpec::default().leaves(32).ligands(8).seed(seed);
        let bundle = SyntheticBundle::generate(&spec);
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full())
            .build()
            .unwrap();
        let mut first_answers: Vec<Option<Vec<Vec<Value>>>> = vec![None; queries.len()];
        for &i in &replay_order {
            let i = i % queries.len();
            let rows = sorted(system.execute(&queries[i]).unwrap().rows);
            match &first_answers[i] {
                Some(expected) => prop_assert_eq!(expected, &rows, "query {}", i),
                None => first_answers[i] = Some(rows),
            }
        }
    }
}
