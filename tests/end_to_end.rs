//! End-to-end pipeline test: sources → tree construction → integration
//! → optimized federated queries → mobile session.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;
use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_sources::assay_db::assay_source;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::ligand_db::{ligand_source, LigandRecord};
use drugtree_sources::protein_db::{protein_source, ProteinRecord};
use drugtree_sources::source::SourceCapabilities;
use std::sync::Arc;

fn protein(acc: &str, seq: &str) -> ProteinRecord {
    ProteinRecord {
        accession: acc.into(),
        name: format!("protein {acc}"),
        organism: "test".into(),
        sequence: seq.into(),
        gene: None,
    }
}

fn activity(acc: &str, lig: &str, nm: f64) -> ActivityRecord {
    ActivityRecord {
        protein_accession: acc.into(),
        ligand_id: lig.into(),
        activity_type: ActivityType::Ki,
        value_nm: nm,
        source: "test".into(),
        year: 2012,
    }
}

/// Full pipeline from raw sources, checking every stage's product.
#[test]
fn pipeline_from_sequences_to_queries() {
    let caps = SourceCapabilities::full();
    let proteins = vec![
        protein("A1", "MKVLATWQDEAAAAAAAAAA"),
        protein("A2", "MKVLATWQDEAAAAAAAAAC"),
        protein("B1", "GGGPPPYYYWLLLLLLLLLL"),
        protein("B2", "GGGPPPYYYWLLLLLLLLLK"),
    ];
    let ligands = vec![
        LigandRecord::from_smiles("L1", "aspirin", "CC(=O)Oc1ccccc1C(=O)O").unwrap(),
        LigandRecord::from_smiles("L2", "ethanol", "CCO").unwrap(),
    ];
    let activities = vec![
        activity("A1", "L1", 10.0),
        activity("A2", "L1", 30.0),
        activity("B1", "L2", 5000.0),
    ];

    let system = DrugTree::builder()
        .register_source(Arc::new(
            protein_source("p", &proteins, caps, LatencyModel::intranet(1)).unwrap(),
        ))
        .register_source(Arc::new(
            ligand_source("l", &ligands, caps, LatencyModel::intranet(2)).unwrap(),
        ))
        .register_source(Arc::new(
            assay_source("a", &activities, caps, LatencyModel::web_api(3)).unwrap(),
        ))
        .build()
        .unwrap();

    // Stage 1: the tree clusters by sequence.
    let d = system.dataset();
    assert_eq!(d.leaf_count(), 4);
    let r = |acc: &str| d.rank_of_accession(acc).unwrap();
    assert_eq!(r("A1").abs_diff(r("A2")), 1, "A-family adjacent");
    assert_eq!(r("B1").abs_diff(r("B2")), 1, "B-family adjacent");

    // Stage 2: the overlay materialized proteins and ligands locally.
    assert_eq!(system.report().ligands, 2);
    assert!(d.overlay.fingerprint("L1").is_some());

    // Stage 3: federated queries return integrated rows.
    let all = system.query("activities in tree").unwrap();
    assert_eq!(all.rows.len(), 3);
    let potent = system.query("activities where p_activity >= 7.0").unwrap();
    assert_eq!(potent.rows.len(), 2);

    // Stage 4: ranked output joins ligand metadata.
    let top = system.query("activities top 1 by p_activity desc").unwrap();
    assert_eq!(top.rows[0][2], Value::from("L1"));
    assert_eq!(top.rows[0][8], Value::from("aspirin"));

    // Stage 5: the mobile layer drives the same engine.
    let mut session = system.mobile_session(NetworkProfile::CELL_4G);
    let res = session.apply(&Gesture::InspectViewport).unwrap();
    assert_eq!(res.rows, 3);
}

/// Statistics, cache, and matview survive a refresh cycle.
#[test]
fn refresh_cycle_keeps_results_correct() {
    let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(64).ligands(16));
    let mut system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();

    let before = system.query("activities in tree").unwrap();
    let cached = system.query("activities in tree").unwrap();
    assert_eq!(cached.metrics.cache_hit, Some(true));
    assert_eq!(before.rows, cached.rows);

    system.refresh().unwrap();
    let after = system.query("activities in tree").unwrap();
    assert_eq!(after.metrics.cache_hit, Some(false));
    assert_eq!(after.rows, before.rows);
}

/// Text-language queries agree with structurally built queries.
#[test]
fn parser_and_builder_queries_agree() {
    let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(64).ligands(16));
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();

    let text = system
        .query("activities in subtree('clade1') where p_activity >= 6 top 10 by p_activity desc")
        .unwrap();
    let built = system
        .execute(
            &Query::activities(Scope::Subtree("clade1".into()))
                .filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.0))
                .top_k("p_activity", 10, true),
        )
        .unwrap();
    assert_eq!(text.rows, built.rows);
    assert_eq!(text.columns, built.columns);
}

/// The virtual clock totals the latency of everything charged to it.
#[test]
fn virtual_clock_accounts_for_all_work() {
    let bundle = SyntheticBundle::generate(&WorkloadSpec::default().leaves(32).ligands(8));
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::naive())
        .with_stats(false)
        .build()
        .unwrap();
    let t0 = system.dataset().clock.now();
    let a = system.query("activities in tree").unwrap();
    let b = system.query("activities in subtree('clade1')").unwrap();
    let t1 = system.dataset().clock.now();
    assert_eq!(
        t1.since(t0),
        a.metrics.virtual_cost + b.metrics.virtual_cost,
        "clock advances exactly by the metrics' virtual costs"
    );
}
