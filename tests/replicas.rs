//! Replica selection: when several sources hold the same data, the
//! optimizer serves the query from the cheapest one — and turning the
//! rule off only changes cost, never answers.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree::prelude::*;

fn replicated_bundle() -> SyntheticBundle {
    SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(64)
            .ligands(16)
            .seed(55)
            .assay_sources(3)
            .replicated(true),
    )
}

#[test]
fn cheapest_replica_serves_the_query() {
    let bundle = replicated_bundle();
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();

    let plan = system.explain("activities in tree").unwrap();
    assert!(
        plan.contains("replica-selection: assay-0"),
        "fastest replica (assay-0) should be chosen:\n{plan}"
    );
    // Exactly one SourceFetch in the plan.
    assert_eq!(plan.matches("SourceFetch").count(), 1, "{plan}");

    system.query("activities in tree").unwrap();
    // Only the chosen replica saw traffic (beyond the builder's stats
    // scan, which touches everything).
    let requests = |name: &str| {
        system
            .dataset()
            .registry
            .by_name(name)
            .unwrap()
            .metrics()
            .requests
    };
    let baseline = requests("assay-1");
    assert_eq!(
        requests("assay-2"),
        baseline,
        "idle replicas saw only the stats scan"
    );
    assert!(
        requests("assay-0") > baseline,
        "chosen replica served the fetch"
    );
}

#[test]
fn replica_selection_changes_cost_not_answers() {
    let bundle = replicated_bundle();
    let with = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();
    let without = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::ablate("replica_selection").expect("known rule"))
        .build()
        .unwrap();

    for text in [
        "activities in tree",
        "activities where p_activity >= 6.5",
        "aggregate count in tree",
    ] {
        let a = with.query(text).unwrap();
        let b = without.query(text).unwrap();
        let sorted = |mut rows: Vec<Vec<Value>>| {
            rows.sort();
            rows
        };
        assert_eq!(sorted(a.rows), sorted(b.rows), "{text}");
        assert!(
            a.metrics.virtual_cost <= b.metrics.virtual_cost,
            "{text}: selection {:?} should not exceed fetch-all {:?}",
            a.metrics.virtual_cost,
            b.metrics.virtual_cost
        );
    }
}

#[test]
fn partitioned_sources_are_unaffected_by_the_rule() {
    // Without declared replicas the rule must fetch every source.
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(64)
            .ligands(16)
            .seed(55)
            .assay_sources(3),
    );
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()
        .unwrap();
    let plan = system.explain("activities in tree").unwrap();
    assert_eq!(plan.matches("SourceFetch").count(), 3, "{plan}");
    let r = system.query("activities in tree").unwrap();
    assert_eq!(r.rows.len(), bundle.activities.len());
}

#[test]
fn replicated_matview_does_not_double_count() {
    // A view built over replicas must count each record once, and
    // aggregate answers must match the fetch path's.
    let bundle = replicated_bundle();
    let with_view = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .with_matview()
        .build()
        .unwrap();
    let without_view = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::ablate("use_matview").expect("known rule"))
        .build()
        .unwrap();
    let a = with_view.query("aggregate count in tree").unwrap();
    assert_eq!(a.metrics.source_requests, 0, "view must answer");
    let b = without_view.query("aggregate count in tree").unwrap();
    assert_eq!(a.rows, b.rows);
    // The per-clade counts sum to the true record count.
    let total: i64 = a.rows.iter().map(|r| r[3].as_int().unwrap()).sum();
    assert_eq!(total as usize, bundle.activities.len());
}
